#!/usr/bin/env python3
"""SoC memory-controller scenario — the paper's motivating workload.

A base-station-style SoC (paper Section 1) hangs a memory controller off
one output of a 16x16 Swizzle Switch. Three kinds of clients compete:

* a **real-time DSP** with a hard bandwidth requirement (GB, 30 %),
* a **video accelerator** with a softer requirement (GB, 20 %),
* thirteen **best-effort CPU cores** that burst aggressively.

The experiment runs the same traffic twice — class-blind LRG vs. the full
three-class arbiter — and reports what each client actually received and
the latency the DSP saw. Under LRG the bursty cores crowd out the DSP;
under SSVC the reservations hold and BE cores share only the leftover.

Run:  python examples/memory_controller_qos.py
"""

from repro import (
    ARBITER_PRESETS,
    BurstyInjection,
    FlowId,
    GLPolicerConfig,
    QoSConfig,
    Simulation,
    SwitchConfig,
    TrafficClass,
    Workload,
    be_flow,
    gb_flow,
)
from repro.metrics import format_table

MEMORY_PORT = 0
DSP, VIDEO = 1, 2  # input port numbers of the reserved clients


def build_workload() -> Workload:
    """DSP + video reservations plus 13 bursty best-effort cores."""
    workload = Workload(name="memory-controller")
    workload.add(
        gb_flow(DSP, MEMORY_PORT, reserved_rate=0.30, packet_length=8, inject_rate=0.30)
    )
    workload.add(
        gb_flow(VIDEO, MEMORY_PORT, reserved_rate=0.20, packet_length=8, inject_rate=0.20)
    )
    for core in range(3, 16):
        workload.add(
            be_flow(
                core,
                MEMORY_PORT,
                packet_length=8,
                process=BurstyInjection(rate_flits=0.15, burst_packets=6.0),
            )
        )
    return workload


def main() -> None:
    config = SwitchConfig(
        radix=16,
        channel_bits=256,
        gb_buffer_flits=16,
        be_buffer_flits=16,  # BE cores send 8-flit packets too
        qos=QoSConfig(sig_bits=4, frac_bits=8),
        gl_policer=GLPolicerConfig(reserved_rate=0.0),
    )
    horizon = 120_000

    outcomes = {}
    for policy in ("lrg", "three-class"):
        sim = Simulation(
            config, build_workload(), arbiter_factory=ARBITER_PRESETS[policy], seed=7
        )
        outcomes[policy] = sim.run(horizon)

    def row(label: str, flow: FlowId):
        cells = [label]
        for policy in ("lrg", "three-class"):
            stats = outcomes[policy].stats.flow_stats(flow)
            cells.append(stats.accepted_rate(outcomes[policy].stats.measured_cycles))
            cells.append(stats.latency.mean if stats.latency.count else None)
        return tuple(cells)

    rows = [
        row("DSP (GB 30%)", FlowId(DSP, MEMORY_PORT, TrafficClass.GB)),
        row("video (GB 20%)", FlowId(VIDEO, MEMORY_PORT, TrafficClass.GB)),
    ]
    for policy_label, core in (("CPU core 3 (BE)", 3), ("CPU core 4 (BE)", 4)):
        rows.append(row(policy_label, FlowId(core, MEMORY_PORT, TrafficClass.BE)))
    print(
        format_table(
            [
                "client",
                "LRG rate",
                "LRG latency",
                "QoS rate",
                "QoS latency",
            ],
            rows,
            title="Memory-controller port: accepted flits/cycle and mean latency (cycles)",
        )
    )
    total_lrg = outcomes["lrg"].stats.output_throughput(MEMORY_PORT)
    total_qos = outcomes["three-class"].stats.output_throughput(MEMORY_PORT)
    print(f"\nport utilization: LRG {total_lrg:.3f}, QoS {total_qos:.3f} flits/cycle")
    print(
        "The DSP only meets its 0.30 requirement under the three-class "
        "arbiter; best-effort cores absorb the loss."
    )


if __name__ == "__main__":
    main()
