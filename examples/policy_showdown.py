#!/usr/bin/env python3
"""Every arbitration policy on one identical workload.

The same replayed traffic — a mix of reserved flows, one of which goes idle
halfway through its reservation's worth of demand — is pushed through every
policy in the library: SSVC (all three counter modes), original Virtual
Clock, WFQ, DWRR, WRR (strict), TDM, GSF, fixed-priority, and plain LRG.
The table shows who honours reservations, who redistributes idle bandwidth,
and what it costs in latency.

Run:  python examples/policy_showdown.py
"""

from repro import (
    ARBITER_PRESETS,
    FlowId,
    Simulation,
    TrafficClass,
    Workload,
    gb_flow,
)
from repro.experiments.common import gb_only_config
from repro.metrics import format_table
from repro.traffic import BernoulliInjection

POLICIES = (
    "ssvc-subtract",
    "ssvc-halve",
    "ssvc-reset",
    "virtual-clock",
    "wfq",
    "dwrr",
    "wrr",
    "wrr-strict",
    "tdm",
    "gsf",
    "fixed-priority",
    "lrg",
)

RESERVATIONS = {0: 0.35, 1: 0.25, 2: 0.15, 3: 0.10}  # port -> reserved rate
UNDERUSER = 1  # reserves 25% but injects only 5%


def build_workload() -> Workload:
    """Three saturating reserved flows, one under-using its reservation."""
    workload = Workload(name="showdown")
    for src, rate in RESERVATIONS.items():
        if src == UNDERUSER:
            workload.add(
                gb_flow(src, 0, rate, packet_length=8, process=BernoulliInjection(0.05))
            )
        else:
            workload.add(gb_flow(src, 0, rate, packet_length=8, inject_rate=None))
    return workload


def main() -> None:
    config = gb_only_config(radix=8, sig_bits=4)
    horizon = 80_000
    rows = []
    for policy in POLICIES:
        sim = Simulation(
            config, build_workload(), arbiter_factory=ARBITER_PRESETS[policy], seed=29
        )
        result = sim.run(horizon)
        flow0 = FlowId(0, 0, TrafficClass.GB)
        under = FlowId(UNDERUSER, 0, TrafficClass.GB)
        rows.append(
            (
                policy,
                result.stats.output_throughput(0),
                result.accepted_rate(flow0),
                result.accepted_rate(under),
                result.stats.flow_stats(under).latency.mean
                if result.stats.flow_stats(under).latency.count
                else None,
            )
        )
    print(
        format_table(
            [
                "policy",
                "output total",
                "flow0 rate (r=0.35, greedy)",
                "flow1 rate (r=0.25, uses 0.05)",
                "flow1 latency",
            ],
            rows,
            title="Policy showdown: identical offered traffic, every arbiter",
        )
    )
    print(
        "\nWork-conserving clock policies push the output to the 0.889 "
        "ceiling and hand flow1's idle reservation to the greedy flows; "
        "TDM and strict WRR leave it stranded."
    )


if __name__ == "__main__":
    main()
