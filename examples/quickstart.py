#!/usr/bin/env python3
"""Quickstart: bandwidth guarantees on a congested output in ~30 lines.

Eight cores share one output channel of an 8x8 Swizzle Switch. Every core
floods the channel (saturating sources); without QoS they split it evenly,
with SSVC each core receives its reserved share — the paper's Fig. 4 in
miniature.

Run:  python examples/quickstart.py
"""

from repro import (
    ARBITER_PRESETS,
    FlowId,
    Simulation,
    TrafficClass,
    fig4_workload,
)
from repro.experiments.common import gb_only_config
from repro.metrics import format_table


def main() -> None:
    config = gb_only_config(radix=8, channel_bits=128, sig_bits=4)
    horizon = 50_000

    results = {}
    for policy in ("lrg", "ssvc"):
        workload = fig4_workload(inject_rate=None)  # saturate every input
        sim = Simulation(config, workload, arbiter_factory=ARBITER_PRESETS[policy])
        results[policy] = sim.run(horizon)

    reserved = [spec.reserved_rate for spec in fig4_workload(inject_rate=None)]
    rows = []
    for src, rate in enumerate(reserved):
        flow = FlowId(src, 0, TrafficClass.GB)
        rows.append(
            (
                f"core {src}",
                f"{100 * rate:.0f}%",
                results["lrg"].accepted_rate(flow),
                results["ssvc"].accepted_rate(flow),
            )
        )
    rows.append(
        (
            "total",
            "100%",
            results["lrg"].stats.output_throughput(0),
            results["ssvc"].stats.output_throughput(0),
        )
    )
    print(
        format_table(
            ["core", "reserved", "no QoS (LRG)", "SSVC"],
            rows,
            title="Accepted throughput at the congested output (flits/cycle)",
        )
    )
    print(
        "\nWithout QoS every core gets an equal 1/8 share; with SSVC each "
        "core holds its reservation.\nThe 0.889 ceiling is the single "
        "re-arbitration cycle per 8-flit packet (8/9)."
    )


if __name__ == "__main__":
    main()
