#!/usr/bin/env python3
"""Guaranteed Latency in action: interrupts through a congested switch.

The GL class exists for "infrequent, time-critical messages, such as
interrupts, that need to quickly pass through the network" (paper Section
1). Here an interrupt controller sends single-flit interrupts to a core
whose switch output is saturated by 8-flit GB transfers. The same
interrupts are sent three ways — as BE, as GB (with a small reservation),
and as GL — and their worst-case latencies compared against the Eq. 1
analytical bound.

Run:  python examples/interrupt_latency.py
"""

from repro import (
    ARBITER_PRESETS,
    FlowId,
    GLPolicerConfig,
    QoSConfig,
    Simulation,
    SwitchConfig,
    TrafficClass,
    Workload,
    be_flow,
    gb_flow,
    gl_flow,
    gl_latency_bound,
)
from repro.metrics import format_table

IRQ_SOURCE = 0
TARGET_CORE = 0
IRQ_BURST = 8  # interrupts per event (e.g. a cascaded device)
IRQ_PERIOD = 5_000  # cycles between interrupt events — genuinely infrequent
BACKGROUND_LOAD = 0.95  # background injects just under its reservations


def _irq_process():
    """A burst of IRQ_BURST single-flit interrupts every IRQ_PERIOD cycles.

    Bursts are the adversarial case for the GB class: Virtual Clock charges
    each packet a full Vtick (= 1/reserved_rate cycles for 1-flit packets),
    so the tail of a burst waits out the flow's tiny reservation. The GL
    lane is immune — that is exactly why the paper adds it.
    """
    from repro.traffic import TraceInjection

    times = [
        event * IRQ_PERIOD + i
        for event in range(1, 1_000)
        for i in range(IRQ_BURST)
    ]
    return TraceInjection(times)


def build_workload(irq_class: TrafficClass) -> Workload:
    """Saturating GB background plus interrupts of the chosen class."""
    workload = Workload(name=f"interrupts-as-{irq_class.short_name}")
    irq_process = _irq_process()
    if irq_class is TrafficClass.GL:
        workload.add(gl_flow(IRQ_SOURCE, TARGET_CORE, packet_length=1, process=irq_process))
    elif irq_class is TrafficClass.GB:
        workload.add(
            gb_flow(
                IRQ_SOURCE, TARGET_CORE, reserved_rate=0.01,
                packet_length=1, process=irq_process,
            )
        )
    else:
        workload.add(be_flow(IRQ_SOURCE, TARGET_CORE, packet_length=1, process=irq_process))
    # Background: seven inputs run just below their reservations, so their
    # virtual clocks idle at the highest-priority level — the regime where
    # a bursting low-reservation flow actually has to wait its Vticks out.
    for src in range(1, 8):
        workload.add(
            gb_flow(
                src,
                TARGET_CORE,
                reserved_rate=0.12,
                packet_length=8,
                inject_rate=0.12 * BACKGROUND_LOAD,
            )
        )
    return workload


def main() -> None:
    config = SwitchConfig(
        radix=8,
        channel_bits=128,
        gb_buffer_flits=16,
        gl_buffer_flits=IRQ_BURST,
        be_buffer_flits=IRQ_BURST,
        qos=QoSConfig(sig_bits=4, frac_bits=8),
        gl_policer=GLPolicerConfig(reserved_rate=0.05, burst_window=4096),
    )
    horizon = 150_000

    rows = []
    for irq_class in (TrafficClass.BE, TrafficClass.GB, TrafficClass.GL):
        sim = Simulation(
            config,
            build_workload(irq_class),
            arbiter_factory=ARBITER_PRESETS["three-class"],
            seed=19,
        )
        result = sim.run(horizon)
        stats = result.stats.flow_stats(FlowId(IRQ_SOURCE, TARGET_CORE, irq_class))
        delivered = stats.latency.count
        rows.append(
            (
                irq_class.short_name,
                delivered,
                stats.latency.mean if delivered else None,
                stats.latency.p99 if delivered else None,
                stats.waiting.maximum if stats.waiting.count else None,
            )
        )

    bound = gl_latency_bound(l_max=8, l_min=1, n_gl=1, buffer_flits=config.gl_buffer_flits)
    print(
        format_table(
            ["IRQ class", "IRQs", "mean lat", "p99 lat", "max wait"],
            rows,
            title="Interrupt delivery through a saturated output (cycles)",
            float_format=".1f",
        )
    )
    print(f"\nEq. 1 analytical bound on GL waiting: {bound:.0f} cycles")
    print(
        "BE interrupts queue behind every guaranteed packet; GB interrupts "
        "pay the Virtual Clock coupling — the tail of each burst waits out "
        "the flow's 1% reservation (~100-cycle Vticks); GL rides the "
        "dedicated lane and its worst wait stays within the Eq. 1 bound."
    )


if __name__ == "__main__":
    main()
