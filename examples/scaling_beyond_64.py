#!/usr/bin/env python3
"""What happens past one switch — the paper's Section 4.4 frontier, live.

The paper's QoS technique "is not scalable beyond 64 nodes" without
composing multiple switches, and composing "makes the QoS technique more
complex". This example runs the victim/aggressor scenario from
``repro.experiments.composition`` on both a single 16-radix Swizzle Switch
and a 4x4 two-stage Clos, then prints the lane-feasibility table showing
where the single-switch design runs out of bus width.

Run:  python examples/scaling_beyond_64.py
"""

from repro.experiments.composition import run_composition
from repro.hw.lanes import lane_feasibility_table, required_bus_width
from repro.metrics import format_table


def main() -> None:
    print("Where a single Swizzle Switch stops (Section 4.4):\n")
    rows = [
        (radix, width, lanes, "yes" if ok else "NO", levels)
        for radix, width, lanes, ok, levels in lane_feasibility_table()
    ]
    print(
        format_table(
            ["radix", "bus bits", "lanes", "3 classes?", "GB levels"],
            rows,
            title="num_lanes = bus width / radix (>= 3 lanes for BE+GB+GL)",
        )
    )
    print(f"\nradix 64 needs a {required_bus_width(64)}-bit bus; "
          "radix 128 has no standard bus wide enough -> compose switches.\n")

    print("And what composing costs (victim holds a 30% reservation,")
    print("an aggressor shares its ingress crosspoint aggregate):\n")
    result = run_composition(horizon=60_000)
    print(result.format())
    print(
        "\nBandwidth aggregates survive the composition, but per-flow "
        "latency isolation does not — which is why the paper argues a "
        "single high-radix switch 'is more than reasonable for current "
        "and near-term products'."
    )


if __name__ == "__main__":
    main()
