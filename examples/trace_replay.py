#!/usr/bin/env python3
"""Trace capture and bit-identical replay across policies.

Records the packet creations of a bursty uniform-random workload to a
JSON-lines trace file, then replays the *identical* offered traffic under
LRG and under SSVC. Because the trace pins every creation cycle, the
throughput/latency differences are attributable to arbitration alone.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import ARBITER_PRESETS, Simulation, TrafficClass
from repro.experiments.common import gb_only_config
from repro.metrics import format_table
from repro.traffic import (
    BurstyInjection,
    Workload,
    gb_flow,
    load_trace,
    save_trace,
    workload_from_trace,
)
from repro.traffic.trace import TraceRecord


def original_workload(radix: int) -> Workload:
    """Bursty all-to-one traffic with equal reservations."""
    workload = Workload(name="bursty-capture")
    share = 0.8 / radix
    for src in range(radix):
        workload.add(
            gb_flow(
                src,
                0,
                reserved_rate=share,
                packet_length=8,
                process=BurstyInjection(rate_flits=share, burst_packets=5.0),
            )
        )
    return workload


def capture_trace(radix: int, horizon: int, path: Path) -> int:
    """Run once with event collection and write the creation trace."""
    config = gb_only_config(radix=radix)
    sim = Simulation(
        config,
        original_workload(radix),
        arbiter_factory=ARBITER_PRESETS["ssvc"],
        seed=3,
        collect_events=True,
    )
    sim.run(horizon)
    # Creations are recoverable from the sources' schedules; simplest is to
    # rebuild the same schedules and dump them. (Sources are seeded, so the
    # trace equals what the run offered.)
    records = []
    rebuilt = Simulation(
        config, original_workload(radix), arbiter_factory=ARBITER_PRESETS["ssvc"], seed=3
    )
    for source in rebuilt._build_sources(horizon):  # noqa: SLF001 - demo introspection
        while source.peek_time() is not None:
            packet = source.pop_scheduled()
            records.append(
                TraceRecord(
                    cycle=packet.created_cycle,
                    src=packet.src,
                    dst=packet.dst,
                    traffic_class=packet.traffic_class,
                    flits=packet.flits,
                )
            )
    records.sort(key=lambda r: (r.cycle, r.src))
    return save_trace(records, path)


def main() -> None:
    radix, horizon = 8, 60_000
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "bursty.jsonl"
        count = capture_trace(radix, horizon, trace_path)
        print(f"captured {count} packet creations -> {trace_path.name}")

        records = load_trace(trace_path)
        reservations = {(src, 0): 0.8 / radix for src in range(radix)}
        rows = []
        for policy in ("lrg", "ssvc"):
            workload = workload_from_trace(records, reserved_rates=reservations)
            config = gb_only_config(radix=radix)
            sim = Simulation(
                config, workload, arbiter_factory=ARBITER_PRESETS[policy], seed=3
            )
            result = sim.run(horizon)
            latencies = [
                result.stats.flow_stats(flow).latency.mean
                for flow in result.stats.flows
                if flow.traffic_class is TrafficClass.GB
                and result.stats.flow_stats(flow).latency.count
            ]
            rows.append(
                (
                    policy,
                    result.stats.output_throughput(0),
                    sum(latencies) / len(latencies),
                    max(latencies),
                )
            )
        print(
            format_table(
                ["policy", "output thrpt", "mean flow latency", "worst flow latency"],
                rows,
                title="Identical replayed traffic, different arbitration",
            )
        )


if __name__ == "__main__":
    main()
