#!/usr/bin/env python3
"""Confidence intervals for the paper's headline claims.

Point estimates from one seed can mislead; this example reruns two headline
results across several seeds with ``repro.experiments.replication`` and
prints mean ± 95 % CI:

* Fig. 4(b): the 40 %-reservation flow's accepted rate at saturation under
  SSVC (vs. the 1/9 it gets under LRG);
* Fig. 5: the latency-spread ordering (original VC vs. SSVC-reset).

Run:  python examples/reproducibility_report.py
"""

from repro.experiments.fig4_bandwidth import run_fig4
from repro.experiments.fig5_latency_fairness import run_fig5
from repro.experiments.replication import replicate
from repro.metrics import format_table

SEEDS = (3, 11, 23, 47, 61)


def fig4_metrics(seed: int):
    ssvc = run_fig4("ssvc", injection_rates=(1.0,), horizon=25_000, seed=seed)
    lrg = run_fig4("lrg", injection_rates=(1.0,), horizon=25_000, seed=seed)
    return {
        "ssvc_flow0_rate": ssvc.saturation_shares[0],
        "ssvc_flow1_rate": ssvc.saturation_shares[1],
        "lrg_any_flow_rate": lrg.saturation_shares[0],
    }


def fig5_metrics(seed: int):
    result = run_fig5(horizon=80_000, seed=seed,
                      schemes=("virtual-clock", "ssvc-subtract", "ssvc-reset"))
    spread = result.latency_stddev_across_flows
    return {
        "vc_latency_spread": spread["virtual-clock"],
        "subtract_latency_spread": spread["ssvc-subtract"],
        "reset_latency_spread": spread["ssvc-reset"],
    }


def main() -> None:
    print(f"replicating across seeds {SEEDS}...\n")
    fig4 = replicate(fig4_metrics, SEEDS)
    fig5 = replicate(fig5_metrics, SEEDS)

    rows = []
    for summary in list(fig4.values()) + list(fig5.values()):
        rows.append((summary.name, summary.mean, summary.ci95_half_width))
    print(
        format_table(
            ["metric", "mean", "95% CI ±"],
            rows,
            title="Headline claims with confidence intervals",
        )
    )
    print(
        "\nAcross every seed: SSVC's 40% flow takes ~0.29 flits/cycle while "
        "LRG flattens everyone to ~0.11, and the reset counter mode's "
        "latency spread stays well below the original Virtual Clock's."
    )
    assert fig4["ssvc_flow0_rate"].mean > 2 * fig4["lrg_any_flow_rate"].mean
    assert fig5["reset_latency_spread"].mean < fig5["vc_latency_spread"].mean


if __name__ == "__main__":
    main()
