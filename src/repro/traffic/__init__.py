"""Workload generation: flows, injection processes, and traffic patterns.

* :mod:`repro.traffic.flows` — :class:`FlowSpec` (what a flow is: endpoints,
  class, reservation, injection behaviour) and :class:`Workload` bundles.
* :mod:`repro.traffic.generators` — injection processes (Bernoulli, bursty
  on/off, saturating, explicit trace) and the runtime sources the simulator
  draws packets from.
* :mod:`repro.traffic.patterns` — destination patterns (single hotspot,
  uniform random, permutation, transpose, bit-complement) expanded into
  per-(src, dst) flows, since a Virtual Clock flow is an (input, output)
  pair.
* :mod:`repro.traffic.trace` — record/replay of packet traces.
"""

from .flows import FlowSpec, Workload, be_flow, gb_flow, gl_flow
from .generators import (
    BernoulliInjection,
    BurstyInjection,
    FlowSource,
    InjectionProcess,
    SaturatingInjection,
    TraceInjection,
    build_source,
)
from .patterns import (
    FIG4_RESERVED_RATES,
    bit_complement_workload,
    bursty_uniform_workload,
    fig4_workload,
    hotspot_workload,
    permutation_workload,
    single_output_workload,
    uniform_be_workload,
    uniform_random_workload,
)
from .trace import TraceRecord, load_trace, save_trace, workload_from_trace

__all__ = [
    "BernoulliInjection",
    "BurstyInjection",
    "FIG4_RESERVED_RATES",
    "FlowSource",
    "FlowSpec",
    "InjectionProcess",
    "SaturatingInjection",
    "TraceInjection",
    "TraceRecord",
    "Workload",
    "be_flow",
    "bit_complement_workload",
    "build_source",
    "bursty_uniform_workload",
    "fig4_workload",
    "gb_flow",
    "gl_flow",
    "hotspot_workload",
    "load_trace",
    "permutation_workload",
    "save_trace",
    "single_output_workload",
    "uniform_be_workload",
    "uniform_random_workload",
    "workload_from_trace",
]
