"""Destination patterns expanded into per-(src, dst) flows.

A Virtual Clock flow is a (source, destination) pair, so spatial patterns
(uniform random, permutation, hotspot, ...) are expressed by building one
flow per active pair with the appropriate per-pair rate. These builders are
used by the scalability experiments and the domain examples; the paper's
own Fig. 4/5 setups use :func:`single_output_workload`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import TrafficError
from ..types import TrafficClass
from .flows import Workload, be_flow, gb_flow
from .generators import (
    BernoulliInjection,
    BurstyInjection,
    PacketLength,
    SaturatingInjection,
)


def single_output_workload(
    num_inputs: int,
    output: int,
    reserved_rates: Sequence[float],
    packet_length: PacketLength = 8,
    inject_rate: Optional[float] = None,
    traffic_class: TrafficClass = TrafficClass.GB,
) -> Workload:
    """All inputs target one output — the paper's Fig. 4/5 setup.

    Args:
        num_inputs: number of requesting inputs.
        output: the shared destination.
        reserved_rates: per-input reserved fraction (GB only; ignored for
            BE). Length must equal ``num_inputs``.
        packet_length: flits per packet.
        inject_rate: offered flits/cycle per input; ``None`` saturates.
        traffic_class: GB (reservations honoured) or BE.
    """
    if len(reserved_rates) != num_inputs:
        raise TrafficError(
            f"need {num_inputs} reserved rates, got {len(reserved_rates)}"
        )
    workload = Workload(name=f"single-output->{output}")
    for src in range(num_inputs):
        if traffic_class is TrafficClass.GB:
            workload.add(
                gb_flow(
                    src,
                    output,
                    reserved_rate=reserved_rates[src],
                    packet_length=packet_length,
                    inject_rate=inject_rate,
                )
            )
        elif traffic_class is TrafficClass.BE:
            workload.add(
                be_flow(src, output, packet_length=packet_length, inject_rate=inject_rate)
            )
        else:
            raise TrafficError("single_output_workload builds GB or BE flows only")
    return workload


#: Reserved fractions of the paper's Fig. 4 experiment: 40/20/10/10/5/5/5/5 %.
FIG4_RESERVED_RATES = (0.40, 0.20, 0.10, 0.10, 0.05, 0.05, 0.05, 0.05)


def uniform_random_workload(
    radix: int,
    inject_rate: float,
    packet_length: PacketLength = 8,
    reserved_share: float = 1.0,
) -> Workload:
    """Every input spreads its load evenly over all outputs (GB flows).

    Each (src, dst) pair becomes a flow reserving
    ``reserved_share / radix`` of its output and injecting
    ``inject_rate / radix`` flits/cycle.
    """
    if not 0.0 < reserved_share <= 1.0:
        raise TrafficError(f"reserved_share must be in (0, 1], got {reserved_share}")
    workload = Workload(name="uniform-random")
    per_pair_rate = inject_rate / radix
    per_pair_reservation = reserved_share / radix
    for src in range(radix):
        for dst in range(radix):
            workload.add(
                gb_flow(
                    src,
                    dst,
                    reserved_rate=per_pair_reservation,
                    packet_length=packet_length,
                    process=BernoulliInjection(per_pair_rate),
                )
            )
    return workload


def uniform_be_workload(
    radix: int,
    inject_rate: float,
    packet_length: PacketLength = 8,
) -> Workload:
    """Uniform random best-effort traffic — the canonical VOQ benchmark.

    Every input spreads ``inject_rate`` flits/cycle evenly over all
    outputs as unreserved BE flows. Unlike :func:`uniform_random_workload`
    (GB flows, which classic ports already virtual-output-queue), BE
    traffic exposes head-of-line blocking in classic mode, so this is the
    workload the scheduler tournament uses to compare classic and VOQ
    switches on equal terms.
    """
    workload = Workload(name="uniform-be")
    per_pair_rate = inject_rate / radix
    for src in range(radix):
        for dst in range(radix):
            workload.add(
                be_flow(
                    src,
                    dst,
                    packet_length=packet_length,
                    process=BernoulliInjection(per_pair_rate),
                )
            )
    return workload


def bursty_uniform_workload(
    radix: int,
    inject_rate: float,
    packet_length: PacketLength = 8,
    burst_packets: float = 4.0,
) -> Workload:
    """Uniformly-spread BE traffic injected in on/off bursts.

    Same spatial pattern as :func:`uniform_be_workload` but each flow uses
    the Section 4.3 two-state :class:`~repro.traffic.generators.
    BurstyInjection` process, stressing schedulers whose matchings react
    slowly to suddenly deep VOQs.
    """
    workload = Workload(name="bursty-uniform")
    per_pair_rate = inject_rate / radix
    for src in range(radix):
        for dst in range(radix):
            workload.add(
                be_flow(
                    src,
                    dst,
                    packet_length=packet_length,
                    process=BurstyInjection(per_pair_rate, burst_packets=burst_packets),
                )
            )
    return workload


def permutation_workload(
    radix: int,
    inject_rate: Optional[float] = None,
    packet_length: PacketLength = 8,
    permutation: Optional[Sequence[int]] = None,
    reserved_rates: Optional[Dict[int, float]] = None,
    seed: int = 7,
) -> Workload:
    """Each input sends to exactly one distinct output.

    Args:
        permutation: explicit destination per input; a random derangement-
            free permutation is drawn when omitted.
        reserved_rates: per-input reservation (defaults to 0.9 — nearly the
            whole dedicated channel).
    """
    if permutation is None:
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(radix).tolist()
    perm = list(permutation)
    if sorted(perm) != list(range(radix)):
        raise TrafficError(f"not a permutation of range({radix}): {perm}")
    workload = Workload(name="permutation")
    for src, dst in enumerate(perm):
        rate = (reserved_rates or {}).get(src, 0.9)
        process = (
            SaturatingInjection() if inject_rate is None else BernoulliInjection(inject_rate)
        )
        workload.add(
            gb_flow(src, dst, reserved_rate=rate, packet_length=packet_length, process=process)
        )
    return workload


def transpose_destination(src: int, radix: int) -> int:
    """Matrix-transpose pattern destination for ``src``."""
    bits = radix.bit_length() - 1
    if bits % 2 != 0:
        raise TrafficError(f"transpose needs an even number of address bits, radix={radix}")
    half = bits // 2
    lo = src & ((1 << half) - 1)
    hi = src >> half
    return (lo << half) | hi


def bit_complement_workload(
    radix: int,
    inject_rate: Optional[float] = None,
    packet_length: PacketLength = 8,
    reserved_rate: float = 0.9,
) -> Workload:
    """Each input ``i`` sends to output ``~i`` (another permutation)."""
    perm = [(radix - 1) ^ src for src in range(radix)]
    return permutation_workload(
        radix,
        inject_rate=inject_rate,
        packet_length=packet_length,
        permutation=perm,
        reserved_rates={src: reserved_rate for src in range(radix)},
    )


def hotspot_workload(
    radix: int,
    hotspot: int,
    hotspot_fraction: float = 0.5,
    inject_rate: float = 0.5,
    packet_length: PacketLength = 8,
) -> Workload:
    """Background uniform traffic plus a contended hotspot output.

    Every input sends ``hotspot_fraction`` of its load to ``hotspot`` and
    spreads the rest uniformly; reservations at the hotspot split the
    channel equally. This is the memory-controller-style scenario the
    paper's introduction motivates.
    """
    if not 0 <= hotspot < radix:
        raise TrafficError(f"hotspot {hotspot} out of range [0, {radix})")
    if not 0.0 < hotspot_fraction <= 1.0:
        raise TrafficError(f"hotspot_fraction must be in (0, 1], got {hotspot_fraction}")
    workload = Workload(name=f"hotspot@{hotspot}")
    hot_reservation = 0.95 / radix
    other_outputs = [o for o in range(radix) if o != hotspot]
    background = inject_rate * (1.0 - hotspot_fraction)
    for src in range(radix):
        workload.add(
            gb_flow(
                src,
                hotspot,
                reserved_rate=hot_reservation,
                packet_length=packet_length,
                process=BernoulliInjection(inject_rate * hotspot_fraction),
            )
        )
        if other_outputs and background > 0:
            per_dst = background / len(other_outputs)
            for dst in other_outputs:
                workload.add(
                    be_flow(
                        src,
                        dst,
                        packet_length=packet_length,
                        process=BernoulliInjection(per_dst),
                    )
                )
    return workload


def fig4_workload(
    inject_rate: Optional[float],
    packet_length: int = 8,
    output: int = 0,
) -> Workload:
    """The exact Fig. 4 workload: 8 inputs, one output, paper's rate mix."""
    return single_output_workload(
        num_inputs=len(FIG4_RESERVED_RATES),
        output=output,
        reserved_rates=list(FIG4_RESERVED_RATES),
        packet_length=packet_length,
        inject_rate=inject_rate,
    )
