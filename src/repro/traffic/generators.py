"""Injection processes and runtime packet sources.

An :class:`InjectionProcess` describes *when* a flow creates packets; a
:class:`FlowSource` is the runtime object the simulator polls. Scheduled
sources pre-draw their arrival times with a seeded NumPy generator so runs
are reproducible and the per-event cost is O(1); saturating sources instead
keep their input buffer topped up, modelling a source with infinite demand
(used for the congestion regions of Fig. 4).
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import TrafficError
from ..switch.flit import Packet
from ..types import FlowId

#: A packet length: fixed, or an inclusive (min, max) range sampled uniformly.
PacketLength = Union[int, Tuple[int, int]]


def _validate_length(length: PacketLength) -> None:
    if isinstance(length, int):
        if length <= 0:
            raise TrafficError(f"packet length must be positive, got {length}")
        return
    lo, hi = length
    if lo <= 0 or hi < lo:
        raise TrafficError(f"packet length range must satisfy 0 < min <= max, got {length}")


def _mean_length(length: PacketLength) -> float:
    if isinstance(length, int):
        return float(length)
    return (length[0] + length[1]) / 2.0


class InjectionProcess(abc.ABC):
    """When a flow creates packets (open-loop unless saturating)."""

    @abc.abstractmethod
    def arrival_times(
        self, horizon: int, packet_length: PacketLength, rng: np.random.Generator
    ) -> np.ndarray:
        """Sorted integer creation cycles within ``[0, horizon)``."""

    @property
    def saturating(self) -> bool:
        """True when the source always has another packet to offer."""
        return False


class BernoulliInjection(InjectionProcess):
    """Independent per-cycle packet creation at a target flit rate.

    Args:
        rate_flits: offered load in flits per cycle, in (0, 1]. The
            per-cycle packet probability is ``rate_flits / mean_length``.
    """

    def __init__(self, rate_flits: float) -> None:
        if not 0.0 < rate_flits <= 1.0:
            raise TrafficError(f"rate_flits must be in (0, 1], got {rate_flits}")
        self.rate_flits = rate_flits

    def arrival_times(
        self, horizon: int, packet_length: PacketLength, rng: np.random.Generator
    ) -> np.ndarray:
        _validate_length(packet_length)
        p = min(self.rate_flits / _mean_length(packet_length), 1.0)
        if p <= 0.0 or horizon <= 0:
            return np.empty(0, dtype=np.int64)
        # Geometric inter-arrivals are equivalent to per-cycle Bernoulli
        # trials but cost O(packets) instead of O(cycles).
        expected = int(horizon * p * 1.2) + 16
        gaps = rng.geometric(p, size=expected)
        times = np.cumsum(gaps) - 1
        while times.size and times[-1] < horizon:
            more = rng.geometric(p, size=expected)
            times = np.concatenate([times, times[-1] + np.cumsum(more)])
        return times[times < horizon].astype(np.int64)


class BurstyInjection(InjectionProcess):
    """Two-state on/off (Markov-modulated) injection.

    During an ON period the flow injects a burst of back-to-back packets;
    OFF periods are silent. Lengths are geometric with the given means, and
    the ON-state injection is scaled so the long-run average equals
    ``rate_flits``. This is the "bursty injection" regime of Section 4.3.

    Args:
        rate_flits: long-run average offered load in flits/cycle.
        burst_packets: mean packets per burst.
        on_rate_flits: injection rate while ON (defaults to 1.0 —
            back-to-back).
    """

    def __init__(
        self,
        rate_flits: float,
        burst_packets: float = 4.0,
        on_rate_flits: float = 1.0,
    ) -> None:
        if not 0.0 < rate_flits <= 1.0:
            raise TrafficError(f"rate_flits must be in (0, 1], got {rate_flits}")
        if burst_packets < 1.0:
            raise TrafficError(f"burst_packets must be >= 1, got {burst_packets}")
        if not 0.0 < on_rate_flits <= 1.0:
            raise TrafficError(f"on_rate_flits must be in (0, 1], got {on_rate_flits}")
        if rate_flits > on_rate_flits:
            raise TrafficError(
                f"average rate {rate_flits} cannot exceed ON rate {on_rate_flits}"
            )
        self.rate_flits = rate_flits
        self.burst_packets = burst_packets
        self.on_rate_flits = on_rate_flits

    def arrival_times(
        self, horizon: int, packet_length: PacketLength, rng: np.random.Generator
    ) -> np.ndarray:
        _validate_length(packet_length)
        mean_len = _mean_length(packet_length)
        on_gap = mean_len / self.on_rate_flits  # cycles between packets while ON
        mean_on = self.burst_packets * on_gap
        duty = self.rate_flits / self.on_rate_flits
        mean_off = mean_on * (1.0 - duty) / duty if duty < 1.0 else 0.0
        times = []
        t = float(rng.exponential(mean_off)) if mean_off > 0 else 0.0
        while t < horizon:
            packets = max(int(rng.geometric(1.0 / self.burst_packets)), 1)
            for _ in range(packets):
                if t >= horizon:
                    break
                times.append(int(t))
                t += on_gap
            if mean_off > 0:
                t += float(rng.exponential(mean_off))
        return np.asarray(sorted(times), dtype=np.int64)


class SaturatingInjection(InjectionProcess):
    """Infinite demand: the source always has the next packet ready."""

    def arrival_times(
        self, horizon: int, packet_length: PacketLength, rng: np.random.Generator
    ) -> np.ndarray:
        raise TrafficError(
            "saturating sources have no arrival schedule; the simulator tops "
            "up their buffers directly"
        )

    @property
    def saturating(self) -> bool:
        return True


class TraceInjection(InjectionProcess):
    """Explicit creation cycles, for replay and hand-built tests."""

    def __init__(self, times: Sequence[int]) -> None:
        if any(t < 0 for t in times):
            raise TrafficError(f"trace times must be >= 0, got {list(times)[:8]}...")
        self.times = np.asarray(sorted(times), dtype=np.int64)

    def arrival_times(
        self, horizon: int, packet_length: PacketLength, rng: np.random.Generator
    ) -> np.ndarray:
        return self.times[self.times < horizon]


class FlowSource:
    """Runtime packet factory for one flow.

    Args:
        flow: the flow identity.
        process: when packets are created.
        packet_length: fixed flits or an inclusive uniform range.
        horizon: simulation length in cycles (bounds schedule generation).
        rng: seeded generator (owned by the caller for reproducibility).
    """

    def __init__(
        self,
        flow: FlowId,
        process: InjectionProcess,
        packet_length: PacketLength,
        horizon: int,
        rng: np.random.Generator,
        id_source: Optional[Iterator[int]] = None,
    ) -> None:
        _validate_length(packet_length)
        self.flow = flow
        self.process = process
        self.packet_length = packet_length
        self._rng = rng
        self._ids = id_source
        self.created_count = 0
        if process.saturating:
            self._schedule: Optional[Iterator[int]] = None
            self._next: Optional[int] = None
        else:
            times = process.arrival_times(horizon, packet_length, rng)
            self._schedule = iter(times.tolist())
            self._next = next(self._schedule, None)

    @property
    def saturating(self) -> bool:
        """True when the simulator should keep this flow's buffer full."""
        return self.process.saturating

    def _draw_length(self) -> int:
        if isinstance(self.packet_length, int):
            return self.packet_length
        lo, hi = self.packet_length
        return int(self._rng.integers(lo, hi + 1))

    def make_packet(self, created_cycle: int) -> Packet:
        """Create one packet stamped at ``created_cycle``.

        When the owning simulation supplied a per-run ``id_source``, the
        packet id comes from it (replayable event traces); otherwise the
        process-global fallback stream is used.
        """
        self.created_count += 1
        if self._ids is not None:
            return Packet(
                flow=self.flow,
                flits=self._draw_length(),
                created_cycle=created_cycle,
                packet_id=next(self._ids),
            )
        return Packet(flow=self.flow, flits=self._draw_length(), created_cycle=created_cycle)

    def skip_packet(self) -> None:
        """Consume one packet id without creating a packet.

        The event kernel's saturating top-up discovers a full buffer by
        building the next packet and rolling ``created_count`` back — which
        still burns one id from the shared stream. A kernel that prechecks
        capacity arithmetically (possible only for fixed packet lengths,
        where :meth:`_draw_length` consumes no randomness) calls this once
        per abandoned top-up so downstream packet ids stay bit-identical.
        """
        if not isinstance(self.packet_length, int):
            raise TrafficError(
                f"skip_packet requires a fixed packet length, {self.flow} "
                f"draws lengths from {self.packet_length}"
            )
        if self._ids is not None:
            next(self._ids)

    # ------------------------------------------------- scheduled-source API

    def peek_time(self) -> Optional[int]:
        """Next scheduled creation cycle, or ``None`` (exhausted/saturating)."""
        return self._next

    def pop_scheduled(self) -> Packet:
        """Consume the next scheduled arrival and return its packet."""
        if self._next is None:
            raise TrafficError(f"source for {self.flow} has no scheduled arrival")
        packet = self.make_packet(int(self._next))
        assert self._schedule is not None
        self._next = next(self._schedule, None)
        return packet


def build_source(
    flow: FlowId,
    process: InjectionProcess,
    packet_length: PacketLength,
    horizon: int,
    seed: int,
) -> FlowSource:
    """Convenience constructor wiring a fresh seeded RNG to a source."""
    return FlowSource(flow, process, packet_length, horizon, np.random.default_rng(seed))
