"""Packet trace record/replay.

Traces decouple workload generation from simulation: a trace captured from
one run (or written by hand, or converted from an external tool) can be
replayed bit-identically against any arbitration policy, which is how the
policy-comparison benches hold the offered traffic constant.

The on-disk format is JSON lines, one record per packet creation:
``{"cycle": 12, "src": 0, "dst": 3, "cls": "GB", "flits": 8}``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from ..errors import TrafficError
from ..types import FlowId, TrafficClass
from .flows import FlowSpec, Workload
from .generators import TraceInjection


@dataclass(frozen=True)
class TraceRecord:
    """One packet creation event.

    Attributes:
        cycle: creation cycle.
        src: source input port.
        dst: destination output port.
        traffic_class: packet class.
        flits: packet length.
    """

    cycle: int
    src: int
    dst: int
    traffic_class: TrafficClass
    flits: int

    def __post_init__(self) -> None:
        if self.cycle < 0 or self.src < 0 or self.dst < 0 or self.flits <= 0:
            raise TrafficError(f"invalid trace record: {self}")

    def to_json(self) -> str:
        """Serialize as one JSON line."""
        return json.dumps(
            {
                "cycle": self.cycle,
                "src": self.src,
                "dst": self.dst,
                "cls": self.traffic_class.short_name,
                "flits": self.flits,
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        """Parse one JSON line.

        Raises:
            TrafficError: on malformed lines, with the offending content.
        """
        try:
            obj = json.loads(line)
            return cls(
                cycle=int(obj["cycle"]),
                src=int(obj["src"]),
                dst=int(obj["dst"]),
                traffic_class=TrafficClass[obj["cls"]],
                flits=int(obj["flits"]),
            )
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise TrafficError(f"malformed trace line {line!r}: {exc}") from exc


def save_trace(records: Iterable[TraceRecord], path: Union[str, Path]) -> int:
    """Write records as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(record.to_json() + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Read a JSON-lines trace file."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(TraceRecord.from_json(line))
    return records


def workload_from_trace(
    records: Iterable[TraceRecord],
    reserved_rates: "Dict[Tuple[int, int], float] | None" = None,
    name: str = "trace-replay",
) -> Workload:
    """Convert trace records into a replayable workload.

    Packets of one flow must share a length (the flow-level packet size is
    taken from the records; mixed sizes within a flow are rejected —
    split them into separate trace files if needed).

    Args:
        records: the trace.
        reserved_rates: optional GB reservation per (src, dst) pair;
            defaults to an equal split of 0.9 across the GB flows sharing
            each destination.
    """
    by_flow: Dict[FlowId, List[TraceRecord]] = {}
    for record in records:
        flow = FlowId(record.src, record.dst, record.traffic_class)
        by_flow.setdefault(flow, []).append(record)
    if not by_flow:
        raise TrafficError("trace contains no records")

    gb_per_dst: Dict[int, int] = {}
    for flow in by_flow:
        if flow.traffic_class is TrafficClass.GB:
            gb_per_dst[flow.dst] = gb_per_dst.get(flow.dst, 0) + 1

    workload = Workload(name=name)
    for flow, flow_records in sorted(by_flow.items(), key=lambda kv: str(kv[0])):
        lengths = {r.flits for r in flow_records}
        if len(lengths) != 1:
            raise TrafficError(
                f"flow {flow} has mixed packet lengths {sorted(lengths)}; "
                "replay requires one length per flow"
            )
        rate = None
        if flow.traffic_class is TrafficClass.GB:
            rate = (reserved_rates or {}).get(
                (flow.src, flow.dst), 0.9 / gb_per_dst[flow.dst]
            )
        workload.add(
            FlowSpec(
                flow=flow,
                packet_length=lengths.pop(),
                process=TraceInjection([r.cycle for r in flow_records]),
                reserved_rate=rate,
            )
        )
    return workload
