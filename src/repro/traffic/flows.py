"""Flow specifications and workload bundles.

A :class:`FlowSpec` is the complete description of one flow: identity
(src/dst/class), the bandwidth it reserves (GB flows), and how it injects
packets. A :class:`Workload` is a validated collection of specs for one
switch, ready to hand to :class:`repro.switch.simulator.Simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import TrafficError
from ..types import FlowId, TrafficClass
from .generators import (
    BernoulliInjection,
    InjectionProcess,
    PacketLength,
    SaturatingInjection,
)


@dataclass(frozen=True)
class FlowSpec:
    """One flow's identity, reservation, and injection behaviour.

    Attributes:
        flow: (src, dst, class) identity.
        packet_length: flits per packet — fixed, or an inclusive (min, max)
            range sampled uniformly per packet.
        process: injection process; ``None`` means the flow only exists as
            a reservation (no traffic) — useful for underutilization
            experiments where a flow reserves bandwidth it never uses.
        reserved_rate: fraction of the destination output's bandwidth
            reserved (GB flows only; must be ``None`` for BE, and GL flows
            share the class-wide reservation instead).
        priority_level: message priority used only by the DAC'12
            fixed-priority baseline.
    """

    flow: FlowId
    packet_length: PacketLength = 8
    process: Optional[InjectionProcess] = None
    reserved_rate: Optional[float] = None
    priority_level: int = 0

    def __post_init__(self) -> None:
        if self.reserved_rate is not None:
            if self.flow.traffic_class is not TrafficClass.GB:
                raise TrafficError(
                    f"only GB flows take per-flow reservations, got {self.flow}"
                )
            if not 0.0 < self.reserved_rate <= 1.0:
                raise TrafficError(
                    f"reserved_rate must be in (0, 1], got {self.reserved_rate}"
                )
        if self.flow.traffic_class is TrafficClass.GB and self.reserved_rate is None:
            raise TrafficError(f"GB flow {self.flow} requires a reserved_rate")
        if not 0 <= self.priority_level <= 3:
            raise TrafficError(f"priority_level must be in [0, 3], got {self.priority_level}")

    @property
    def mean_packet_flits(self) -> float:
        """Average packet length in flits."""
        if isinstance(self.packet_length, int):
            return float(self.packet_length)
        lo, hi = self.packet_length
        return (lo + hi) / 2.0

    def with_process(self, process: InjectionProcess) -> "FlowSpec":
        """Copy of this spec with a different injection process."""
        return replace(self, process=process)


def gb_flow(
    src: int,
    dst: int,
    reserved_rate: float,
    packet_length: PacketLength = 8,
    inject_rate: Optional[float] = None,
    process: Optional[InjectionProcess] = None,
) -> FlowSpec:
    """Build a Guaranteed Bandwidth flow.

    Args:
        src: input port.
        dst: output port.
        reserved_rate: reserved fraction of the output channel.
        packet_length: flits per packet.
        inject_rate: offered load in flits/cycle; defaults to a saturating
            source when neither this nor ``process`` is given.
        process: explicit injection process (overrides ``inject_rate``).
    """
    if process is None:
        process = (
            SaturatingInjection() if inject_rate is None else BernoulliInjection(inject_rate)
        )
    return FlowSpec(
        flow=FlowId(src, dst, TrafficClass.GB),
        packet_length=packet_length,
        process=process,
        reserved_rate=reserved_rate,
    )


def be_flow(
    src: int,
    dst: int,
    packet_length: PacketLength = 8,
    inject_rate: Optional[float] = None,
    process: Optional[InjectionProcess] = None,
) -> FlowSpec:
    """Build a Best-Effort flow (see :func:`gb_flow` for argument meanings)."""
    if process is None:
        process = (
            SaturatingInjection() if inject_rate is None else BernoulliInjection(inject_rate)
        )
    return FlowSpec(
        flow=FlowId(src, dst, TrafficClass.BE),
        packet_length=packet_length,
        process=process,
    )


def gl_flow(
    src: int,
    dst: int,
    packet_length: PacketLength = 1,
    inject_rate: Optional[float] = None,
    process: Optional[InjectionProcess] = None,
) -> FlowSpec:
    """Build a Guaranteed Latency flow; defaults to single-flit packets.

    GL is "envisioned for sending infrequent, time-critical messages, such
    as interrupts" — callers should use low injection rates unless testing
    the policer.
    """
    if process is None:
        process = (
            SaturatingInjection() if inject_rate is None else BernoulliInjection(inject_rate)
        )
    return FlowSpec(
        flow=FlowId(src, dst, TrafficClass.GL),
        packet_length=packet_length,
        process=process,
    )


@dataclass
class Workload:
    """A validated set of flows for one switch.

    Attributes:
        flows: the flow specifications.
        name: label used in reports.
    """

    flows: List[FlowSpec] = field(default_factory=list)
    name: str = "workload"

    def __iter__(self) -> Iterator[FlowSpec]:
        return iter(self.flows)

    def __len__(self) -> int:
        return len(self.flows)

    def add(self, spec: FlowSpec) -> "Workload":
        """Append a flow (fluent)."""
        self.flows.append(spec)
        return self

    def extend(self, specs: Iterable[FlowSpec]) -> "Workload":
        """Append several flows (fluent)."""
        self.flows.extend(specs)
        return self

    def validate(self, radix: int, gl_reserved_rate: float = 0.0) -> None:
        """Check endpoints, duplicates, and per-output reservation sums.

        Raises:
            TrafficError: on out-of-range ports, duplicate flow identities,
                or an output whose GB reservations plus the GL share exceed
                1.0.
        """
        seen = set()
        totals: Dict[int, float] = {}
        gl_outputs = set()
        for spec in self.flows:
            flow = spec.flow
            if not (0 <= flow.src < radix and 0 <= flow.dst < radix):
                raise TrafficError(f"flow {flow} endpoints out of range for radix {radix}")
            if flow in seen:
                raise TrafficError(f"duplicate flow {flow}")
            seen.add(flow)
            if spec.reserved_rate is not None:
                totals[flow.dst] = totals.get(flow.dst, 0.0) + spec.reserved_rate
            if flow.traffic_class is TrafficClass.GL:
                gl_outputs.add(flow.dst)
        for dst, total in totals.items():
            budget = 1.0 - (gl_reserved_rate if dst in gl_outputs else 0.0)
            if total > budget + 1e-9:
                raise TrafficError(
                    f"output {dst} oversubscribed: GB reservations sum to {total:.4f} "
                    f"with GL share {gl_reserved_rate if dst in gl_outputs else 0.0:.4f}"
                )

    @property
    def gb_flows(self) -> List[FlowSpec]:
        """The GB subset."""
        return [s for s in self.flows if s.flow.traffic_class is TrafficClass.GB]

    @property
    def gl_flows(self) -> List[FlowSpec]:
        """The GL subset."""
        return [s for s in self.flows if s.flow.traffic_class is TrafficClass.GL]

    @property
    def be_flows(self) -> List[FlowSpec]:
        """The BE subset."""
        return [s for s in self.flows if s.flow.traffic_class is TrafficClass.BE]
