"""Hardware cost models: storage, area, timing, lane feasibility.

These models regenerate the paper's Table 1 (SSVC storage), Table 2
(frequency with/without SSVC), the Section 4.5 area-overhead claims, and
the Section 4.4 lane-count scalability analysis. Storage and lane counts
are exact closed forms; area and timing are analytic models calibrated to
the paper's disclosed anchors (the paper's absolute numbers come from SPICE
on a 32 nm process we cannot rerun — see DESIGN.md Section 5).
"""

from .area import AreaModel, crosspoint_area_overhead
from .lanes import lane_feasibility_table, max_gb_levels, num_lanes, required_bus_width
from .storage import StorageBreakdown, storage_breakdown
from .timing import TimingModel, frequency_table

__all__ = [
    "AreaModel",
    "StorageBreakdown",
    "TimingModel",
    "crosspoint_area_overhead",
    "frequency_table",
    "lane_feasibility_table",
    "max_gb_levels",
    "num_lanes",
    "required_bus_width",
    "storage_breakdown",
]
