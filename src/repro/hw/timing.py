"""Switch frequency model with and without SSVC (paper Table 2).

The paper's absolute frequencies come from SPICE on a 32 nm industrial
process; we cannot rerun SPICE, so this is an analytic delay model with the
paper's *structure* and calibrated constants (DESIGN.md Section 5):

* base cycle time grows with radix (arbitration wire spans all inputs) and
  with bus width (wider crosspoints, longer output wires):
  ``t_SS = A + B * radix + C * width``;
* SSVC extends the critical path by "the multiplexer before the sense amp"
  (Fig. 2) that selects one of the ``num_lanes = width / radix`` lanes — a
  tree of ``log2(num_lanes)`` mux stages: ``t_SSVC = t_SS + D * stages``.

Calibration anchors from the paper: the Swizzle Switch runs at 1.5 GHz at
radix 64 (Section 1, 128-bit JETCAS configuration), and the worst SSVC
slowdown over the Table 2 grid is 8.4 % at the 8x8, 256-bit point
(Section 4.5). The constants below hit both anchors and keep the 8x8
256-bit point the grid maximum. Relative trends (who slows down most,
where SSVC is free) are the reproduction target; absolute GHz are not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigError
from .lanes import num_lanes


@dataclass(frozen=True)
class TimingModel:
    """Analytic cycle-time model.

    Attributes:
        base_ns: fixed logic delay (sense amps, precharge control).
        per_port_ns: wire delay per input spanned by the arbitration lines.
        per_bit_ns: delay per bus bit (crosspoint width / output loading).
        per_mux_stage_ns: delay of one 2:1 mux stage on the sense path.
    """

    base_ns: float = 0.22
    per_port_ns: float = 0.006
    per_bit_ns: float = 0.0005
    per_mux_stage_ns: float = 0.00726

    def cycle_time_ss(self, radix: int, width_bits: int) -> float:
        """Cycle time of the baseline Swizzle Switch, in ns."""
        if radix < 1 or width_bits < 1:
            raise ConfigError(f"invalid radix {radix} / width {width_bits}")
        return self.base_ns + self.per_port_ns * radix + self.per_bit_ns * width_bits

    def mux_stages(self, radix: int, width_bits: int) -> int:
        """2:1 mux stages needed to select among the arbitration lanes."""
        lanes = num_lanes(width_bits, radix)
        if lanes < 1:
            raise ConfigError(
                f"bus of {width_bits} bits cannot host one lane at radix {radix}"
            )
        return int(math.ceil(math.log2(lanes))) if lanes > 1 else 0

    def cycle_time_ssvc(self, radix: int, width_bits: int) -> float:
        """Cycle time with the SSVC lane-select mux on the critical path."""
        return self.cycle_time_ss(radix, width_bits) + (
            self.per_mux_stage_ns * self.mux_stages(radix, width_bits)
        )

    def frequency_ss(self, radix: int, width_bits: int) -> float:
        """Baseline frequency in GHz."""
        return 1.0 / self.cycle_time_ss(radix, width_bits)

    def frequency_ssvc(self, radix: int, width_bits: int) -> float:
        """SSVC frequency in GHz."""
        return 1.0 / self.cycle_time_ssvc(radix, width_bits)

    def slowdown(self, radix: int, width_bits: int) -> float:
        """Fractional frequency loss from SSVC (0.084 == 8.4 %)."""
        t_ss = self.cycle_time_ss(radix, width_bits)
        return (self.cycle_time_ssvc(radix, width_bits) - t_ss) / self.cycle_time_ssvc(
            radix, width_bits
        )


#: Grid of Table 2: radix x channel width.
TABLE2_RADICES = (8, 16, 32, 64)
TABLE2_WIDTHS = (128, 256, 512)


def frequency_table(
    model: TimingModel = TimingModel(),
    radices: Sequence[int] = TABLE2_RADICES,
    widths: Sequence[int] = TABLE2_WIDTHS,
) -> List[Tuple[int, int, float, float, float]]:
    """Table 2 rows: (radix, width, f_SS GHz, f_SSVC GHz, slowdown %)."""
    rows = []
    for radix in radices:
        for width in widths:
            if num_lanes(width, radix) < 1:
                continue
            rows.append(
                (
                    radix,
                    width,
                    model.frequency_ss(radix, width),
                    model.frequency_ssvc(radix, width),
                    100.0 * model.slowdown(radix, width),
                )
            )
    return rows
