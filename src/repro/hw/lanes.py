"""Arbitration lane feasibility (paper Section 4.4).

Each arbitration lane needs as many bitlines as the switch has inputs (one
LRG vector), so the output bus hosts

    num_lanes = output_bus_width / radix

lanes. Supporting all three traffic classes needs at least three lanes (one
BE, one GB, one GL); more lanes mean more GB thermometer levels and hence a
finer-grained — more accurate — SSVC comparison. The paper's summary:
128-bit buses suffice through radix 32; a radix-64 switch needs 256-bit
buses; and the technique does not scale beyond one switch (64 nodes)
without the multi-hop complications Section 4.4 describes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigError

#: Lanes consumed by the non-GB classes: one BE lane + one GL lane.
RESERVED_CLASS_LANES = 2

#: Minimum lanes to support all three traffic classes.
MIN_LANES_THREE_CLASSES = 3


def num_lanes(bus_width_bits: int, radix: int) -> int:
    """Lanes available on a bus (``width / radix``, floored)."""
    if bus_width_bits < 1 or radix < 1:
        raise ConfigError(
            f"bus width and radix must be positive, got {bus_width_bits}, {radix}"
        )
    return bus_width_bits // radix


def max_gb_levels(bus_width_bits: int, radix: int) -> int:
    """Thermometer levels available to the GB class.

    One lane each is set aside for the BE and GL classes; the rest carry
    GB thermometer levels. Returns 0 when three classes do not fit.
    """
    lanes = num_lanes(bus_width_bits, radix)
    return max(lanes - RESERVED_CLASS_LANES, 0)


def supports_three_classes(bus_width_bits: int, radix: int) -> bool:
    """Can this bus/radix combination host BE + GB + GL arbitration?"""
    return num_lanes(bus_width_bits, radix) >= MIN_LANES_THREE_CLASSES


def required_bus_width(
    radix: int,
    standard_widths: Sequence[int] = (128, 256, 512),
    min_lanes: int = MIN_LANES_THREE_CLASSES,
) -> int:
    """Smallest standard bus width supporting ``min_lanes`` lanes.

    Raises:
        ConfigError: when no standard width suffices (the paper's "not
            scalable beyond 64 nodes" regime).
    """
    for width in sorted(standard_widths):
        if num_lanes(width, radix) >= min_lanes:
            return width
    raise ConfigError(
        f"no standard bus width {list(standard_widths)} provides {min_lanes} "
        f"lanes at radix {radix}; compose multiple switches instead (Section 4.4)"
    )


def lane_feasibility_table(
    radices: Sequence[int] = (8, 16, 32, 64),
    widths: Sequence[int] = (128, 256, 512),
) -> List[Tuple[int, int, int, bool, int]]:
    """Section 4.4's scalability analysis as rows.

    Returns:
        Rows of (radix, bus width, lanes, three classes supported,
        GB thermometer levels).
    """
    return [
        (
            radix,
            width,
            num_lanes(width, radix),
            supports_three_classes(width, radix),
            max_gb_levels(width, radix),
        )
        for radix in radices
        for width in widths
    ]
