"""Arbitration-energy proxy for the SSVC extension.

The Swizzle Switch line of work leads with energy (the ISSCC 2012 silicon
reports 4.5 Tb/s at 3.4 Tb/s/W); the DAC paper itself quantifies only area
and delay. This model extends the analysis with a *switching-activity
proxy*: every bitline pull-down during inhibit arbitration is one
``C·V²`` event, and the wire-level fabric counts them exactly
(:attr:`repro.circuit.fabric.ArbitrationFabric.total_discharge_count`).

Two uses:

* **relative QoS cost** — SSVC arbitration drives up to ``levels + 1``
  lanes instead of the baseline's single LRG lane, so its worst-case
  arbitration activity is larger; :func:`arbitration_energy_overhead`
  bounds the overhead analytically and the bench cross-checks it against
  fabric counts;
* **absolute scale** — :class:`EnergyModel` converts counts to joules with
  a per-discharge energy calibrated so a saturated 64×64/128-bit baseline
  switch lands at the ISSCC anchor (data movement dominates; arbitration
  is a small slice, which the model exposes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: ISSCC 2012 anchor: 4.5 Tb/s at 3.4 Tb/s/W (64x64 Swizzle Switch).
ISSCC_THROUGHPUT_TBPS = 4.5
ISSCC_EFFICIENCY_TBPS_PER_W = 3.4


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in picojoules.

    Attributes:
        data_pj_per_bit: moving one payload bit across the crossbar.
            Calibrated to the ISSCC efficiency anchor assuming data
            movement is ~90 % of total power.
        discharge_pj: one arbitration bitline pull-down + its recharge.
    """

    data_pj_per_bit: float = 0.265  # ~1/3.4 pJ/bit x 90% share
    discharge_pj: float = 0.05

    def __post_init__(self) -> None:
        if self.data_pj_per_bit <= 0 or self.discharge_pj <= 0:
            raise ConfigError("energy coefficients must be positive")

    def data_energy_pj(self, flits: int, channel_bits: int) -> float:
        """Payload-movement energy for ``flits`` flits on a channel."""
        if flits < 0 or channel_bits <= 0:
            raise ConfigError(f"invalid flits={flits} channel_bits={channel_bits}")
        return flits * channel_bits * self.data_pj_per_bit

    def arbitration_energy_pj(self, discharge_count: int) -> float:
        """Arbitration energy for a measured pull-down count."""
        if discharge_count < 0:
            raise ConfigError(f"discharge_count must be >= 0, got {discharge_count}")
        return discharge_count * self.discharge_pj

    def arbitration_share(
        self, discharge_count: int, flits: int, channel_bits: int
    ) -> float:
        """Arbitration energy as a fraction of total (data + arbitration)."""
        arb = self.arbitration_energy_pj(discharge_count)
        data = self.data_energy_pj(flits, channel_bits)
        return arb / (arb + data) if (arb + data) > 0 else 0.0


def worst_case_discharges_per_arbitration(
    radix: int, levels: int, gl_lane: bool = True
) -> int:
    """Upper bound on pull-downs in one SSVC arbitration.

    Every requester can discharge at most all bitlines of every lane above
    its level plus one LRG row; summed over ``radix`` requesters the loose
    bound is ``radix * (levels + gl) * radix`` — each of the
    ``(levels + gl) * radix`` bitlines pulled by every requester.
    """
    if radix < 1 or levels < 1:
        raise ConfigError(f"invalid radix={radix} levels={levels}")
    lanes = levels + (1 if gl_lane else 0)
    return radix * lanes * radix


def arbitration_energy_overhead(
    radix: int, levels: int, model: EnergyModel = EnergyModel()
) -> float:
    """Worst-case SSVC-vs-LRG arbitration energy ratio.

    Baseline LRG arbitration uses one lane (``radix`` bitlines); SSVC uses
    ``levels`` GB lanes plus the GL lane. The ratio of worst-case activity
    bounds the energy multiplier of the QoS extension's *arbitration*
    (data movement, the dominant term, is unchanged).
    """
    ssvc = worst_case_discharges_per_arbitration(radix, levels, gl_lane=True)
    lrg = worst_case_discharges_per_arbitration(radix, 1, gl_lane=False)
    return ssvc / lrg
