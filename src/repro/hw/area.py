"""Crosspoint area model (paper Section 4.5).

"The switch arbitration logic in the Swizzle Switch is located underneath
the crosspoint on a separate metal layer. Without QoS support, the
arbitration logic fits within the same area as the crosspoint width of a
128-bit channel." The SSVC additions (auxVC counter, the Vtick adder, the
lane-select mux before the sense amp) need extra room; at 128 bits the
crosspoint grows by ~2 % — "equivalent to the area of a 131-bit channel" —
while 256- and 512-bit crosspoints are already large enough to absorb the
logic for free.

The model works in *bitline-equivalents*: a crosspoint's footprint is
proportional to its channel width, the baseline arbitration logic consumes
the footprint of a 128-bit crosspoint, and the SSVC logic adds a constant
plus an LRG-row term that grows with radix. Overhead is whatever does not
fit under the existing footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import ConfigError

#: Channel width whose crosspoint exactly fits the baseline arbitration
#: logic (paper Section 4.5).
BASELINE_FIT_BITS = 128


@dataclass(frozen=True)
class AreaModel:
    """SSVC logic size in bitline-equivalents.

    Attributes:
        fixed_bits: width-independent logic (counter, adder, mux control).
            Calibrated so an 8x8, 128-bit crosspoint lands on the paper's
            ~2 % (131-bit-equivalent) figure.
        per_port_bits: growth with radix (the replicated LRG row and wider
            lane mux).
    """

    fixed_bits: float = 2.0
    per_port_bits: float = 0.125

    def ssvc_logic_bits(self, radix: int) -> float:
        """SSVC logic footprint in bitline-equivalents."""
        if radix < 1:
            raise ConfigError(f"radix must be >= 1, got {radix}")
        return self.fixed_bits + self.per_port_bits * radix

    def overhead_fraction(self, radix: int, width_bits: int) -> float:
        """Fractional crosspoint area increase from SSVC.

        Crosspoints wider than :data:`BASELINE_FIT_BITS` have
        ``width - 128`` bitline-equivalents of slack under which the SSVC
        logic hides; only the remainder grows the footprint.
        """
        if width_bits < 1:
            raise ConfigError(f"width_bits must be >= 1, got {width_bits}")
        slack = max(width_bits - BASELINE_FIT_BITS, 0)
        exposed = max(self.ssvc_logic_bits(radix) - slack, 0.0)
        return exposed / width_bits

    def equivalent_channel_bits(self, radix: int, width_bits: int) -> float:
        """The channel width whose plain crosspoint matches SSVC's area.

        At 8x8/128-bit this reproduces the paper's "131-bit channel".
        """
        return width_bits * (1.0 + self.overhead_fraction(radix, width_bits))


def crosspoint_area_overhead(
    model: AreaModel = AreaModel(),
    radices: Sequence[int] = (8, 16, 32),
    widths: Sequence[int] = (128, 256, 512),
) -> List[Tuple[int, int, float, float]]:
    """Section 4.5's sweep: (radix, width, overhead %, equivalent bits)."""
    return [
        (
            radix,
            width,
            100.0 * model.overhead_fraction(radix, width),
            model.equivalent_channel_bits(radix, width),
        )
        for radix in radices
        for width in widths
    ]
