"""SSVC storage model (paper Table 1).

Closed-form accounting of every bit the QoS extension stores:

* per-input buffering — BE (one queue), GB (one queue **per output**:
  virtual output queues), GL (one queue);
* per-crosspoint state — the auxVC counter (``sig + frac`` bits), the
  thermometer code register (one bit per level), the Vtick register, and
  the replicated LRG row (``radix - 1`` bits).

For the paper's worst case — a 64x64 switch with 512-bit buses, 64-byte
flits and 4-flit buffers — this model reproduces Table 1 exactly:
1,056 KB of input buffering + 45 KB of crosspoint state = 1,101 KB.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SwitchConfig


@dataclass(frozen=True)
class StorageBreakdown:
    """All storage quantities of Table 1, in bytes unless noted.

    Attributes mirror the table's rows; totals are derived properties.
    """

    config: SwitchConfig
    be_buffer_per_input: float
    gb_buffer_per_input: float
    gl_buffer_per_input: float
    auxvc_per_crosspoint: float
    thermometer_per_crosspoint: float
    vtick_per_crosspoint: float
    lrg_per_crosspoint: float

    @property
    def buffering_per_input(self) -> float:
        """Total buffer bytes at one input port."""
        return self.be_buffer_per_input + self.gb_buffer_per_input + self.gl_buffer_per_input

    @property
    def total_buffering(self) -> float:
        """Buffer bytes across all inputs."""
        return self.buffering_per_input * self.config.radix

    @property
    def state_per_crosspoint(self) -> float:
        """QoS state bytes at one crosspoint."""
        return (
            self.auxvc_per_crosspoint
            + self.thermometer_per_crosspoint
            + self.vtick_per_crosspoint
            + self.lrg_per_crosspoint
        )

    @property
    def num_crosspoints(self) -> int:
        """Crosspoints in the switch (radix squared)."""
        return self.config.radix * self.config.radix

    @property
    def total_crosspoint_state(self) -> float:
        """QoS state bytes across all crosspoints."""
        return self.state_per_crosspoint * self.num_crosspoints

    @property
    def total(self) -> float:
        """Total switch storage (buffering + crosspoint state) in bytes."""
        return self.total_buffering + self.total_crosspoint_state

    def rows(self) -> list:
        """Table 1-style rows: (item, bytes)."""
        return [
            ("BE buffer / input", self.be_buffer_per_input),
            ("GB buffers / input (VOQs)", self.gb_buffer_per_input),
            ("GL buffer / input", self.gl_buffer_per_input),
            ("Total buffering (all inputs)", self.total_buffering),
            ("auxVC / crosspoint", self.auxvc_per_crosspoint),
            ("Thermometer / crosspoint", self.thermometer_per_crosspoint),
            ("Vtick / crosspoint", self.vtick_per_crosspoint),
            ("LRG / crosspoint", self.lrg_per_crosspoint),
            ("Total crosspoint state", self.total_crosspoint_state),
            ("Total switch storage", self.total),
        ]


def storage_breakdown(config: SwitchConfig) -> StorageBreakdown:
    """Compute the Table 1 storage breakdown for any configuration."""
    flit = config.flit_bytes
    radix = config.radix
    qos = config.qos
    return StorageBreakdown(
        config=config,
        be_buffer_per_input=config.be_buffer_flits * flit,
        gb_buffer_per_input=config.gb_buffer_flits * radix * flit,
        gl_buffer_per_input=config.gl_buffer_flits * flit,
        auxvc_per_crosspoint=qos.counter_bits / 8.0,
        thermometer_per_crosspoint=qos.levels / 8.0,
        vtick_per_crosspoint=qos.vtick_bits / 8.0,
        lrg_per_crosspoint=(radix - 1) / 8.0,
    )
