"""The ``repro-serve`` wire protocol: NDJSON messages over a TCP stream.

One connection, one conversation. The client writes exactly one request
line (``{"op": ...}``); the daemon answers with one or more
newline-delimited JSON response lines (``{"kind": ...}``) and closes.
``submit`` is the streaming op: the daemon emits ``accepted``, then a
``progress`` line per completed or cache-served point (doubling as the
client-visible heartbeat), interleaved ``event`` lines forwarding
``resilience.*``/``catalog.*`` trace events, and finally exactly one
terminal line — ``result``, ``error``, or (before any work starts)
``shed``. A bounded queue sheds loudly: the client always receives an
explicit refusal, never a silent drop.

Values and sweep-point params travel as **reprs**, not as JSON values:
JSON would silently turn tuples into lists and lose float bit-exactness
guarantees, which would change ``repr``s and therefore every content key
and result hash. ``ast.literal_eval`` on the receiving side restores the
exact object, and the executor's existing bit-identity asserts check the
round trip end to end.
"""

from __future__ import annotations

import ast
import json
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigError
from ..parallel.envelope import SweepPoint
from ..resilience.journal import SweepPointLike

#: Bumped when the message layout changes incompatibly; the daemon
#: rejects submits from a different major version.
PROTOCOL_VERSION = 1

#: Upper bound on one message line; a sweep's result line carries every
#: value repr, so this is generous but still a guard against a peer
#: streaming garbage without a newline.
MAX_LINE_BYTES = 64 * 1024 * 1024


def write_message(stream: Any, message: Dict[str, Any]) -> None:
    """Serialize one message as a newline-terminated JSON line and flush.

    ``stream`` is any binary file-like object (a ``socket.makefile`` or a
    request handler's ``wfile``); propagates ``OSError``/``BrokenPipeError``
    to the caller, who decides whether a vanished peer matters.
    """
    stream.write((json.dumps(message) + "\n").encode("utf-8"))
    stream.flush()


def read_message(stream: Any) -> Optional[Dict[str, Any]]:
    """Read one message line; None on a cleanly closed stream.

    Raises:
        ConfigError: on a non-JSON line, a non-object payload, or a line
            exceeding :data:`MAX_LINE_BYTES` (no terminating newline
            within the bound).
    """
    line = stream.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ConfigError(
            f"serve message exceeds {MAX_LINE_BYTES} bytes without a newline"
        )
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"malformed serve message ({exc}): {text[:200]!r}"
        ) from exc
    if not isinstance(payload, dict):
        raise ConfigError(
            f"serve message must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_serve_url(url: str) -> Tuple[str, int]:
    """``host:port`` (optionally ``tcp://host:port``) -> ``(host, port)``.

    Raises:
        ConfigError: on an unsupported scheme, a missing port, or a port
            outside 1..65535.
    """
    text = url
    if "://" in text:
        scheme, _, text = text.partition("://")
        if scheme != "tcp":
            raise ConfigError(
                f"unsupported serve URL scheme {scheme!r} (use tcp://host:port)"
            )
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ConfigError(f"serve URL must be host:port, got {url!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ConfigError(f"serve URL port must be an integer, got {url!r}") from exc
    if not 0 < port < 65536:
        raise ConfigError(f"serve URL port must be in 1..65535, got {port}")
    return host, port


def point_to_wire(point: SweepPointLike) -> Dict[str, Any]:
    """One sweep point as a wire object (params as an exact repr)."""
    return {
        "index": point.index,
        "label": point.label,
        "seed": point.seed,
        "params_repr": repr(point.params),
    }


def point_from_wire(payload: Dict[str, Any]) -> SweepPoint:
    """Reconstruct the exact :class:`SweepPoint` a client serialized.

    Raises:
        ConfigError: on missing fields or a ``params_repr`` that is not a
            literal tuple — a daemon must never guess at an envelope,
            because the content key is derived from it.
    """
    for fieldname in ("index", "label", "seed", "params_repr"):
        if fieldname not in payload:
            raise ConfigError(f"serve point is missing {fieldname!r}")
    try:
        params = ast.literal_eval(str(payload["params_repr"]))
    except (ValueError, SyntaxError) as exc:
        raise ConfigError(
            f"serve point params_repr is not a Python literal: "
            f"{str(payload['params_repr'])[:200]!r}"
        ) from exc
    if not isinstance(params, tuple):
        raise ConfigError(
            f"serve point params must be a tuple, got {type(params).__name__}"
        )
    return SweepPoint(
        index=int(payload["index"]),
        label=str(payload["label"]),
        seed=int(payload["seed"]),
        params=params,
    )
