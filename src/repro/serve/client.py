"""Client side of ``repro-serve``: ship a sweep to the daemon, verify it back.

:class:`ServeClient` is what :meth:`repro.parallel.SweepExecutor.map`
dispatches to when ``ResilienceOptions.serve_url`` is set. It serializes
the sweep over the NDJSON protocol, relays the daemon's streamed progress
and trace events to the local probe, and — on the terminal ``result``
line — restores every value repr with ``ast.literal_eval`` and
recomputes :func:`repro.parallel.result_hash` locally, refusing the
response unless it matches the daemon's declared hash bit for bit. A
verified result is then recorded into the caller's own journal/catalog
(when attached), so a remote run leaves exactly the same durable local
artifacts a local run would.

Failure surface is explicit: a daemon that sheds, errors, or dies
mid-stream raises :class:`~repro.errors.SimulationError` naming the
cause; an unreachable daemon raises immediately. Nothing retries
silently — resubmission is the caller's decision, and thanks to the
daemon's catalog the resubmitted points that already completed come back
as cache hits.
"""

from __future__ import annotations

import ast
import socket
from typing import Any, Dict, List, Sequence

from ..errors import ConfigError, SimulationError
from ..parallel.envelope import PointResult, SweepPoint, result_hash
from ..resilience import ResilienceOptions
from ..resilience.journal import point_key, worker_name
from ..resilience.outcome import SweepOutcome
from .protocol import (
    PROTOCOL_VERSION,
    parse_serve_url,
    point_to_wire,
    read_message,
    write_message,
)


class ServeClient:
    """One daemon address; every operation is one connection."""

    def __init__(self, url: str, timeout: float = 600.0) -> None:
        self.url = url
        self.host, self.port = parse_serve_url(url)
        #: socket timeout per blocking read — generous, because a healthy
        #: daemon heartbeats a progress line per completed point.
        self.timeout = timeout

    # ------------------------------------------------------------- simple ops

    def ping(self) -> Dict[str, Any]:
        """Round-trip a ``ping``; returns the daemon's ``pong`` payload."""
        return self._roundtrip({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """The daemon's counters, leases, and catalog statistics."""
        return self._roundtrip({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit (returns its acknowledgement)."""
        return self._roundtrip({"op": "shutdown"})

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise SimulationError(
                f"cannot reach repro-serve daemon at {self.url}: {exc}"
            ) from exc
        try:
            with sock.makefile("rwb") as stream:
                write_message(stream, request)
                reply = read_message(stream)
        finally:
            sock.close()
        if reply is None:
            raise SimulationError(
                f"repro-serve daemon at {self.url} closed the stream "
                "without replying"
            )
        return reply

    # ----------------------------------------------------------------- submit

    def submit(
        self,
        fn: object,
        points: Sequence[SweepPoint],
        options: ResilienceOptions,
    ) -> SweepOutcome:
        """Run one sweep on the daemon; returns a verified local outcome.

        Raises:
            SimulationError: when the daemon sheds the job, reports an
                error, dies mid-stream, or returns values whose locally
                recomputed hash differs from its declared one.
        """
        fn_name = worker_name(fn)
        request = {
            "op": "submit",
            "protocol": PROTOCOL_VERSION,
            "fn": fn_name,
            "points": [point_to_wire(point) for point in points],
            "retries": options.retry.retries,
            "point_timeout": options.retry.point_timeout,
        }
        reply = self._stream_submit(request, options)
        values = self._restore_values(reply, len(points))
        merged = result_hash(values)
        declared = str(reply.get("hash", ""))
        if merged != declared:
            raise SimulationError(
                "serve determinism violation: locally recomputed result "
                f"hash {merged} != daemon-declared {declared} for sweep "
                f"{fn_name} via {self.url}"
            )
        return self._record_local(fn_name, points, values, reply, options)

    def _stream_submit(
        self, request: Dict[str, Any], options: ResilienceOptions
    ) -> Dict[str, Any]:
        """One submit conversation; returns the terminal ``result`` message."""
        probe = options.probe
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise SimulationError(
                f"cannot reach repro-serve daemon at {self.url}: {exc}"
            ) from exc
        try:
            with sock.makefile("rwb") as stream:
                try:
                    write_message(stream, request)
                except OSError as exc:
                    raise SimulationError(
                        f"repro-serve daemon at {self.url} refused the "
                        f"submit: {exc}"
                    ) from exc
                while True:
                    try:
                        message = read_message(stream)
                    except OSError as exc:
                        raise SimulationError(
                            f"stream from repro-serve daemon at {self.url} "
                            f"broke mid-job: {exc} — the daemon's catalog "
                            "keeps every completed point; resubmit to "
                            "resume from cache hits"
                        ) from exc
                    if message is None:
                        raise SimulationError(
                            f"repro-serve daemon at {self.url} died "
                            "mid-job (stream ended before a result) — its "
                            "catalog keeps every fsync'd point; restart "
                            "the daemon and resubmit to resume from "
                            "cache hits"
                        )
                    kind = message.get("kind")
                    if kind == "result":
                        return message
                    if kind == "shed":
                        raise SimulationError(
                            f"repro-serve daemon at {self.url} shed the "
                            f"sweep: {message.get('reason', 'no reason given')}"
                        )
                    if kind == "error":
                        raise SimulationError(
                            f"repro-serve daemon at {self.url} failed the "
                            f"sweep: {message.get('detail', 'no detail given')}"
                        )
                    if probe is not None:
                        self._relay(probe, kind, message)
        finally:
            sock.close()

    @staticmethod
    def _relay(probe: Any, kind: Any, message: Dict[str, Any]) -> None:
        """Forward a non-terminal stream line to the local probe."""
        if kind == "progress":
            probe.count("serve.progress_messages")
        elif kind == "event":
            fields = message.get("fields")
            probe.event(
                f"serve.{message.get('event', 'unknown')}",
                0,
                **(fields if isinstance(fields, dict) else {}),
            )
        elif kind == "accepted":
            probe.count("serve.jobs_accepted")

    @staticmethod
    def _restore_values(reply: Dict[str, Any], expected: int) -> List[Any]:
        """Literal-eval the result line's value reprs, length-checked."""
        raw_values = reply.get("values")
        if not isinstance(raw_values, list) or len(raw_values) != expected:
            got = len(raw_values) if isinstance(raw_values, list) else "no"
            raise SimulationError(
                f"serve result carries {got} values, expected {expected}"
            )
        values: List[Any] = []
        for position, text in enumerate(raw_values):
            try:
                values.append(ast.literal_eval(str(text)))
            except (ValueError, SyntaxError) as exc:
                raise SimulationError(
                    f"serve result value {position} is not a Python "
                    f"literal: {str(text)[:200]!r}"
                ) from exc
        return values

    def _record_local(
        self,
        fn_name: str,
        points: Sequence[SweepPoint],
        values: List[Any],
        reply: Dict[str, Any],
        options: ResilienceOptions,
    ) -> SweepOutcome:
        """Mirror the verified remote results into local journal/catalog."""
        sweep = str(reply.get("sweep", fn_name))
        if options.journal is not None:
            sweep = options.journal.register_sweep(fn_name, points)
        cache_hits = int(reply.get("cache_hits", 0))
        outcome = SweepOutcome(
            sweep=sweep,
            total_points=len(points),
            cache_hits=cache_hits,
            journal_path=(
                options.journal.path if options.journal is not None else None
            ),
            catalog_path=(
                options.catalog.path
                if options.catalog is not None
                else str(reply["catalog"]) if "catalog" in reply else None
            ),
        )
        outcome.notes.append(
            f"executed remotely via repro-serve at {self.url} "
            f"({cache_hits} daemon cache hits, "
            f"{int(reply.get('computed', 0))} computed)"
        )
        for point, value in zip(points, values):
            outcome.results.append(PointResult(point=point, value=value))
            key = point_key(fn_name, point)
            if options.journal is not None:
                options.journal.record(sweep, key, point, value)
            if options.catalog is not None:
                options.catalog.record(fn_name, sweep, point, value)
        options.outcomes.append(outcome)
        return outcome
