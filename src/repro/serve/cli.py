"""``repro-serve``: run or talk to the sweep-service daemon.

Subcommands::

    repro-serve run --catalog run.catalog [--port 0 --port-file f ...]
    repro-serve ping --url 127.0.0.1:7341
    repro-serve stats --url 127.0.0.1:7341
    repro-serve shutdown --url 127.0.0.1:7341

``run`` blocks until drained (SIGINT/SIGTERM or a ``shutdown`` op) and
exits 0 with the catalog flushed; with ``--port 0`` the OS picks an
ephemeral port and ``--port-file`` publishes it for clients. ``ping`` /
``stats`` / ``shutdown`` are one-shot client ops printing the daemon's
JSON reply. Exit codes: 0 success, 1 daemon/stream failure, 2 usage or
configuration error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..catalog import RunCatalog
from ..errors import ConfigError, ReproError
from .client import ServeClient
from .daemon import ServeConfig, ServeDaemon


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="crash-safe, cache-hitting sweep service (docs/SERVICE.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start the daemon (blocks until drained)")
    run.add_argument(
        "--catalog",
        required=True,
        help="durable result catalog backing the service (created if missing, "
        "resumed if present)",
    )
    run.add_argument("--host", default="127.0.0.1", help="bind address")
    run.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (0 = OS-assigned ephemeral; see --port-file)",
    )
    run.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here (atomic) so clients can find an "
        "ephemeral port",
    )
    run.add_argument(
        "--jobs", type=int, default=1, help="worker processes per sweep job"
    )
    run.add_argument(
        "--queue-limit",
        type=int,
        default=4,
        help="submits allowed to wait behind the running job; beyond this "
        "the daemon sheds with an explicit response",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=0,
        help="default per-point retry budget when the client sends none",
    )
    run.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        help="default per-point watchdog seconds (needs --jobs >= 2)",
    )
    run.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        help="seconds a job may go without completing a point before its "
        "lease counts as expired",
    )
    run.add_argument(
        "--allow",
        action="append",
        default=None,
        metavar="PREFIX",
        help="dotted-name prefix submitted workers may come from "
        "(repeatable; default: repro.)",
    )
    run.add_argument(
        "--chaos-kill-after",
        type=int,
        default=None,
        help=argparse.SUPPRESS,  # crash-drill hook: SIGKILL self after the
        # Nth durable catalog append (CI uses it to prove resumability)
    )

    for name, doc in (
        ("ping", "liveness check; prints the daemon's pong"),
        ("stats", "print the daemon's counters, leases, and catalog stats"),
        ("shutdown", "ask the daemon to drain and exit"),
    ):
        op = sub.add_parser(name, help=doc)
        op.add_argument(
            "--url",
            required=True,
            help="daemon address as host:port (or tcp://host:port)",
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            config = ServeConfig(
                host=args.host,
                port=args.port,
                jobs=args.jobs,
                queue_limit=args.queue_limit,
                retries=args.retries,
                point_timeout=args.point_timeout,
                lease_timeout=args.lease_timeout,
                allow=tuple(args.allow) if args.allow else ("repro.",),
                chaos_kill_after=args.chaos_kill_after,
            )
            catalog = RunCatalog(args.catalog)
            daemon = ServeDaemon(config, catalog)
            return daemon.serve(port_file=args.port_file)
        client = ServeClient(args.url)
        if args.command == "ping":
            reply = client.ping()
        elif args.command == "stats":
            reply = client.stats()
        else:
            reply = client.shutdown()
        try:
            print(json.dumps(reply, indent=2, sort_keys=True))
        except BrokenPipeError:  # reprolint: disable=RL011
            # Downstream (e.g. `| head`) closed the pipe; the reply was
            # received fine and nothing failed, so there is nothing to
            # record. Point stdout at devnull so the interpreter's
            # exit-time flush doesn't traceback (or force exit code 120).
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ConfigError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
