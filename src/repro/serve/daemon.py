"""The ``repro-serve`` daemon: a crash-safe, cache-hitting sweep service.

Architecture (one process, the control plane of the service topology):

* a :class:`socketserver.ThreadingTCPServer` accepts NDJSON requests
  (:mod:`~repro.serve.protocol`) — ``ping``, ``stats``, ``shutdown``,
  and the streaming ``submit``;
* submitted jobs are **serialized** through a run lock (the data plane —
  the supervised worker pool — belongs to one job at a time) with a
  bounded admission queue in front: a submit beyond the queue limit is
  refused with an explicit ``shed`` response, never silently dropped;
* each job runs through the ordinary
  :class:`repro.parallel.SweepExecutor` resilient path — one supervised
  worker process per point, per-point watchdog timeouts, deterministic
  retry-with-backoff (:class:`repro.resilience.RetryPolicy`) on worker
  death — with the daemon's :class:`repro.catalog.RunCatalog` attached,
  so every completed point is durably catalogued the moment it finishes
  and every already-proven point is served as a verified cache hit;
* a **lease** per running job tracks liveness: every completed or
  cache-served point beats the lease (and streams a ``progress`` line to
  the client — the same beat serves both supervision and UX); a lease
  silent past the timeout is counted (``serve.lease_expired``) by the
  monitor thread;
* SIGINT/SIGTERM drain: in-flight work finishes and is catalogued,
  queued submits shed, the catalog is flushed and closed, and the daemon
  exits 0. A second signal — or SIGKILL at any moment — still cannot
  lose completed work: catalog appends are fsync'd before the executor's
  probe ever counts them, so a restarted daemon resumes from exactly the
  prefix that was durably recorded.

A client that disconnects mid-job does **not** cancel it: the sweep runs
to completion server-side and is catalogued, so the resubmission gets
cache hits for everything that finished (the lost stream is counted,
``serve.client_lost``). See ``docs/SERVICE.md`` for the full failure
matrix.
"""

from __future__ import annotations

import importlib
import os
import signal
import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..catalog import RunCatalog
from ..errors import ConfigError, ReproError, SimulationError
from ..obs.probe import EventValue, Probe
from ..parallel.envelope import SweepPoint, result_hash
from ..parallel.executor import SweepExecutor
from ..resilience import ResilienceOptions, RetryPolicy, restorable_repr
from ..resilience.atomic import atomic_write_text
from .protocol import (
    PROTOCOL_VERSION,
    point_from_wire,
    read_message,
    write_message,
)


@dataclass(frozen=True)
class ServeConfig:
    """Static configuration of one daemon instance.

    Attributes:
        host/port: bind address; port 0 asks the OS for an ephemeral port
            (pair with ``port_file`` so clients can find it).
        jobs: worker processes per sweep job (the supervised pool size).
        queue_limit: submits allowed to *wait* behind the running job;
            anything beyond is shed with an explicit response.
        retries: default retry budget per point when the client does not
            send one.
        point_timeout: default per-point watchdog (seconds; needs
            ``jobs >= 2``, exactly as for local execution).
        lease_timeout: seconds a running job may go without completing a
            single point before the monitor counts its lease as expired.
        allow: dotted-name prefixes a submitted worker function must
            match — the daemon only ever executes code it was explicitly
            pointed at, never arbitrary importables.
        chaos_kill_after: crash-drill hook — SIGKILL this process after
            the Nth durable catalog append. Deterministic by
            construction: the entry is fsync'd before the append is
            counted, so the drill always dies with exactly N entries on
            disk.
    """

    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 1
    queue_limit: int = 4
    retries: int = 0
    point_timeout: Optional[float] = None
    lease_timeout: float = 60.0
    allow: Tuple[str, ...] = ("repro.",)
    chaos_kill_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigError(f"serve jobs must be >= 1, got {self.jobs}")
        if self.queue_limit < 0:
            raise ConfigError(
                f"serve queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.retries < 0:
            raise ConfigError(f"serve retries must be >= 0, got {self.retries}")
        if self.lease_timeout <= 0:
            raise ConfigError(
                f"serve lease_timeout must be > 0, got {self.lease_timeout}"
            )
        if not self.allow:
            raise ConfigError("serve allow-list must name at least one prefix")
        if self.chaos_kill_after is not None and self.chaos_kill_after < 1:
            raise ConfigError(
                f"chaos_kill_after must be >= 1, got {self.chaos_kill_after}"
            )


@dataclass
class Lease:
    """Liveness record of one running job (heartbeat = completed points)."""

    job: int
    fn: str
    total: int
    started: float
    last_beat: float
    done: int = 0
    cache_hits: int = 0
    expired_beats: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot for the ``stats`` op."""
        return {
            "job": self.job,
            "fn": self.fn,
            "done": self.done,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "age_s": round(time.monotonic() - self.started, 3),
            "since_beat_s": round(time.monotonic() - self.last_beat, 3),
            "expired_beats": self.expired_beats,
        }


def resolve_worker(
    name: str, allow: Tuple[str, ...]
) -> Callable[[SweepPoint], Any]:
    """Import a submitted worker function by dotted name, allow-list gated.

    Only module-level functions resolve (the same constraint pickling
    already imposes on locally fanned-out workers).

    Raises:
        ConfigError: when the name is outside every allowed prefix, the
            module does not import, or the attribute is not callable.
    """
    if not any(name.startswith(prefix) for prefix in allow):
        raise ConfigError(
            f"worker {name!r} is outside the daemon's allow-list "
            f"({', '.join(allow)}); start repro-serve with --allow to widen it"
        )
    module_name, _, attr = name.rpartition(".")
    if not module_name:
        raise ConfigError(f"worker name {name!r} is not a dotted path")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigError(
            f"cannot import worker module {module_name!r}: {exc}"
        ) from exc
    fn = getattr(module, attr, None)
    if not callable(fn):
        raise ConfigError(
            f"worker {name!r} does not resolve to a callable "
            f"(got {type(fn).__name__})"
        )
    return fn


class _StreamProbe(Probe):
    """Probe bridging one job's executor to its lease and client stream.

    Every completed or cache-served point beats the lease and emits a
    ``progress`` line; ``resilience.*``/``catalog.*`` trace events are
    forwarded as ``event`` lines. Stream writes are best-effort: a client
    that vanished mid-job must not kill the sweep (its points still land
    in the catalog), so broken pipes are counted, never raised.
    """

    trace = True

    def __init__(self, daemon: "ServeDaemon", stream: Any, lease: Lease) -> None:
        self._daemon = daemon
        self._stream = stream
        self._lease = lease

    def count(self, name: str, delta: int = 1) -> None:
        self._daemon.note_count(name, delta)
        lease = self._lease
        if name in ("resilience.points_completed", "catalog.hits"):
            lease.last_beat = time.monotonic()
            lease.done += delta
            if name == "catalog.hits":
                lease.cache_hits += delta
            self._send(
                {
                    "kind": "progress",
                    "job": lease.job,
                    "done": lease.done,
                    "total": lease.total,
                    "cache_hits": lease.cache_hits,
                }
            )

    def event(self, kind: str, cycle: int, **fields: EventValue) -> None:
        del cycle  # harness events carry no simulated time
        self._send(
            {
                "kind": "event",
                "job": self._lease.job,
                "event": kind,
                "fields": dict(fields),
            }
        )

    def _send(self, message: Dict[str, Any]) -> None:
        try:
            write_message(self._stream, message)
        except OSError:
            # The job outlives its client by contract (results are still
            # catalogued); the lost stream is recorded, not raised.
            self._daemon.note_count("serve.client_lost_messages")


class _ServeServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server carrying a back-reference to its daemon."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], serve_daemon: "ServeDaemon") -> None:
        super().__init__(address, _Handler)
        self.serve_daemon = serve_daemon


class _Handler(socketserver.StreamRequestHandler):
    """One connection, one conversation (see :mod:`~repro.serve.protocol`)."""

    def handle(self) -> None:
        server = self.server
        assert isinstance(server, _ServeServer)
        server.serve_daemon.handle_connection(self.rfile, self.wfile)


class ServeDaemon:
    """The long-lived sweep service around one :class:`RunCatalog`.

    Construct with a config and an (open) catalog, then call
    :meth:`serve` from the main thread — it blocks until a drain signal
    or ``shutdown`` op completes. :meth:`handle_connection` is the whole
    protocol surface, reused directly by the in-process tests.
    """

    def __init__(self, config: ServeConfig, catalog: RunCatalog) -> None:
        self.config = config
        self.catalog = catalog
        self._stats_lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._catalog_appends = 0
        self._jobs_started = 0
        self._leases: Dict[int, Lease] = {}
        #: jobs admitted (running + waiting for the run lock)
        self._queued = 0
        self._queue_lock = threading.Lock()
        self._run_lock = threading.Lock()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._stop_monitor = threading.Event()
        self._signals = 0
        self._server: Optional[_ServeServer] = None

    # ------------------------------------------------------------ accounting

    def note_count(self, name: str, delta: int = 1) -> None:
        """Thread-safe daemon-lifetime counter (the ``stats`` op reads it).

        ``catalog.appends`` additionally drives the crash-drill hook:
        when ``chaos_kill_after`` is armed, the daemon SIGKILLs itself
        the moment the Nth durable append is counted — deterministically
        *after* that entry's fsync, because the executor only counts an
        append once :meth:`RunCatalog.record` has returned.
        """
        chaos = False
        with self._stats_lock:
            self._counters[name] = self._counters.get(name, 0) + delta
            if name == "catalog.appends":
                self._catalog_appends += delta
                chaos = (
                    self.config.chaos_kill_after is not None
                    and self._catalog_appends >= self.config.chaos_kill_after
                )
        if chaos:
            os.kill(os.getpid(), signal.SIGKILL)

    def counters(self) -> Dict[str, int]:
        """Snapshot of the daemon-lifetime counters."""
        with self._stats_lock:
            return dict(self._counters)

    @property
    def draining(self) -> bool:
        """True once a drain was initiated (new submits are shed)."""
        return self._draining.is_set()

    # -------------------------------------------------------------- protocol

    def handle_connection(self, rfile: Any, wfile: Any) -> None:
        """Serve one connection's single request (any op)."""
        self.note_count("serve.connections")
        try:
            try:
                request = read_message(rfile)
            except ConfigError as exc:
                write_message(wfile, {"kind": "error", "detail": str(exc)})
                return
            if request is None:
                return
            op = request.get("op")
            if op == "ping":
                write_message(
                    wfile,
                    {
                        "kind": "pong",
                        "protocol": PROTOCOL_VERSION,
                        "draining": self.draining,
                        "catalog": self.catalog.path,
                        "entries": self.catalog.entry_count,
                    },
                )
            elif op == "stats":
                with self._stats_lock:
                    leases = [lease.to_dict() for lease in self._leases.values()]
                    queued = self._queued
                write_message(
                    wfile,
                    {
                        "kind": "stats",
                        "protocol": PROTOCOL_VERSION,
                        "draining": self.draining,
                        "queued": queued,
                        "leases": leases,
                        "counters": self.counters(),
                        "catalog": self.catalog.stats(),
                    },
                )
            elif op == "shutdown":
                self.note_count("serve.shutdown_requests")
                write_message(wfile, {"kind": "ok", "draining": True})
                self.initiate_drain()
            elif op == "submit":
                self._handle_submit(request, wfile)
            else:
                write_message(
                    wfile, {"kind": "error", "detail": f"unknown op {op!r}"}
                )
        except OSError:
            # The peer vanished mid-conversation; nothing to answer to.
            self.note_count("serve.client_lost")

    def _handle_submit(self, request: Dict[str, Any], wfile: Any) -> None:
        """Admission control, then one serialized job on the worker pool."""
        protocol = request.get("protocol", PROTOCOL_VERSION)
        if protocol != PROTOCOL_VERSION:
            write_message(
                wfile,
                {
                    "kind": "error",
                    "detail": f"protocol {protocol} != {PROTOCOL_VERSION}",
                },
            )
            return
        shed_reason: Optional[str] = None
        with self._queue_lock:
            if self.draining:
                shed_reason = "draining: daemon is shutting down"
            elif self._queued > self.config.queue_limit:
                shed_reason = (
                    f"queue full: 1 job running and "
                    f"{self.config.queue_limit} waiting (bounded admission; "
                    "resubmit later — completed points will be cache hits)"
                )
            else:
                self._queued += 1
        if shed_reason is not None:
            self.note_count("serve.shed")
            write_message(wfile, {"kind": "shed", "reason": shed_reason})
            return
        try:
            with self._run_lock:
                if self.draining:
                    # Admitted, but the drain won the lock race: still an
                    # explicit refusal, never a silent drop.
                    self.note_count("serve.shed")
                    write_message(
                        wfile,
                        {
                            "kind": "shed",
                            "reason": "draining: daemon is shutting down",
                        },
                    )
                    return
                self._run_job(request, wfile)
        finally:
            with self._queue_lock:
                self._queued -= 1

    def _run_job(self, request: Dict[str, Any], wfile: Any) -> None:
        """Execute one validated job and stream its lifecycle to the client."""
        try:
            fn_name = str(request.get("fn", ""))
            fn = resolve_worker(fn_name, self.config.allow)
            raw_points = request.get("points")
            if not isinstance(raw_points, list) or not raw_points:
                raise ConfigError("submit carries no points")
            points = [point_from_wire(p) for p in raw_points]
            retries = int(request.get("retries", self.config.retries))
            raw_timeout = request.get("point_timeout", self.config.point_timeout)
            timeout = None if raw_timeout is None else float(raw_timeout)
            retry = RetryPolicy(retries=retries, point_timeout=timeout)
        except (ConfigError, TypeError, ValueError) as exc:
            self.note_count("serve.rejected_jobs")
            write_message(wfile, {"kind": "error", "detail": str(exc)})
            return

        with self._stats_lock:
            self._jobs_started += 1
            job_id = self._jobs_started
            now = time.monotonic()
            lease = Lease(
                job=job_id,
                fn=fn_name,
                total=len(points),
                started=now,
                last_beat=now,
            )
            self._leases[job_id] = lease
        write_message(
            wfile,
            {
                "kind": "accepted",
                "job": job_id,
                "fn": fn_name,
                "points": len(points),
                "jobs": self.config.jobs,
                "catalog": self.catalog.path,
            },
        )
        options = ResilienceOptions(
            retry=retry,
            catalog=self.catalog,
            probe=_StreamProbe(self, wfile, lease),
        )
        executor = SweepExecutor(jobs=self.config.jobs, resilience=options)
        start = time.monotonic()
        try:
            outcome = executor.run(fn, points)
        except ReproError as exc:
            self.note_count("serve.jobs_failed")
            self._send_final(
                wfile,
                {
                    "kind": "error",
                    "job": job_id,
                    "detail": f"{type(exc).__name__}: {exc}",
                },
            )
            return
        finally:
            with self._stats_lock:
                self._leases.pop(job_id, None)
        values: List[str] = []
        for point_result in outcome.results:
            text, restorable = restorable_repr(point_result.value)
            if not restorable:
                self.note_count("serve.jobs_failed")
                self._send_final(
                    wfile,
                    {
                        "kind": "error",
                        "job": job_id,
                        "detail": (
                            f"point {point_result.point.label!r} returned a "
                            "value whose repr is not a Python literal; "
                            "repr-transport to the client is impossible"
                        ),
                    },
                )
                return
            values.append(text)
        self.note_count("serve.jobs_completed")
        self.note_count("serve.points_served", len(values))
        self._send_final(
            wfile,
            {
                "kind": "result",
                "job": job_id,
                "sweep": outcome.sweep,
                "hash": result_hash(r.value for r in outcome.results),
                "values": values,
                "cache_hits": outcome.cache_hits,
                "computed": outcome.completed - outcome.cache_hits,
                "catalog": self.catalog.path,
                "wall_s": round(time.monotonic() - start, 4),
            },
        )

    def _send_final(self, wfile: Any, message: Dict[str, Any]) -> None:
        """Terminal line of a submit; a vanished client is counted, not fatal
        (its completed points are already in the catalog)."""
        try:
            write_message(wfile, message)
        except OSError:
            self.note_count("serve.client_lost")

    # ------------------------------------------------------------- lifecycle

    def initiate_drain(self) -> None:
        """Begin a graceful shutdown (idempotent, safe from any thread)."""
        if self._draining.is_set():
            return
        self._draining.set()
        threading.Thread(target=self._drain, daemon=True).start()

    def _drain(self) -> None:
        with self._run_lock:
            # In-flight job finished (queued submits shed on wake-up).
            pass
        self._stop_monitor.set()
        if self._server is not None:
            self._server.shutdown()
        self.catalog.close()
        self._drained.set()

    def _monitor_leases(self) -> None:
        interval = max(0.05, self.config.lease_timeout / 4.0)
        while not self._stop_monitor.wait(interval):
            now = time.monotonic()
            with self._stats_lock:
                leases = list(self._leases.values())
            for lease in leases:
                if now - lease.last_beat > self.config.lease_timeout:
                    # Re-arm so one stall counts once per timeout window;
                    # the executor's own watchdog does the killing.
                    lease.last_beat = now
                    lease.expired_beats += 1
                    self.note_count("serve.lease_expired")

    def serve(self, port_file: Optional[str] = None) -> int:
        """Bind, announce, and block until drained. Returns the exit code.

        The TCP accept loop runs on a helper thread so the *main* thread
        stays free to take SIGINT/SIGTERM: the first signal initiates the
        drain (finish in-flight work, flush the catalog, exit 0), a
        second one exits immediately (the fsync'd catalog prefix is still
        consistent — that is the whole crash contract).
        """
        server = _ServeServer((self.config.host, self.config.port), self)
        self._server = server
        host, port = server.server_address[0], server.server_address[1]
        if port_file is not None:
            atomic_write_text(port_file, f"{port}\n")
        monitor = threading.Thread(target=self._monitor_leases, daemon=True)
        monitor.start()
        acceptor = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.1}, daemon=True
        )
        acceptor.start()
        print(
            f"repro-serve: listening on {host}:{port} "
            f"(catalog {self.catalog.path}, {self.catalog.entry_count} entries, "
            f"jobs={self.config.jobs})",
            flush=True,
        )
        saved = self._install_signal_handlers()
        try:
            while not self._drained.wait(timeout=0.2):
                pass
        finally:
            self._restore_signal_handlers(saved)
            server.server_close()
        print("repro-serve: drained, catalog flushed", flush=True)
        return 0

    def _install_signal_handlers(self) -> List[Tuple[int, Any]]:
        if threading.current_thread() is not threading.main_thread():
            return []

        def _handler(signum: int, frame: Any) -> None:
            del frame
            self._signals += 1
            if self._signals >= 2:
                os._exit(1)
            self.note_count("serve.drain_signals")
            self.initiate_drain()

        saved: List[Tuple[int, Any]] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            saved.append((signum, signal.signal(signum, _handler)))
        return saved

    @staticmethod
    def _restore_signal_handlers(saved: List[Tuple[int, Any]]) -> None:
        for signum, handler in saved:
            signal.signal(signum, handler)
