"""``repro.serve`` — the crash-safe, cache-hitting sweep service.

A small client/server layer over the existing resilient executor: the
``repro-serve`` daemon (:mod:`~repro.serve.daemon`) owns a durable
:class:`repro.catalog.RunCatalog` and runs submitted sweeps through
:class:`repro.parallel.SweepExecutor`'s supervised worker pool; the
client (:mod:`~repro.serve.client`) is what the executor dispatches to
when ``ResilienceOptions.serve_url`` is set. The NDJSON wire format
lives in :mod:`~repro.serve.protocol`. Protocol, failure matrix, and the
crash-resume contract are documented in ``docs/SERVICE.md``.

Import discipline: this package sits *above* ``repro.parallel`` and
``repro.catalog`` (it imports both); nothing below imports it except the
executor's lazy ``serve_url`` dispatch. Process fan-out stays inside
``repro.parallel`` — the daemon reuses the executor rather than spawning
workers itself.
"""

from .client import ServeClient
from .daemon import ServeConfig, ServeDaemon, resolve_worker
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    parse_serve_url,
    point_from_wire,
    point_to_wire,
    read_message,
    write_message,
)

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "parse_serve_url",
    "point_from_wire",
    "point_to_wire",
    "read_message",
    "resolve_worker",
    "write_message",
]
