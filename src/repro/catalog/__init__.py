"""Durable cross-invocation result cataloguing for sweep experiments.

The catalog promotes the run journal from a per-run checkpoint file into
a production-scale store: every completed sweep point, from every run,
lives under its content key with a verified envelope and integrity hash,
and any executor (local ``--catalog`` runs and the ``repro-serve``
daemon alike) serves already-proven points from the cache instead of
recomputing them — with a bit-identity assertion on every hit, so a
poisoned entry raises a *catalog determinism violation* rather than
silently corrupting results. See ``docs/SERVICE.md``.

Import discipline: this package imports only the standard library,
:mod:`repro.errors`, and :mod:`repro.resilience` (for the content keys
and atomic writes); ``repro.parallel`` and ``repro.serve`` import *it*.

``python -m repro.catalog stats|compact`` inspects and maintains catalog
files (see :mod:`~repro.catalog.__main__`).
"""

from .store import CATALOG_SCHEMA_VERSION, RunCatalog, entry_integrity

__all__ = [
    "CATALOG_SCHEMA_VERSION",
    "RunCatalog",
    "entry_integrity",
]
