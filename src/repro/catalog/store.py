"""The run catalog: a durable, cross-invocation sweep-result cache.

A :class:`~repro.resilience.RunJournal` checkpoints *one* run; the
catalog remembers **every** run. Each completed sweep point is stored
under its content key (:func:`repro.resilience.point_key` — a blake2b
digest of the worker's dotted name plus the point's index, label, seed,
and params), together with the full envelope repr the key was derived
from, the value's exact ``repr``, and an integrity hash binding the two.
Any later invocation — a resumed CLI run, a ``repro-serve`` daemon
restart, a different job count — that submits an already-catalogued
point gets the recorded value back instantly instead of recomputing it.

Cache hits are *checked*, never trusted: a lookup re-derives the
envelope from the live point and asserts it matches the stored envelope
character for character, re-derives the integrity hash over
``envelope + NUL + value_repr``, and round-trips the restored value's
repr — any mismatch raises ``SimulationError`` naming a **catalog
determinism violation** instead of silently serving a poisoned entry.
Re-recording a key asserts the same bit-identity, so a nondeterministic
worker can never overwrite history.

File format mirrors the journal: newline-delimited JSON, one fsync'd
append per new entry, a header line first, atomic full rewrites
(write-temp + fsync + rename) for creation and :meth:`RunCatalog.compact`,
and torn-final-line salvage on load — a catalog killed mid-append is
always openable. Unlike the journal there is no ``resume`` flag: an
existing file is *always* loaded (the whole point is surviving
invocations), a missing one is created.

The store is thread-safe (one lock around the index and the append
handle) because the serve daemon reads stats from its monitor thread
while the job thread records; it is **not** multi-process-safe — the
daemon is the single writer in the service topology, and CLI runs own
their catalog file for the duration of the invocation.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Tuple, Union

from ..errors import ConfigError, SimulationError
from ..resilience.atomic import atomic_write_text
from ..resilience.journal import (
    SweepPointLike,
    point_envelope,
    point_key,
    restorable_repr,
)

#: Bumped when the catalog line layout changes incompatibly.
CATALOG_SCHEMA_VERSION = 1

#: Fields every entry record must carry (the parser validates presence).
_ENTRY_FIELDS = (
    "key",
    "sweep",
    "fn",
    "index",
    "label",
    "envelope",
    "value_repr",
    "restorable",
    "integrity",
)


def entry_integrity(envelope: str, value_repr: str) -> str:
    """Content hash binding an entry's envelope to its recorded value.

    blake2b over ``envelope + NUL + value_repr`` — recomputed on every
    lookup, so mutating either half of an entry on disk (the poisoned
    cache case) is detected before the value is ever served.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(envelope.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(value_repr.encode("utf-8"))
    return digest.hexdigest()


class RunCatalog:
    """Content-addressed store of completed sweep points, across runs.

    Args:
        path: catalog file. Loaded if it exists (salvaging at most one
            torn final line), created on first append otherwise.

    Attributes:
        hits: lookups served from the catalog this session.
        misses: lookups that found no servable entry this session.
        appends: new entries durably appended this session.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._lock = threading.Lock()
        #: point key -> parsed entry record
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._fh: Optional[TextIO] = None
        #: True when the on-disk bytes don't reflect the in-memory state
        #: (fresh catalog, or a salvaged torn tail) and must be rewritten
        #: atomically before the first append.
        self._stale_on_disk = True
        self.hits = 0
        self.misses = 0
        self.appends = 0
        if self._path.exists():
            self._load()

    # ------------------------------------------------------------------ state

    @property
    def path(self) -> str:
        """The catalog file path, as given."""
        return str(self._path)

    @property
    def entry_count(self) -> int:
        """Entries currently catalogued (all sweeps, all sessions)."""
        return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Snapshot of the store for CLIs and the serve daemon."""
        with self._lock:
            restorable = sum(
                1 for entry in self._entries.values() if entry["restorable"]
            )
            functions: Dict[str, int] = {}
            for entry in self._entries.values():
                fn = str(entry["fn"])
                functions[fn] = functions.get(fn, 0) + 1
            return {
                "path": str(self._path),
                "entries": len(self._entries),
                "restorable": restorable,
                "functions": functions,
                "hits": self.hits,
                "misses": self.misses,
                "appends": self.appends,
            }

    # ----------------------------------------------------------------- lookup

    def lookup(self, fn_name: str, point: SweepPointLike) -> Tuple[bool, Any]:
        """``(True, value)`` when the point is catalogued and verified.

        ``(False, None)`` means a genuine miss (never catalogued, or the
        recorded value's repr is not a Python literal, so it must be
        recomputed — the recomputation still gets the bit-identity assert
        in :meth:`record`).

        Raises:
            SimulationError: **catalog determinism violation** — the
                stored envelope does not match the live point, the
                integrity hash does not match the stored bytes, or the
                restored value does not round-trip to the recorded repr.
                A poisoned entry is never served silently.
        """
        with self._lock:
            key = point_key(fn_name, point)
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return False, None
            envelope = point_envelope(fn_name, point)
            self._verify(entry, envelope)
            if not entry["restorable"]:
                self.misses += 1
                return False, None
            value = ast.literal_eval(str(entry["value_repr"]))
            if repr(value) != entry["value_repr"]:
                raise SimulationError(
                    f"catalog determinism violation: entry {key} "
                    f"({entry['label']!r}) does not round-trip: stored repr "
                    f"{str(entry['value_repr'])[:200]!r} restored to "
                    f"{repr(value)[:200]!r}. The catalog {self._path} cannot "
                    "be trusted; delete the entry or the file."
                )
            self.hits += 1
            return True, value

    def _verify(self, entry: Dict[str, Any], envelope: str) -> None:
        """Bit-identity checks every hit and re-record must pass."""
        if entry["envelope"] != envelope:
            raise SimulationError(
                f"catalog determinism violation: entry {entry['key']} "
                f"({entry['label']!r}) hash-matches a different envelope.\n"
                f"  catalogued: {str(entry['envelope'])[:200]}\n"
                f"  submitted:  {envelope[:200]}\n"
                f"The catalog {self._path} holds a mutated or colliding "
                "entry; delete it before resubmitting."
            )
        expected = entry_integrity(str(entry["envelope"]), str(entry["value_repr"]))
        if entry["integrity"] != expected:
            raise SimulationError(
                f"catalog determinism violation: entry {entry['key']} "
                f"({entry['label']!r}) failed its integrity check "
                f"(stored {entry['integrity']}, recomputed {expected}) — "
                f"the entry was mutated on disk. The catalog {self._path} "
                "cannot be trusted; delete the entry or the file."
            )

    # -------------------------------------------------------------- recording

    def record(
        self, fn_name: str, sweep: str, point: SweepPointLike, value: Any
    ) -> bool:
        """Catalogue one completed point; True when a new entry was appended.

        Re-recording an existing key is the cross-run determinism assert:
        the envelope and the value repr must both match the catalogued
        entry bit for bit (returns False — nothing new to store).

        Raises:
            SimulationError: **catalog determinism violation** when the
                re-recorded value differs from the catalogued one, or the
                existing entry fails verification.
        """
        with self._lock:
            key = point_key(fn_name, point)
            envelope = point_envelope(fn_name, point)
            value_repr, restorable = restorable_repr(value)
            existing = self._entries.get(key)
            if existing is not None:
                self._verify(existing, envelope)
                if existing["value_repr"] != value_repr:
                    raise SimulationError(
                        f"catalog determinism violation: point {point.label!r} "
                        f"(key {key}) re-executed to a different value.\n"
                        f"  catalogued: {str(existing['value_repr'])[:200]}\n"
                        f"  recomputed: {value_repr[:200]}\n"
                        f"The catalog {self._path} does not describe this "
                        "sweep; delete it or fix the nondeterminism."
                    )
                return False
            entry = {
                "kind": "entry",
                "key": key,
                "sweep": sweep,
                "fn": fn_name,
                "index": point.index,
                "label": point.label,
                "envelope": envelope,
                "value_repr": value_repr,
                "restorable": restorable,
                "integrity": entry_integrity(envelope, value_repr),
            }
            self._append(entry)
            self._entries[key] = entry
            self.appends += 1
            return True

    # -------------------------------------------------------------- file I/O

    def compact(self) -> int:
        """Atomically rewrite the file to one canonical line per key.

        Folds whatever the append-only format accumulated — salvaged torn
        tails, duplicate keys from concatenated catalogs (the parser is
        last-wins) — into exactly one header plus one line per entry, via
        write-temp + fsync + rename. Returns the bytes reclaimed.
        """
        with self._lock:
            self._close_locked()
            before = self._path.stat().st_size if self._path.exists() else 0
            self._rewrite()
            self._stale_on_disk = False
            after = self._path.stat().st_size
            return max(0, before - after)

    def close(self) -> None:
        """Flush and close the append handle (safe to call repeatedly)."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunCatalog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _append(self, entry: Dict[str, Any]) -> None:
        """Durably append one entry line (fsync before returning)."""
        if self._fh is None:
            if self._stale_on_disk:
                self._rewrite()
                self._stale_on_disk = False
            self._fh = self._path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _rewrite(self) -> None:
        """Write the full catalog atomically (old file survives a crash)."""
        lines = [
            json.dumps(
                {
                    "kind": "header",
                    "schema_version": CATALOG_SCHEMA_VERSION,
                    "tool": "repro-catalog",
                }
            )
        ]
        for entry in self._entries.values():
            lines.append(json.dumps(entry))
        atomic_write_text(self._path, "\n".join(lines) + "\n")

    # --------------------------------------------------------------- loading

    def _load(self) -> None:
        try:
            text = self._path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"cannot read catalog {self._path}: {exc}") from exc
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ConfigError(f"catalog {self._path} is empty (no header)")
        salvaged = False
        entries: Dict[str, Dict[str, Any]] = {}
        for lineno, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines) and lineno > 1 and not text.endswith("\n"):
                    # A write torn by a crash mid-append: drop it and
                    # rewrite the clean prefix before the next append.
                    salvaged = True
                    break
                raise ConfigError(
                    f"catalog {self._path}:{lineno} is not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise ConfigError(
                    f"catalog {self._path}:{lineno}: expected an object with 'kind'"
                )
            kind = record["kind"]
            if lineno == 1:
                if kind != "header":
                    raise ConfigError(
                        f"catalog {self._path}: first line must be the header"
                    )
                if record.get("schema_version") != CATALOG_SCHEMA_VERSION:
                    raise ConfigError(
                        f"catalog {self._path}: schema_version "
                        f"{record.get('schema_version')} != {CATALOG_SCHEMA_VERSION}"
                    )
                continue
            if kind != "entry":
                raise ConfigError(
                    f"catalog {self._path}:{lineno}: unknown record kind {kind!r}"
                )
            for fieldname in _ENTRY_FIELDS:
                if fieldname not in record:
                    raise ConfigError(
                        f"catalog {self._path}:{lineno}: entry missing {fieldname!r}"
                    )
            entries[str(record["key"])] = record
        self._entries = entries
        self._stale_on_disk = salvaged
