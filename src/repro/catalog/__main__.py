"""Catalog maintenance commands: ``python -m repro.catalog stats|compact``.

``stats`` prints what a catalog file holds (entries, restorable share,
per-worker-function counts); ``compact`` atomically folds the file to
one canonical line per key and reports the bytes reclaimed. Both open
the catalog through :class:`~repro.catalog.RunCatalog`, so a torn final
line left by a killed writer is salvaged exactly as the executor would.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ConfigError
from .store import RunCatalog


def _open_existing(path: str) -> RunCatalog:
    if not Path(path).exists():
        raise ConfigError(f"catalog {path} does not exist")
    return RunCatalog(path)


def _cmd_stats(args: argparse.Namespace) -> int:
    with _open_existing(args.catalog) as catalog:
        stats = catalog.stats()
    print(f"{stats['path']}: {stats['entries']} entries "
          f"({stats['restorable']} restorable)")
    for fn_name in sorted(stats["functions"]):
        print(f"  {fn_name}: {stats['functions'][fn_name]} points")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    with _open_existing(args.catalog) as catalog:
        reclaimed = catalog.compact()
        entries = catalog.entry_count
    print(f"{args.catalog}: compacted to {entries} entries, "
          f"reclaimed {reclaimed} bytes")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.catalog``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.catalog",
        description="Inspect and maintain run-catalog files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats_parser = sub.add_parser(
        "stats", help="print entry counts and per-function totals"
    )
    stats_parser.add_argument("catalog", help="catalog file to inspect")
    stats_parser.set_defaults(fn=_cmd_stats)

    compact_parser = sub.add_parser(
        "compact",
        help="atomically rewrite the catalog to one line per key",
    )
    compact_parser.add_argument("catalog", help="catalog file to compact")
    compact_parser.set_defaults(fn=_cmd_compact)

    args = parser.parse_args(argv)
    try:
        result: int = args.fn(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return result


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
