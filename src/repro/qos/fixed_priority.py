"""Fixed-priority message-based QoS — the DAC'12 Swizzle Switch baseline.

The previous Swizzle Switch QoS design (Satpathy et al., DAC 2012) let each
input assign one of four priority *levels* to its messages; arbitration
always serves the highest level present (LRG within a level) and needs two
arbitration cycles. The paper (Section 2.2) lists its three shortcomings,
all reproduced here for the comparison benches:

1. inputs cannot control how much *bandwidth* each level receives;
2. fixed priority can starve lower levels outright;
3. arbitration takes two cycles instead of SSVC's one.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.arbitration import Request
from ..core.lrg import LRGState
from ..errors import ConfigError
from .base import OutputArbiter

#: Number of priority levels in the DAC'12 design.
NUM_LEVELS = 4


class FixedPriorityArbiter(OutputArbiter):
    """4-level fixed-priority arbitration with per-level LRG.

    Args:
        num_inputs: switch radix.
        input_levels: mapping from input port to its messages' priority
            level (0 = lowest, 3 = highest). Unmapped inputs send at
            level 0.
    """

    name = "fixed-priority-4level"
    #: The DAC'12 design "required two arbitration cycles".
    arbitration_cycles = 2

    def __init__(self, num_inputs: int, input_levels: Optional[Dict[int, int]] = None) -> None:
        self.num_inputs = num_inputs
        self.lrg = LRGState(num_inputs)
        self._levels: Dict[int, int] = {}
        for port, level in (input_levels or {}).items():
            self.set_level(port, level)

    def set_level(self, input_port: int, level: int) -> None:
        """Assign a priority level to an input's messages."""
        if not 0 <= input_port < self.num_inputs:
            raise ConfigError(f"input_port {input_port} out of range [0, {self.num_inputs})")
        if not 0 <= level < NUM_LEVELS:
            raise ConfigError(f"level must be in [0, {NUM_LEVELS}), got {level}")
        self._levels[input_port] = level

    def level_of(self, input_port: int) -> int:
        """The priority level an input's messages carry (default 0)."""
        return self._levels.get(input_port, 0)

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        top = max(self.level_of(r.input_port) for r in requests)
        contenders = [r for r in requests if self.level_of(r.input_port) == top]
        winner_port = self.lrg.arbitrate(r.input_port for r in contenders)
        return next(r for r in contenders if r.input_port == winner_port)

    def commit(self, winner: Request, now: int) -> None:
        self.lrg.grant(winner.input_port)
