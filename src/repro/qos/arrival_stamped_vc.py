"""Arrival-stamped Virtual Clock — the original algorithm's semantics.

Zhang's algorithm stamps each packet *when it arrives*: the flow's clock
advances by one Vtick per arrival and the packet carries that stamp to the
scheduler. The paper's switch integration instead consults/updates counters
at transmit time (see :class:`repro.qos.virtual_clock_arbiter`). The two
differ under bursts: with arrival stamping, a queued burst owns consecutive
future stamps (the k-th packet is scheduled k Vticks out) even while the
channel idles; with transmit updates, only the head's position matters.

Stamps are computed lazily but *exactly*: packets of one flow reach the
head in arrival order, and each stamp depends only on the previous stamp
and the packet's own arrival time (``stamp = max(prev, arrival) + Vtick``),
so stamping a packet the first time it is seen at the head reproduces the
stamp it would have received at arrival.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.arbitration import Request
from ..core.lrg import LRGState
from ..core.virtual_clock import compute_vtick
from ..errors import ArbitrationError
from .base import OutputArbiter


class ArrivalStampedVCArbiter(OutputArbiter):
    """Virtual Clock with the original arrival-time stamping.

    Args:
        num_inputs: switch radix.
        lrg: optional shared LRG state for tie-breaking.
    """

    name = "virtual-clock-arrival"

    def __init__(self, num_inputs: int, lrg: Optional[LRGState] = None) -> None:
        self.num_inputs = num_inputs
        self.lrg = lrg if lrg is not None else LRGState(num_inputs)
        self._vticks: Dict[int, float] = {}
        self._last_stamp: Dict[int, float] = {}
        #: (arrival_cycle, stamp) of the current head packet per input;
        #: invalidated on commit.
        self._head_stamp: Dict[int, Tuple[int, float]] = {}

    def register_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Admit a flow; returns its Vtick."""
        if not 0 <= input_port < self.num_inputs:
            raise ArbitrationError(
                f"input_port {input_port} out of range [0, {self.num_inputs})"
            )
        vtick = compute_vtick(rate, packet_flits)
        self._vticks[input_port] = vtick
        self._last_stamp[input_port] = 0.0
        return vtick

    def _stamp(self, request: Request) -> float:
        port = request.input_port
        if port not in self._vticks:
            raise ArbitrationError(f"input {port} has no reservation")
        cached = self._head_stamp.get(port)
        if cached is not None and cached[0] == request.arrival_cycle:
            return cached[1]
        stamp = max(self._last_stamp[port], float(request.arrival_cycle)) + self._vticks[port]
        self._head_stamp[port] = (request.arrival_cycle, stamp)
        return stamp

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        stamps = {r.input_port: self._stamp(r) for r in requests}
        best = min(stamps.values())
        tied = [r.input_port for r in requests if stamps[r.input_port] == best]
        winner_port = tied[0] if len(tied) == 1 else self.lrg.arbitrate(tied)
        return next(r for r in requests if r.input_port == winner_port)

    def commit(self, winner: Request, now: int) -> None:
        port = winner.input_port
        self._last_stamp[port] = self._stamp(winner)
        self._head_stamp.pop(port, None)
        self.lrg.grant(port)
