"""iSLIP — iterative round-robin matching with slip (McKeown, ToN 1999).

Each iteration runs three phases over the unmatched ports:

1. **Request** — every unmatched input requests every unmatched output it
   has a non-empty VOQ for.
2. **Grant** — every requested output grants the requesting input that
   appears next at or after its *grant pointer* (rotating priority).
3. **Accept** — every input that received grants accepts the granting
   output next at or after its *accept pointer*.

The "slip" that desynchronizes the pointers — and yields 100% throughput
under uniform i.i.d. traffic with a single iteration — is the pointer
update rule: a grant pointer advances to one past the granted input, and
an accept pointer to one past the accepted output, **only when the grant
is accepted in the first iteration**. Later-iteration accepts leave every
pointer untouched, preserving the no-starvation argument of the paper
("From MWM to iSLIP", arXiv:2606.14771, recounts the lineage).

Iterations stop when an iteration produces no new grant; the default
iteration budget is ``log2(radix)``, the paper's rule of thumb for
near-maximal matchings.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.matching import Matching, round_robin_pick
from ..errors import ArbitrationError
from .iterative import IterativeArbiter


class ISLIPArbiter(IterativeArbiter):
    """The iSLIP scheduler for one whole switch.

    Args:
        num_inputs: switch radix.
        iterations: request/grant/accept rounds per cycle; defaults to
            ``max(1, log2(num_inputs))``.
    """

    name = "islip"

    def __init__(self, num_inputs: int, iterations: Optional[int] = None) -> None:
        super().__init__(num_inputs)
        if iterations is None:
            iterations = max(1, num_inputs.bit_length() - 1)
        if iterations < 1:
            raise ArbitrationError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        #: per-output rotating grant pointer (highest-priority input index)
        self._grant_pointers = [0] * num_inputs
        #: per-input rotating accept pointer (highest-priority output index)
        self._accept_pointers = [0] * num_inputs

    # ---------------------------------------------------------------- phases

    def _grant_phase(
        self,
        backlog: Mapping[int, Mapping[int, int]],
        free_outputs: Sequence[int],
        matched_inputs: Set[int],
        matched_outputs: Set[int],
    ) -> Tuple[Dict[int, List[int]], int]:
        """Request + grant: offers per input, and the request count.

        Pure with respect to shared state: reads the pointers and the
        caller's backlog, mutates neither (RL013 contract — pointers move
        only on accepted grants, in :meth:`_accept_phase`).
        """
        offers: Dict[int, List[int]] = {}
        requests_seen = 0
        for output in free_outputs:
            if output in matched_outputs:
                continue
            requesters = [
                port
                for port in sorted(backlog)
                if port not in matched_inputs and output in backlog[port]
            ]
            if not requesters:
                continue
            requests_seen += len(requesters)
            granted = round_robin_pick(requesters, self._grant_pointers[output])
            offers.setdefault(granted, []).append(output)
        return offers, requests_seen

    def _accept_phase(
        self, offers: Dict[int, List[int]], first_iteration: bool
    ) -> List[Tuple[int, int]]:
        """Accept one grant per input; advance pointers on iteration 1."""
        accepted: List[Tuple[int, int]] = []
        for port in sorted(offers):
            output = round_robin_pick(sorted(offers[port]), self._accept_pointers[port])
            accepted.append((port, output))
            if first_iteration:
                # The slip: pointers move past the match only when the
                # first iteration's grant is accepted, never on the
                # refinement iterations.
                self._grant_pointers[output] = (port + 1) % self.num_inputs
                self._accept_pointers[port] = (output + 1) % self.num_inputs
        return accepted

    # ------------------------------------------------------------------ match

    def match(
        self,
        backlog: Mapping[int, Mapping[int, int]],
        free_outputs: Sequence[int],
        now: int,
    ) -> Matching:
        pairs: List[Tuple[int, int]] = []
        matched_inputs: Set[int] = set()
        matched_outputs: Set[int] = set()
        proposals = 0
        rounds = 0
        for iteration in range(self.iterations):
            offers, requests_seen = self._grant_phase(
                backlog, free_outputs, matched_inputs, matched_outputs
            )
            if not offers:
                break
            rounds += 1
            proposals += requests_seen
            for port, output in self._accept_phase(offers, iteration == 0):
                pairs.append((port, output))
                matched_inputs.add(port)
                matched_outputs.add(output)
        return Matching(tuple(pairs), iterations=max(rounds, 1), proposals=proposals)
