"""Output arbitration policies and switch-wide matching schedulers.

Per-output arbiters implement the two-phase
:class:`~repro.qos.base.OutputArbiter` interface (pure ``select`` followed
by ``commit``); iterative schedulers implement the switch-wide
:class:`~repro.qos.iterative.IterativeArbiter` ``match`` interface over
virtual output queues. The full catalogue:

The paper's mechanisms:

* :class:`~repro.qos.lrg_arbiter.LRGArbiter` — the Swizzle Switch's default
  least-recently-granted policy (the "No QoS" baseline of Fig. 4a).
* :class:`~repro.qos.virtual_clock_arbiter.VirtualClockArbiter` — the
  original fine-grained Virtual Clock (Fig. 5's "Original Virtual Clock").
* :class:`~repro.qos.arrival_stamped_vc.ArrivalStampedVCArbiter` — Virtual
  Clock stamped at arrival time (the classic network formulation).
* :class:`~repro.qos.preemptive_vc.PreemptiveVCArbiter` — Virtual Clock
  with in-flight preemption of lower-priority holders.
* :class:`~repro.qos.ssvc_arbiter.SSVCArbiter` — the paper's contribution:
  coarse thermometer-code comparison + LRG tie-break, with SUBTRACT / HALVE
  / RESET counter management.
* :class:`~repro.qos.three_class.ThreeClassArbiter` — the full BE/GB/GL
  stack with GL policing (Sections 3.2-3.4), assisted by
  :class:`~repro.qos.gl_policer.GLPolicer`.

Baselines discussed in Sections 2.2 and 5, implemented for the comparison
and ablation benches:

* :class:`~repro.qos.fixed_priority.FixedPriorityArbiter` — the DAC'12
  4-level message-based scheme (two arbitration cycles, starvation-prone).
* :class:`~repro.qos.weighted_round_robin.WRRArbiter` (work-conserving and
  strict variants) and :class:`~repro.qos.deficit_round_robin.DWRRArbiter`.
* :class:`~repro.qos.fair_queuing.WFQArbiter` — finish-time fair queuing.
* :class:`~repro.qos.ccsp.CCSPArbiter` — credit-controlled static priority.
* :class:`~repro.qos.tdm.TDMArbiter` — static time-division multiplexing.
* :class:`~repro.qos.gsf.GSFArbiter` — frame-based injection control in the
  spirit of Globally Synchronized Frames.

Iterative VOQ matching schedulers (docs/SCHEDULERS.md; require
``SwitchConfig.voq=True`` and the event kernel):

* :class:`~repro.qos.islip.ISLIPArbiter` — round-robin request/grant/accept
  with the slip pointer-update rule (~100% uniform throughput).
* :class:`~repro.qos.qps.QPSRArbiter` — queue-proportional sampling with
  ``r`` propose/accept rounds.
* :class:`~repro.qos.sw_qps.SWQPSArbiter` — sliding-window QPS: a window of
  matchings refined across cycles, popped oldest-first.
"""

from .arrival_stamped_vc import ArrivalStampedVCArbiter
from .base import OutputArbiter
from .ccsp import CCSPArbiter
from .deficit_round_robin import DWRRArbiter
from .fair_queuing import WFQArbiter
from .fixed_priority import FixedPriorityArbiter
from .gl_policer import GLPolicer
from .gsf import GSFArbiter
from .islip import ISLIPArbiter
from .iterative import IterativeArbiter, shared_iterative_factory
from .lrg_arbiter import LRGArbiter
from .preemptive_vc import PreemptiveVCArbiter
from .qps import QPSRArbiter
from .ssvc_arbiter import SSVCArbiter
from .sw_qps import SWQPSArbiter
from .tdm import TDMArbiter
from .three_class import ThreeClassArbiter
from .virtual_clock_arbiter import VirtualClockArbiter
from .weighted_round_robin import WRRArbiter

__all__ = [
    "ArrivalStampedVCArbiter",
    "CCSPArbiter",
    "DWRRArbiter",
    "FixedPriorityArbiter",
    "GLPolicer",
    "GSFArbiter",
    "ISLIPArbiter",
    "IterativeArbiter",
    "LRGArbiter",
    "OutputArbiter",
    "PreemptiveVCArbiter",
    "QPSRArbiter",
    "SSVCArbiter",
    "SWQPSArbiter",
    "TDMArbiter",
    "ThreeClassArbiter",
    "VirtualClockArbiter",
    "WFQArbiter",
    "WRRArbiter",
    "shared_iterative_factory",
]
