"""Output arbitration policies.

Each arbiter governs one output channel and implements the two-phase
:class:`~repro.qos.base.OutputArbiter` interface (pure ``select`` followed by
``commit``). The paper's mechanisms:

* :class:`~repro.qos.lrg_arbiter.LRGArbiter` — the Swizzle Switch's default
  least-recently-granted policy (the "No QoS" baseline of Fig. 4a).
* :class:`~repro.qos.virtual_clock_arbiter.VirtualClockArbiter` — the
  original fine-grained Virtual Clock (Fig. 5's "Original Virtual Clock").
* :class:`~repro.qos.ssvc_arbiter.SSVCArbiter` — the paper's contribution:
  coarse thermometer-code comparison + LRG tie-break, with SUBTRACT / HALVE
  / RESET counter management.
* :class:`~repro.qos.three_class.ThreeClassArbiter` — the full BE/GB/GL
  stack with GL policing (Sections 3.2-3.4).

Baselines discussed in Sections 2.2 and 5, implemented for the comparison
and ablation benches:

* :class:`~repro.qos.fixed_priority.FixedPriorityArbiter` — the DAC'12
  4-level message-based scheme (two arbitration cycles, starvation-prone).
* :class:`~repro.qos.weighted_round_robin.WRRArbiter` and
  :class:`~repro.qos.deficit_round_robin.DWRRArbiter`.
* :class:`~repro.qos.fair_queuing.WFQArbiter` — finish-time fair queuing.
* :class:`~repro.qos.tdm.TDMArbiter` — static time-division multiplexing.
* :class:`~repro.qos.gsf.GSFArbiter` — frame-based injection control in the
  spirit of Globally Synchronized Frames.
"""

from .arrival_stamped_vc import ArrivalStampedVCArbiter
from .base import OutputArbiter
from .ccsp import CCSPArbiter
from .deficit_round_robin import DWRRArbiter
from .fair_queuing import WFQArbiter
from .fixed_priority import FixedPriorityArbiter
from .gl_policer import GLPolicer
from .gsf import GSFArbiter
from .lrg_arbiter import LRGArbiter
from .preemptive_vc import PreemptiveVCArbiter
from .ssvc_arbiter import SSVCArbiter
from .tdm import TDMArbiter
from .three_class import ThreeClassArbiter
from .virtual_clock_arbiter import VirtualClockArbiter
from .weighted_round_robin import WRRArbiter

__all__ = [
    "ArrivalStampedVCArbiter",
    "CCSPArbiter",
    "DWRRArbiter",
    "FixedPriorityArbiter",
    "GLPolicer",
    "GSFArbiter",
    "LRGArbiter",
    "OutputArbiter",
    "PreemptiveVCArbiter",
    "SSVCArbiter",
    "TDMArbiter",
    "ThreeClassArbiter",
    "VirtualClockArbiter",
    "WFQArbiter",
    "WRRArbiter",
]
