"""The full three-class arbitration stack (paper Section 3).

Priority order: **GL > GB > BE**.

* GL requests arbitrate in a dedicated lane: "in the presence of a GL
  request, all bitlines in GB class lanes will be discharged" (Fig. 3), so
  any eligible GL requester pre-empts every GB and BE requester; several
  simultaneous GL requesters are resolved by LRG. The
  :class:`~repro.qos.gl_policer.GLPolicer` withdraws this absolute priority
  from sources that exceed the small GL bandwidth reservation — their
  packets are demoted to the BE plane until the usage clock recovers.
* GB requests use SSVC (or any injected GB arbiter such as the fine-grained
  :class:`~repro.qos.virtual_clock_arbiter.VirtualClockArbiter`).
* BE requests use plain LRG and are served only when no GB or GL packet is
  present (paper Section 3.3).

A single :class:`~repro.core.lrg.LRGState` is shared by all three planes,
mirroring the hardware's one self-updating priority order per output.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import GLPolicerConfig, QoSConfig
from ..core.arbitration import Request, split_by_class
from ..core.lrg import LRGState
from ..errors import ArbitrationError
from ..types import TrafficClass
from .base import OutputArbiter
from .gl_policer import GLPolicer
from .ssvc_arbiter import SSVCArbiter


class ThreeClassArbiter(OutputArbiter):
    """BE/GB/GL arbitration for one output channel.

    Args:
        num_inputs: switch radix.
        qos: SSVC parameters for the GB plane (ignored when ``gb_arbiter``
            is supplied).
        gl_policer_config: GL reservation and burst window.
        gb_arbiter: optional pre-built GB-plane arbiter. It should share
            ``lrg`` if hardware-faithful tie-breaking across planes is
            desired; the factory default does.
        lrg: optional shared LRG state (created if omitted).
    """

    name = "three-class"

    def __init__(
        self,
        num_inputs: int,
        qos: Optional[QoSConfig] = None,
        gl_policer_config: Optional[GLPolicerConfig] = None,
        gb_arbiter: Optional[OutputArbiter] = None,
        lrg: Optional[LRGState] = None,
    ) -> None:
        self.num_inputs = num_inputs
        self.lrg = lrg if lrg is not None else LRGState(num_inputs)
        if gb_arbiter is None:
            gb_arbiter = SSVCArbiter(num_inputs, qos=qos, lrg=self.lrg)
        self.gb_arbiter = gb_arbiter
        self.gl_policer = GLPolicer(
            gl_policer_config if gl_policer_config is not None else GLPolicerConfig()
        )

    # ---------------------------------------------------------- registration

    def register_gb_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Admit a GB reservation; returns the flow's Vtick."""
        register = getattr(self.gb_arbiter, "register_flow", None)
        if register is None:
            raise ArbitrationError(
                f"GB arbiter {self.gb_arbiter.name!r} does not take reservations"
            )
        return register(input_port, rate, packet_flits)

    # --------------------------------------------------------- select/commit

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        groups = split_by_class(list(requests))

        gl_requests = groups[TrafficClass.GL]
        if gl_requests and self.gl_policer.eligible(now):
            winner_port = self.lrg.arbitrate(r.input_port for r in gl_requests)
            return next(r for r in gl_requests if r.input_port == winner_port)
        for demoted in gl_requests:
            self.gl_policer.note_throttled(now, demoted.input_port)

        gb_requests = groups[TrafficClass.GB]
        if gb_requests:
            return self.gb_arbiter.select(gb_requests, now)

        # BE plane also absorbs policed-out GL requests (demotion penalty).
        be_requests = groups[TrafficClass.BE] + gl_requests
        if not be_requests:
            return None
        winner_port = self.lrg.arbitrate(r.input_port for r in be_requests)
        return next(r for r in be_requests if r.input_port == winner_port)

    # ----------------------------------------------------------- fault hooks

    def inject_counter_bitflip(self, input_port: int, bit: int, now: int) -> None:
        """Fault hook: flip a GB-plane auxVC counter bit (delegated)."""
        inject = getattr(self.gb_arbiter, "inject_counter_bitflip", None)
        if inject is None:
            raise ArbitrationError(
                f"GB arbiter {self.gb_arbiter.name!r} has no auxVC counter to flip"
            )
        inject(input_port, bit, now)

    def commit(self, winner: Request, now: int) -> None:
        if winner.traffic_class is TrafficClass.GL:
            self.lrg.grant(winner.input_port)
            # eligible() is False whenever reserved_rate is zero, so this
            # never charges a nonexistent reservation (demoted GL wins
            # arrive here via the BE plane with eligible() False).
            if self.gl_policer.eligible(now):
                self.gl_policer.on_transmit(winner.packet_flits, now)
            return
        if winner.traffic_class is TrafficClass.GB:
            self.gb_arbiter.commit(winner, now)
            return
        self.lrg.grant(winner.input_port)
