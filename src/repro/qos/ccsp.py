"""Credit-Controlled Static Priority (Akesson et al., RTCSA 2008).

The paper's Section 5 cites CCSP as the other way to decouple latency from
allocated rate: instead of SSVC's coarse clocks + LRG, CCSP gives each flow
a *static* priority and polices it with a (rate, burstiness) credit bucket —
a flow may only use its priority while it has credit, so a high-priority
flow cannot take more long-run bandwidth than it reserved, yet its latency
is set by its priority rather than its rate.

Semantics implemented:

* each flow accrues ``rate`` flit-credits per cycle up to ``burst_flits``;
* a flow is *eligible* when its credit covers its head packet;
* among eligible flows the highest static priority wins (LRG breaks equal
  priorities); if no requester is eligible, the highest-priority requester
  is served anyway (work conservation — idle slots are not wasted) without
  letting its credit go below the floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.arbitration import Request
from ..core.lrg import LRGState
from ..errors import ArbitrationError, ConfigError
from .base import OutputArbiter

#: Credits may go this many flits negative when a slot is served
#: work-conservingly; bounds how far a flow can borrow ahead.
CREDIT_FLOOR = -64.0


@dataclass
class _CCSPFlow:
    rate: float
    burst_flits: float
    priority: int
    credit: float = 0.0
    last_update: int = 0


class CCSPArbiter(OutputArbiter):
    """Static priorities with per-flow credit policing.

    Args:
        num_inputs: switch radix.
        default_burst_flits: credit cap for flows registered without an
            explicit burst allowance.
    """

    name = "ccsp"

    def __init__(self, num_inputs: int, default_burst_flits: float = 16.0) -> None:
        if num_inputs < 1:
            raise ConfigError(f"num_inputs must be >= 1, got {num_inputs}")
        if default_burst_flits <= 0:
            raise ConfigError(
                f"default_burst_flits must be positive, got {default_burst_flits}"
            )
        self.num_inputs = num_inputs
        self.default_burst_flits = default_burst_flits
        self.lrg = LRGState(num_inputs)
        self._flows: Dict[int, _CCSPFlow] = {}

    # ---------------------------------------------------------- registration

    def register_flow(
        self,
        input_port: int,
        rate: float,
        packet_flits: int,
        priority: Optional[int] = None,
        burst_flits: Optional[float] = None,
    ) -> float:
        """Admit a flow; returns its credit rate (flits/cycle).

        Priority defaults to the registration order's inverse — later,
        lower — callers wanting explicit levels pass ``priority`` (higher
        value = higher priority).
        """
        if not 0 <= input_port < self.num_inputs:
            raise ArbitrationError(
                f"input_port {input_port} out of range [0, {self.num_inputs})"
            )
        if not 0.0 < rate <= 1.0:
            raise ConfigError(f"rate must be in (0, 1], got {rate}")
        burst = burst_flits if burst_flits is not None else self.default_burst_flits
        if burst < packet_flits:
            raise ConfigError(
                f"burst_flits ({burst}) must cover one packet ({packet_flits})"
            )
        if priority is None:
            priority = self.num_inputs - len(self._flows)
        self._flows[input_port] = _CCSPFlow(
            rate=rate, burst_flits=float(burst), priority=priority
        )
        return rate

    # -------------------------------------------------------------- credits

    def _sync(self, flow: _CCSPFlow, now: int) -> None:
        if now > flow.last_update:
            flow.credit = min(
                flow.credit + flow.rate * (now - flow.last_update),
                flow.burst_flits,
            )
            flow.last_update = now

    def credit_of(self, input_port: int, now: int) -> float:
        """Current credit of a flow, in flits."""
        flow = self._flow(input_port)
        self._sync(flow, now)
        return flow.credit

    def _flow(self, input_port: int) -> _CCSPFlow:
        try:
            return self._flows[input_port]
        except KeyError:
            raise ArbitrationError(
                f"input {input_port} has no CCSP registration"
            ) from None

    # --------------------------------------------------------- select/commit

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        eligible = []
        for request in requests:
            flow = self._flow(request.input_port)
            self._sync(flow, now)
            if flow.credit >= request.packet_flits:
                eligible.append(request)
        pool = eligible if eligible else list(requests)  # work conserving
        top = max(self._flow(r.input_port).priority for r in pool)
        contenders = [r for r in pool if self._flow(r.input_port).priority == top]
        if len(contenders) == 1:
            return contenders[0]
        winner_port = self.lrg.arbitrate(r.input_port for r in contenders)
        return next(r for r in contenders if r.input_port == winner_port)

    def commit(self, winner: Request, now: int) -> None:
        flow = self._flow(winner.input_port)
        self._sync(flow, now)
        flow.credit = max(flow.credit - winner.packet_flits, CREDIT_FLOOR)
        self.lrg.grant(winner.input_port)
