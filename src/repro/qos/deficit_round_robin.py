"""Deficit Weighted Round Robin (DWRR) arbitration.

Shreedhar & Varghese's deficit round robin, weighted: each flow accumulates
``quantum_i`` flit credits when its turn comes around; its head packet is
served only if the accumulated deficit covers the packet length, so flows
with variable packet sizes still receive bandwidth proportional to their
quanta. Like WRR it provides strict guarantees but does not redistribute a
reserved-but-idle flow's share to eager flows within the round (paper
Section 2.2).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.arbitration import Request
from ..errors import ConfigError
from .base import OutputArbiter


class DWRRArbiter(OutputArbiter):
    """Deficit round robin over inputs with flit quanta.

    Args:
        num_inputs: switch radix.
        quanta: flits credited to each input per round; inputs absent from
            the mapping receive ``default_quantum``.
        default_quantum: fallback per-round credit in flits.
    """

    name = "dwrr"

    def __init__(
        self,
        num_inputs: int,
        quanta: Optional[Dict[int, int]] = None,
        default_quantum: int = 8,
    ) -> None:
        if num_inputs < 1:
            raise ConfigError(f"num_inputs must be >= 1, got {num_inputs}")
        if default_quantum < 1:
            raise ConfigError(f"default_quantum must be >= 1, got {default_quantum}")
        self.num_inputs = num_inputs
        self._quanta = {p: default_quantum for p in range(num_inputs)}
        for port, quantum in (quanta or {}).items():
            self.set_quantum(port, quantum)
        self._deficit: Dict[int, int] = {p: 0 for p in range(num_inputs)}
        self._cursor = 0
        self._charged = False  # quantum already granted for this visit?

    def set_quantum(self, input_port: int, quantum: int) -> None:
        """Assign a per-round flit quantum to an input."""
        if not 0 <= input_port < self.num_inputs:
            raise ConfigError(f"input_port {input_port} out of range [0, {self.num_inputs})")
        if quantum < 1:
            raise ConfigError(f"quantum must be >= 1, got {quantum}")
        self._quanta[input_port] = quantum

    #: flits per round granted to a 100%-reserved flow.
    QUANTUM_SCALE = 64

    def register_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Reservation adapter: quantum proportional to the reserved rate."""
        if not 0.0 < rate <= 1.0:
            raise ConfigError(f"rate must be in (0, 1], got {rate}")
        self.set_quantum(input_port, max(1, round(rate * self.QUANTUM_SCALE)))
        return 1.0 / self.QUANTUM_SCALE

    def deficit_of(self, input_port: int) -> int:
        """Current deficit counter of an input, in flits."""
        return self._deficit.get(input_port, 0)

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        """Classic DRR visit: one quantum per visit, serve while deficit lasts.

        The cursor stays on a flow across consecutive arbitrations until its
        deficit can no longer cover its head packet, so a flow with a large
        quantum sends several packets back-to-back per round — this is what
        makes DRR's shares proportional to the quanta.
        """
        if not requests:
            return None
        self._validate(requests)
        by_port = {r.input_port: r for r in requests}
        # Bounded walk: each flow is visited at most twice (the second pass
        # happens when every backlogged flow needed its quantum charge).
        for attempt in range(2 * self.num_inputs + 1):
            port = self._cursor % self.num_inputs
            request = by_port.get(port)
            if request is None:
                # An idle flow's deficit does not accumulate (DRR rule:
                # deficit of an empty queue resets), so its share is lost.
                self._deficit[port] = 0
                self._advance()
                continue
            if not self._charged:
                self._deficit[port] += self._quanta[port]
                self._charged = True
            if self._deficit[port] >= request.packet_flits:
                return request
            self._advance()
        return None  # no backlogged flow accumulated enough; defensive

    def commit(self, winner: Request, now: int) -> None:
        port = winner.input_port
        self._deficit[port] = max(self._deficit.get(port, 0) - winner.packet_flits, 0)
        # Stay on this flow; the next select keeps serving it while its
        # deficit covers its head packet.
        self._cursor = port

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % self.num_inputs
        self._charged = False
