"""Original (fine-grained) Virtual Clock arbitration.

This is the "Original Virtual Clock" curve of Fig. 5: auxVC counters are
compared at full precision, so the schedule follows reserved rates exactly —
and couples latency to rate. A flow reserving rate ``r`` advances its clock
by ``Vtick = L/r`` per packet, so its packets wait on the order of ``1/r``
cycles between wins: low-rate flows see very high average latency.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.arbitration import Request
from ..core.lrg import LRGState
from ..core.virtual_clock import VirtualClockCounter, compute_vtick
from ..errors import ArbitrationError
from .base import OutputArbiter


class VirtualClockArbiter(OutputArbiter):
    """Exact auxVC comparison with LRG tie-breaking.

    Every requesting input must hold a registered reservation; the
    three-class arbiter routes unreserved (BE) traffic elsewhere.

    Args:
        num_inputs: switch radix.
        lrg: optional shared LRG state for tie-breaking.
    """

    name = "virtual-clock"

    def __init__(self, num_inputs: int, lrg: Optional[LRGState] = None) -> None:
        self.num_inputs = num_inputs
        self.lrg = lrg if lrg is not None else LRGState(num_inputs)
        self._clocks: Dict[int, VirtualClockCounter] = {}

    # ---------------------------------------------------------- registration

    def register_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Admit a flow and return its Vtick (cycles per packet)."""
        if not 0 <= input_port < self.num_inputs:
            raise ArbitrationError(
                f"input_port {input_port} out of range [0, {self.num_inputs})"
            )
        vtick = compute_vtick(rate, packet_flits)
        self._clocks[input_port] = VirtualClockCounter(vtick=vtick)
        return vtick

    def clock(self, input_port: int) -> VirtualClockCounter:
        """The flow's counter (mainly for tests and reports)."""
        try:
            return self._clocks[input_port]
        except KeyError:
            raise ArbitrationError(f"input {input_port} has no reservation") from None

    # --------------------------------------------------------- select/commit

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        stamps = {
            r.input_port: self.clock(r.input_port).effective(now) for r in requests
        }
        best = min(stamps.values())
        tied = [r.input_port for r in requests if stamps[r.input_port] == best]
        winner_port = tied[0] if len(tied) == 1 else self.lrg.arbitrate(tied)
        return next(r for r in requests if r.input_port == winner_port)

    def commit(self, winner: Request, now: int) -> None:
        self.clock(winner.input_port).on_transmit(now)
        self.lrg.grant(winner.input_port)
