"""Policing of the Guaranteed Latency class (paper Section 3.4).

"The bandwidth usage of the GL class is tracked by a counter similar to the
auxVC counters of the GB class and increments by a tick count proportional
to the reserved rate." The GL class has absolute priority, so without
policing a misbehaving source could deny service to the GB class entirely;
the paper therefore reserves only a small bandwidth fraction for GL and
keeps "safeguards in place to prevent its abuse".

We realise the safeguard as a leaky-bucket-style usage clock: each GL packet
transmission advances the shared GL clock by ``packet_flits /
reserved_rate`` cycles (one virtual tick at the reserved rate). While the
clock runs ahead of real time by more than ``burst_window`` cycles the GL
class has exhausted its reservation and *loses its absolute priority*; its
packets are then demoted to best-effort arbitration until the clock catches
back down. The ablation bench ``bench_gl_bound`` shows what the safeguard
buys: with policing disabled, a saturating GL source starves the GB class.
"""

from __future__ import annotations

from typing import Optional

from ..config import GLPolicerConfig
from ..errors import ConfigError


class GLPolicer:
    """Shared GL usage clock for one output channel.

    Args:
        config: reservation fraction and burst window. A ``reserved_rate``
            of 0 means GL traffic is never granted absolute priority,
            regardless of the burst window — there is no reservation to
            charge a transmission against. With a positive rate, a
            ``burst_window`` of ``None`` disables policing (GL is always
            eligible).

    :meth:`eligible` is pure so arbiters may consult it during selection;
    throttling statistics are recorded explicitly via :meth:`note_throttled`.
    """

    def __init__(self, config: GLPolicerConfig) -> None:
        self.config = config
        self._clock = 0.0
        #: number of (cycle, input) denial decisions where GL priority was
        #: withheld from a pending request
        self.throttle_events = 0
        self._throttle_cycle: Optional[int] = None
        self._throttled_inputs: set = set()

    @property
    def usage_clock(self) -> float:
        """Current GL usage clock value in cycles (absolute)."""
        return self._clock

    def lead(self, now: int) -> float:
        """How far GL usage runs ahead of its reservation, in cycles."""
        return max(self._clock - now, 0.0)

    def eligible(self, now: int) -> bool:
        """May GL traffic claim absolute priority at cycle ``now``? (pure)

        The zero-rate check takes precedence over the disabled burst
        window: with no reservation there is nothing to charge
        :meth:`on_transmit` against, so GL must never win the GL plane
        (it is demoted to best-effort instead).
        """
        if self.config.reserved_rate <= 0.0:
            return False
        if self.config.burst_window is None:
            return True
        return self.lead(now) <= self.config.burst_window

    def note_throttled(
        self, now: Optional[int] = None, input_port: Optional[int] = None
    ) -> None:
        """Record that a pending GL request was denied absolute priority.

        One output denies a given input at most once per cycle, so passing
        ``now`` deduplicates on ``(now, input_port)``: the kernel (which
        sees GL heads it filtered out before building requests) and
        :meth:`ThreeClassArbiter.select` (which sees demoted GL requests
        that rode along) can both report the same denial without double
        counting, while two *distinct* GL inputs denied in the same cycle
        count as two events. Calling without ``now`` always counts
        (unit-test convenience); ``input_port=None`` with ``now`` set is a
        single anonymous denial per cycle.
        """
        if now is not None:
            if now != self._throttle_cycle:
                self._throttle_cycle = now
                self._throttled_inputs.clear()
            if input_port in self._throttled_inputs:
                return
            self._throttled_inputs.add(input_port)
        self.throttle_events += 1

    def on_transmit(self, packet_flits: int, now: int) -> None:
        """Charge one GL packet against the reservation.

        Raises:
            ConfigError: if called while the reserved rate is zero — the
                caller should have demoted the packet instead.
        """
        if packet_flits <= 0:
            raise ConfigError(f"packet_flits must be positive, got {packet_flits}")
        if self.config.reserved_rate <= 0.0:
            raise ConfigError("GL transmission charged while GL reservation is zero")
        self._clock = max(self._clock, float(now)) + packet_flits / self.config.reserved_rate
