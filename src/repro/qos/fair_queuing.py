"""Weighted Fair Queuing via finish-time stamps (paper Section 2.2).

FQ/WFQ "emulate bit-by-bit round robin service. They compute finish times
for packets, which is the time that the packet would have been serviced had
the server been doing [bit-by-bit round robin]." Exact WFQ tracks a system
virtual time whose rate depends on the set of backlogged flows; we implement
the self-clocked approximation (SCFQ, Golestani 1994) in which the virtual
time is the finish tag of the packet currently in service — an O(N)
scheduler with the same qualitative behaviour, which is all the paper's
complexity argument relies on.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.arbitration import Request
from ..core.lrg import LRGState
from ..errors import ConfigError
from .base import OutputArbiter


class WFQArbiter(OutputArbiter):
    """Self-clocked weighted fair queuing over inputs.

    Args:
        num_inputs: switch radix.
        weights: service weight per input (fraction-like, any positive
            scale); inputs absent from the mapping get weight 1.0.
    """

    name = "wfq"

    def __init__(self, num_inputs: int, weights: Optional[Dict[int, float]] = None) -> None:
        if num_inputs < 1:
            raise ConfigError(f"num_inputs must be >= 1, got {num_inputs}")
        self.num_inputs = num_inputs
        self._weights = {p: 1.0 for p in range(num_inputs)}
        for port, weight in (weights or {}).items():
            self.set_weight(port, weight)
        self._finish: Dict[int, float] = {p: 0.0 for p in range(num_inputs)}
        self._pending: Dict[int, float] = {}
        self._virtual_time = 0.0
        self.lrg = LRGState(num_inputs)

    def set_weight(self, input_port: int, weight: float) -> None:
        """Assign a service weight to an input."""
        if not 0 <= input_port < self.num_inputs:
            raise ConfigError(f"input_port {input_port} out of range [0, {self.num_inputs})")
        if weight <= 0:
            raise ConfigError(f"weight must be positive, got {weight}")
        self._weights[input_port] = weight

    def register_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Reservation adapter: the WFQ weight is the reserved rate itself."""
        self.set_weight(input_port, rate)
        return rate

    def _finish_tag(self, request: Request) -> float:
        """Finish stamp of the head packet (SCFQ).

        The stamp is computed once, when the packet first reaches the head
        of its queue (first select it participates in), and reused until
        the packet is served — re-stamping every cycle would let a heavy
        flow's always-smaller marginal tag starve everyone else.
        """
        port = request.input_port
        pending = self._pending.get(port)
        if pending is not None:
            return pending
        start = max(self._finish[port], self._virtual_time)
        tag = start + request.packet_flits / self._weights[port]
        self._pending[port] = tag
        return tag

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        tags = {r.input_port: self._finish_tag(r) for r in requests}
        best = min(tags.values())
        tied = [r.input_port for r in requests if tags[r.input_port] == best]
        winner_port = tied[0] if len(tied) == 1 else self.lrg.arbitrate(tied)
        return next(r for r in requests if r.input_port == winner_port)

    def commit(self, winner: Request, now: int) -> None:
        tag = self._finish_tag(winner)
        self._pending.pop(winner.input_port, None)
        self._finish[winner.input_port] = tag
        self._virtual_time = tag  # self-clocking: system time follows service
        self.lrg.grant(winner.input_port)
