"""Frame-based injection control in the spirit of GSF (paper Section 2.2).

Globally Synchronized Frames (Lee et al., ISCA 2008) bounds each source's
injection per global *frame*; the real system needs "a global barrier
network across all nodes, which adds overhead and can be slow". In a
single-stage switch the barrier is trivially the shared cycle counter, so
this baseline captures GSF's scheduling behaviour without modelling barrier
latency: within each frame of ``frame_cycles`` cycles every input may win at
most ``budget_i`` packets; budget-exhausted inputs only compete when no
budgeted input requests (best-effort leftover service).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.arbitration import Request
from ..core.lrg import LRGState
from ..errors import ConfigError
from .base import OutputArbiter


class GSFArbiter(OutputArbiter):
    """Per-frame packet budgets with LRG arbitration inside a frame.

    Args:
        num_inputs: switch radix.
        budgets: packets each input may send per frame; inputs absent from
            the mapping get ``default_budget``.
        frame_cycles: frame length in cycles.
        default_budget: fallback per-frame budget.
    """

    name = "gsf"

    def __init__(
        self,
        num_inputs: int,
        budgets: Optional[Dict[int, int]] = None,
        frame_cycles: int = 512,
        default_budget: int = 4,
    ) -> None:
        if frame_cycles < 1:
            raise ConfigError(f"frame_cycles must be >= 1, got {frame_cycles}")
        if default_budget < 1:
            raise ConfigError(f"default_budget must be >= 1, got {default_budget}")
        self.num_inputs = num_inputs
        self.frame_cycles = frame_cycles
        self._budgets = {p: default_budget for p in range(num_inputs)}
        for port, budget in (budgets or {}).items():
            self.set_budget(port, budget)
        self._remaining: Dict[int, int] = dict(self._budgets)
        self._frame = 0
        self.lrg = LRGState(num_inputs)

    def set_budget(self, input_port: int, budget: int) -> None:
        """Assign a per-frame packet budget to an input."""
        if not 0 <= input_port < self.num_inputs:
            raise ConfigError(f"input_port {input_port} out of range [0, {self.num_inputs})")
        if budget < 1:
            raise ConfigError(f"budget must be >= 1, got {budget}")
        self._budgets[input_port] = budget

    def register_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Reservation adapter: per-frame budget matching the reserved rate."""
        if not 0.0 < rate <= 1.0:
            raise ConfigError(f"rate must be in (0, 1], got {rate}")
        budget = max(1, round(rate * self.frame_cycles / max(packet_flits, 1)))
        self.set_budget(input_port, budget)
        return budget / self.frame_cycles

    def _sync_frame(self, now: int) -> None:
        frame = now // self.frame_cycles
        if frame != self._frame:
            self._frame = frame
            self._remaining = dict(self._budgets)

    def remaining_budget(self, input_port: int, now: int) -> int:
        """Packets the input may still win in the current frame."""
        self._sync_frame(now)
        return self._remaining.get(input_port, 0)

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        self._sync_frame(now)
        budgeted = [r for r in requests if self._remaining.get(r.input_port, 0) > 0]
        pool = budgeted if budgeted else list(requests)
        winner_port = self.lrg.arbitrate(r.input_port for r in pool)
        return next(r for r in pool if r.input_port == winner_port)

    def commit(self, winner: Request, now: int) -> None:
        self._sync_frame(now)
        port = winner.input_port
        if self._remaining.get(port, 0) > 0:
            self._remaining[port] -= 1
        self.lrg.grant(port)
