"""Least-recently-granted arbitration — the Swizzle Switch default.

This is the "No QoS" baseline of Fig. 4a: all requests are treated equally,
so during congestion every input converges to an equal share of the output
bandwidth regardless of how much it actually needs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.arbitration import Request
from ..core.lrg import LRGState
from .base import OutputArbiter


class LRGArbiter(OutputArbiter):
    """Pure LRG arbitration over all requests, class-blind.

    Args:
        num_inputs: switch radix.
        lrg: optional shared LRG state (the three-class arbiter passes its
            own so BE traffic shares the hardware's priority order).
    """

    name = "lrg"

    def __init__(self, num_inputs: int, lrg: Optional[LRGState] = None) -> None:
        self.num_inputs = num_inputs
        self.lrg = lrg if lrg is not None else LRGState(num_inputs)

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        winner_port = self.lrg.arbitrate(r.input_port for r in requests)
        return next(r for r in requests if r.input_port == winner_port)

    def commit(self, winner: Request, now: int) -> None:
        self.lrg.grant(winner.input_port)
