"""SW-QPS — sliding-window queue-proportional sampling (arXiv:2010.08620).

Where QPS-r restarts its matching from scratch every cycle, SW-QPS keeps
a **window** of ``T`` matchings-in-progress and turns switching into
batch processing with no batching delay:

* every cycle, each input queue-proportionally samples one output (a
  single QPS proposal, same O(1) work as QPS-1) — a sample the window
  already holds for that input is re-rolled once against its not-yet-
  cached VOQs, so no proposal is knowingly wasted;
* the proposal is accepted into the **earliest** window slot where both
  the input and the sampled output are still unmatched (first-fit
  accept), so one proposal can repair any of the ``T`` pending matchings;
* the oldest slot departs each scheduling step, and a fresh empty slot
  joins the tail.

Two adaptations bridge the paper's cell switch (every port frees every
slot) to this packet-granular kernel (ports free asynchronously, and the
sparse event kernel only calls the scheduler when something can depart):

* each ``match`` call replays one proposal round per *elapsed cycle*
  since the previous call, keyed on the skipped cycle numbers, so the
  per-cycle O(1) proposal budget is paid in full;
* the departing matching is assembled from the whole window — heaviest
  current VOQ first — over the pairs executable right now; departed
  pairs leave their slots, dead leftovers (drained VOQ) are dropped, and
  still-wanted leftovers (ports mid-transmission) re-enter at the tail.

Because the window retains every refinement round, SW-QPS matches or
beats what QPS-r computes from scratch with small ``r`` — the paper's
headline claim, checked by the tournament experiment's
``sw-qps >= qps-r`` saturation-throughput gate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.matching import Matching, sample_proportional
from ..errors import ArbitrationError
from .iterative import IterativeArbiter


class _WindowSlot:
    """One matching under construction: input->output plus the reverse."""

    def __init__(self) -> None:
        self.by_input: Dict[int, int] = {}
        self.by_output: Dict[int, int] = {}

    def accepts(self, port: int, output: int) -> bool:
        return port not in self.by_input and output not in self.by_output

    def add(self, port: int, output: int) -> None:
        self.by_input[port] = output
        self.by_output[output] = port

    def remove(self, port: int) -> None:
        output = self.by_input.pop(port)
        del self.by_output[output]


class SWQPSArbiter(IterativeArbiter):
    """The SW-QPS scheduler for one whole switch.

    Args:
        num_inputs: switch radix.
        window: matchings kept in flight (the ``T`` above); defaults to
            the radix — every slot then sees up to ``radix`` proposals
            before departing, enough to approach maximal matchings.
    """

    name = "sw-qps"

    def __init__(self, num_inputs: int, window: Optional[int] = None) -> None:
        super().__init__(num_inputs)
        if window is None:
            window = num_inputs
        if window < 1:
            raise ArbitrationError(f"window must be >= 1, got {window}")
        self.window = window
        self._slots: Deque[_WindowSlot] = deque(
            _WindowSlot() for _ in range(window)
        )
        # Cycle of the previous match() call: the event kernel skips
        # cycles where nothing can depart, so each call replays the
        # skipped cycles' proposal rounds (one per cycle, as in the
        # paper's per-cell loop) to keep the O(1)-per-cycle budget whole.
        self._last_call = -1

    # ---------------------------------------------------------------- phases

    def _propose_phase(
        self,
        backlog: Mapping[int, Mapping[int, int]],
        now: int,
        cached: Mapping[int, Set[int]],
    ) -> Tuple[List[Tuple[int, int]], int]:
        """One QPS proposal per free input: [(input, sampled output)].

        A sample that duplicates a pair the window already holds for this
        input would be pure waste, so it is re-rolled once against the
        not-yet-cached VOQs (a second keyed draw — still O(1) per port).
        Proposals are ordered heaviest-VOQ first (ties to the lowest
        input), so window acceptance — like QPS's own accept phase —
        resolves same-output contention in favour of the longest queue.

        Pure with respect to shared state (RL013): samples from the
        caller's backlog and reads the cached-pair index without mutating
        either — placement happens in :meth:`_accept_into_window`.
        """
        weighted: List[Tuple[int, int, int]] = []
        for port in sorted(backlog):
            weights = backlog[port]
            if not weights:
                continue
            target = sample_proportional(weights, self._seed, now, 0, port)
            held = cached.get(port, ())
            if target in held:
                fresh = {o: w for o, w in weights.items() if o not in held}
                if not fresh:
                    continue  # every requested output is already cached
                target = sample_proportional(fresh, self._seed, now, 1, port)
            weighted.append((weights[target], port, target))
        weighted.sort(key=lambda entry: (-entry[0], entry[1]))
        return [(port, target) for _, port, target in weighted], len(weighted)

    def _accept_into_window(self, proposals: List[Tuple[int, int]]) -> None:
        """First-fit accept: earliest slot where both ports are free."""
        for port, output in proposals:
            for slot in self._slots:
                if slot.accepts(port, output):
                    slot.add(port, output)
                    break

    # ------------------------------------------------------------------ match

    def match(
        self,
        backlog: Mapping[int, Mapping[int, int]],
        free_outputs: Sequence[int],
        now: int,
    ) -> Matching:
        # One proposal round per cycle, as in the paper — including the
        # cycles the sparse kernel skipped since the last call (every port
        # was mid-transmission then, but the paper's inputs still propose
        # each cell). Rounds beyond `window` are moot: their acceptances
        # would already have slid out of the window.
        elapsed = min(self.window, max(1, now - self._last_call))
        count = 0
        cached: Dict[int, Set[int]] = {}
        for slot in self._slots:
            for held_port, held_output in slot.by_input.items():
                cached.setdefault(held_port, set()).add(held_output)
        for cycle in range(now - elapsed + 1, now + 1):
            proposals, round_count = self._propose_phase(backlog, cycle, cached)
            self._accept_into_window(proposals)
            for port, output in proposals:
                cached.setdefault(port, set()).add(output)
            count += round_count
        self._last_call = now
        # Departure, adapted to a packet switch: the paper's cell switch
        # frees every port each slot, so the popped head is always
        # executable. Here ports free asynchronously, so the whole window
        # acts as the candidate pool and the departing matching is
        # assembled greedily by *current* VOQ backlog (heaviest first,
        # ties to the oldest slot then lowest input) over every pair that
        # is executable now. Re-weighing at departure keeps the
        # queue-proportional bias honest — a pair accepted with a deep
        # VOQ `window` calls ago must not outrank a now-deeper queue.
        usable_outputs = set(free_outputs)
        candidates: List[Tuple[int, int, int, int]] = []
        for age, slot in enumerate(self._slots):
            for port, output in sorted(slot.by_input.items()):
                if output in usable_outputs and output in backlog.get(port, {}):
                    candidates.append(
                        (-backlog[port][output], age, port, output)
                    )
        candidates.sort()
        pairs: List[Tuple[int, int]] = []
        matched_inputs: Set[int] = set()
        matched_outputs: Set[int] = set()
        for _, age, port, output in candidates:
            if port in matched_inputs or output in matched_outputs:
                continue
            pairs.append((port, output))
            matched_inputs.add(port)
            matched_outputs.add(output)
            self._slots[age].remove(port)
        pairs.sort()
        head = self._slots.popleft()
        self._slots.append(_WindowSlot())
        tail = self._slots[-1]
        for port, output in sorted(head.by_input.items()):
            # Ungranted head leftovers: a pair whose VOQ drained while it
            # waited is dead (the cost of deciding `window` calls early);
            # a pair whose port is mid-transmission is still wanted, so it
            # re-enters at the *tail* — young enough that it cannot squat
            # in front of fresh executable proposals, while promotion can
            # still grant it the moment its ports free up.
            if port in backlog and output not in backlog[port]:
                continue
            if tail.accepts(port, output):
                tail.add(port, output)
        return Matching(tuple(pairs), iterations=1, proposals=count)
