"""Common interface for output-channel arbiters."""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from ..core.arbitration import Request
from ..errors import ArbitrationError


class OutputArbiter(abc.ABC):
    """Arbitration policy for a single output channel.

    The interface is split into a *pure* selection phase and an explicit
    commit phase. The simulator calls :meth:`select` with the head-of-line
    requests of all inputs that are free to transmit; if it can honour the
    decision (the winning input is still free, the channel is idle) it calls
    :meth:`commit`, which is where state such as LRG order and auxVC
    counters advances. Tests may call :meth:`arbitrate` to do both at once.

    Class attribute ``arbitration_cycles`` lets a policy override the
    switch-level re-arbitration latency: the Swizzle Switch arbitrates in a
    single cycle (the paper's contribution includes fitting SSVC into that
    cycle), while the DAC'12 fixed-priority baseline needs two.
    """

    #: Override of SwitchConfig.arbitration_cycles; ``None`` keeps the
    #: switch default.
    arbitration_cycles: Optional[int] = None

    #: Human-readable policy name used in reports.
    name: str = "arbiter"

    @abc.abstractmethod
    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        """Choose a winner among ``requests`` without mutating state.

        Returns ``None`` when the policy declines to grant anyone this
        cycle (e.g. TDM with an idle slot owner) even though requests are
        pending — this is how non-work-conserving policies waste slots.
        """

    @abc.abstractmethod
    def commit(self, winner: Request, now: int) -> None:
        """Commit a grant previously returned by :meth:`select`."""

    def arbitrate(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        """Convenience: select and, if someone won, commit."""
        winner = self.select(requests, now)
        if winner is not None:
            self.commit(winner, now)
        return winner

    # ------------------------------------------------------------- utilities

    @staticmethod
    def _validate(requests: Sequence[Request]) -> None:
        """Reject duplicate input ports — an input has one head of line."""
        ports = [r.input_port for r in requests]
        if len(set(ports)) != len(ports):
            raise ArbitrationError(f"duplicate requesting ports: {sorted(ports)}")
