"""Base class and factory plumbing for iterative VOQ matching schedulers.

The per-output arbiters in this package (:class:`~repro.qos.base.
OutputArbiter`) decide one output channel at a time. The canonical
input-queued switch schedulers — iSLIP, QPS-r, SW-QPS — instead compute a
*matching* between all free inputs and all free outputs at once, through
rounds of request/grant/accept (or propose/accept) message exchange over
the crossbar. :class:`IterativeArbiter` is their shared contract:

* one instance serves the **whole switch** (all outputs share it), built
  through :func:`shared_iterative_factory` so the standard per-output
  ``ArbiterFactory`` wiring keeps working;
* the simulator calls :meth:`match` with the VOQ backlog of every free
  input, restricted to free outputs, and applies the returned
  :class:`~repro.core.matching.Matching` as this cycle's grants;
* the per-output ``select``/``commit`` interface is explicitly refused —
  an iterative scheduler consulted per-output would double-book inputs;
* schedulers that sample (QPS-r, SW-QPS) draw through keyed hashes over
  ``(seed, cycle, round, port)`` — :meth:`bind_seed` supplies the run's
  master seed before the first cycle, and no RNG object state exists.

The RL013 lint rule ("iterative-arbiter contract") holds implementations
to the protocol's phase discipline: grant/request-phase helpers must not
mutate the shared VOQ/request state they are handed, and round-robin
pointers may only advance on accepted grants (accept/commit phases).
Matching in VOQ mode only: the event kernel raises
:class:`~repro.errors.ConfigError` when an iterative scheduler is paired
with the classic partially-queued input ports (see docs/SCHEDULERS.md).
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Mapping, Optional, Sequence

from ..core.arbitration import Request
from ..core.matching import Matching
from ..errors import ArbitrationError
from .base import OutputArbiter


class IterativeArbiter(OutputArbiter):
    """A switch-wide matching scheduler over virtual output queues.

    Args:
        num_inputs: switch radix (inputs == outputs).
    """

    name = "iterative"

    def __init__(self, num_inputs: int) -> None:
        if num_inputs < 2:
            raise ArbitrationError(
                f"iterative schedulers need at least 2 ports, got {num_inputs}"
            )
        self.num_inputs = num_inputs
        self._seed = 0

    # ----------------------------------------------------------- seed wiring

    def bind_seed(self, seed: int) -> None:
        """Install the run's master seed before the first cycle.

        Sampling schedulers key every draw on this seed (plus cycle,
        round, and port), so two runs with equal seeds replay identical
        matchings regardless of process fan-out. Deterministic schedulers
        (iSLIP) simply ignore it.
        """
        self._seed = seed

    # ------------------------------------------------------------- interface

    @abc.abstractmethod
    def match(
        self,
        backlog: Mapping[int, Mapping[int, int]],
        free_outputs: Sequence[int],
        now: int,
    ) -> Matching:
        """Compute one conflict-free matching for cycle ``now``.

        Args:
            backlog: for each *free* input (sorted iteration is the
                implementation's responsibility), the flits queued per
                free output — only non-empty VOQs appear. The mapping is
                owned by the simulator and must not be mutated.
            free_outputs: outputs whose channels are idle this cycle, in
                increasing order.
            now: current cycle.

        Returns:
            The matched pairs plus iteration/proposal diagnostics. May be
            empty (e.g. a sliding-window scheduler whose head slot is
            stale) even when requests exist — the simulator retries next
            cycle, exactly like a declining per-output arbiter.
        """

    # ------------------------------------------- per-output interface refusal

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        """Refused: a matching scheduler cannot decide one output alone."""
        raise ArbitrationError(
            f"{self.name} is an iterative matching scheduler; the simulator "
            "must call match(), not per-output select()"
        )

    def commit(self, winner: Request, now: int) -> None:
        """Refused: grants are committed through :meth:`match`."""
        raise ArbitrationError(
            f"{self.name} is an iterative matching scheduler; the simulator "
            "must call match(), not per-output commit()"
        )


#: Builds a whole-switch iterative scheduler from a SwitchConfig.
IterativeMaker = Callable[[object], IterativeArbiter]


def shared_iterative_factory(maker: IterativeMaker) -> Callable[..., IterativeArbiter]:
    """Adapt a whole-switch scheduler into the per-output factory protocol.

    :class:`~repro.switch.crossbar.SwizzleSwitch` calls its arbiter
    factory once per output, in increasing order starting at output 0.
    The wrapper builds one fresh scheduler when asked for output 0 and
    hands the *same instance* to every other output of that switch, so
    round-robin pointers and window state are switch-global (as in the
    hardware) while each newly constructed switch still gets pristine
    state — no scheduler state ever leaks between simulations.
    """
    state: Dict[str, IterativeArbiter] = {}

    def factory(output: int, config: object) -> IterativeArbiter:
        if output == 0 or "scheduler" not in state:
            state["scheduler"] = maker(config)
        return state["scheduler"]

    return factory
