"""Weighted Round Robin (WRR) arbitration.

A static scheduler: each flow owns ``weight_i`` packet credits per round,
served in a fixed circular order. WRR "can provide strict bandwidth
guarantees" but "leads to network underutilization as [it does] not
distribute leftover bandwidth equally to flows with excess data or to
best-effort flows" (paper Section 2.2). Two variants are exposed:

* work-conserving (default): an empty flow's turn is skipped immediately;
* strict (``work_conserving=False``): an empty flow's slot is *wasted* for
  one arbitration opportunity, which is what the underutilization ablation
  bench demonstrates.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.arbitration import Request
from ..errors import ConfigError
from .base import OutputArbiter


class WRRArbiter(OutputArbiter):
    """Classic WRR over inputs with integer packet weights.

    Args:
        num_inputs: switch radix.
        weights: packets each input may send per round; inputs absent from
            the mapping get weight 1.
        work_conserving: skip (True) or waste (False) empty flows' credits.
    """

    name = "wrr"

    def __init__(
        self,
        num_inputs: int,
        weights: Optional[Dict[int, int]] = None,
        work_conserving: bool = True,
    ) -> None:
        if num_inputs < 1:
            raise ConfigError(f"num_inputs must be >= 1, got {num_inputs}")
        self.num_inputs = num_inputs
        self.work_conserving = work_conserving
        self._weights = {p: 1 for p in range(num_inputs)}
        for port, weight in (weights or {}).items():
            self.set_weight(port, weight)
        self._credits: Dict[int, int] = dict(self._weights)
        self._cursor = 0
        self.wasted_slots = 0

    def set_weight(self, input_port: int, weight: int) -> None:
        """Assign a per-round packet weight to an input."""
        if not 0 <= input_port < self.num_inputs:
            raise ConfigError(f"input_port {input_port} out of range [0, {self.num_inputs})")
        if weight < 1:
            raise ConfigError(f"weight must be >= 1, got {weight}")
        self._weights[input_port] = weight

    #: packets per round granted to a 100%-reserved flow.
    WEIGHT_SCALE = 20

    def register_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Reservation adapter: weight proportional to the reserved rate.

        Returns the effective rate granularity (1 / WEIGHT_SCALE) so
        callers can reason about quantization, mirroring the Vtick return
        of the clock-based arbiters.
        """
        if not 0.0 < rate <= 1.0:
            raise ConfigError(f"rate must be in (0, 1], got {rate}")
        self.set_weight(input_port, max(1, round(rate * self.WEIGHT_SCALE)))
        return 1.0 / self.WEIGHT_SCALE

    def _refill(self) -> None:
        self._credits = dict(self._weights)
        self._cursor = 0

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        by_port = {r.input_port: r for r in requests}
        if all(c <= 0 for c in self._credits.values()):
            self._refill()
        # Walk the circular order starting at the cursor; at most one full
        # round plus a refill is needed to find a credited requester.
        for attempt in range(2 * self.num_inputs + 1):
            port = self._cursor % self.num_inputs
            if self._credits.get(port, 0) > 0:
                if port in by_port:
                    return by_port[port]
                # Slot owner has nothing to send.
                if not self.work_conserving:
                    self._credits[port] -= 1
                    self.wasted_slots += 1
                    return None
                self._credits[port] = 0  # forfeit the rest of this turn
            self._cursor += 1
            if all(c <= 0 for c in self._credits.values()):
                self._refill()
        return None  # unreachable with valid state; defensive

    def commit(self, winner: Request, now: int) -> None:
        self._credits[winner.input_port] = self._credits.get(winner.input_port, 0) - 1
        if self._credits[winner.input_port] <= 0:
            self._cursor = winner.input_port + 1
