"""A PVC-style baseline (Grot, Keckler & Mutlu, MICRO 2009).

Preemptive Virtual Clock is the multi-hop QoS scheme the paper cites as
related work ([7]): priorities derive from each flow's *bandwidth usage
relative to its reservation* within the current frame, and the frame resets
periodically so history cannot be banked (PVC additionally preempts
lower-priority packets in flight, which has no analogue in a single-stage
switch where arbitration happens before transmission begins).

The single-switch adaptation implemented here: each flow accumulates
``consumed_flits / reserved_rate`` — normalized usage in "cycles of
entitlement" — and the least-served-relative-to-reservation flow wins;
ties break by LRG; all usage counters clear every ``frame_cycles``. This is
deliberately close to SSVC's RESET mode, which is the point: the paper's
contribution is getting this class of behaviour into one arbitration cycle
of a high-radix crossbar.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.arbitration import Request
from ..core.lrg import LRGState
from ..errors import ArbitrationError, ConfigError
from .base import OutputArbiter


class PreemptiveVCArbiter(OutputArbiter):
    """Frame-based normalized-usage arbitration (PVC-style).

    Args:
        num_inputs: switch radix.
        frame_cycles: usage-counter reset period.
        lrg: optional shared LRG state.
    """

    name = "preemptive-vc"

    def __init__(
        self,
        num_inputs: int,
        frame_cycles: int = 2048,
        lrg: Optional[LRGState] = None,
    ) -> None:
        if frame_cycles < 1:
            raise ConfigError(f"frame_cycles must be >= 1, got {frame_cycles}")
        self.num_inputs = num_inputs
        self.frame_cycles = frame_cycles
        self.lrg = lrg if lrg is not None else LRGState(num_inputs)
        self._rates: Dict[int, float] = {}
        self._usage: Dict[int, float] = {}
        self._frame = 0
        self.frame_resets = 0

    def register_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Admit a flow; returns its per-flit usage increment (1/rate)."""
        if not 0 <= input_port < self.num_inputs:
            raise ArbitrationError(
                f"input_port {input_port} out of range [0, {self.num_inputs})"
            )
        if not 0.0 < rate <= 1.0:
            raise ConfigError(f"rate must be in (0, 1], got {rate}")
        self._rates[input_port] = rate
        self._usage[input_port] = 0.0
        return 1.0 / rate

    def usage_of(self, input_port: int, now: int) -> float:
        """Normalized usage of a flow in the current frame."""
        self._sync_frame(now)
        try:
            return self._usage[input_port]
        except KeyError:
            raise ArbitrationError(f"input {input_port} has no reservation") from None

    def _sync_frame(self, now: int) -> None:
        frame = now // self.frame_cycles
        if frame != self._frame:
            self._frame = frame
            for port in self._usage:
                self._usage[port] = 0.0
            self.frame_resets += 1

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        self._sync_frame(now)
        usage = {r.input_port: self.usage_of(r.input_port, now) for r in requests}
        best = min(usage.values())
        tied = [r.input_port for r in requests if usage[r.input_port] == best]
        winner_port = tied[0] if len(tied) == 1 else self.lrg.arbitrate(tied)
        return next(r for r in requests if r.input_port == winner_port)

    def commit(self, winner: Request, now: int) -> None:
        self._sync_frame(now)
        port = winner.input_port
        self._usage[port] += winner.packet_flits / self._rates[port]
        self.lrg.grant(port)
