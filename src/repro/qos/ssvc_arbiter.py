"""SSVC arbitration — the paper's Guaranteed Bandwidth mechanism.

A thin :class:`~repro.qos.base.OutputArbiter` adapter over
:class:`repro.core.ssvc.SSVCCore`: coarse thermometer-level comparison with
LRG tie-breaking, and the SUBTRACT/HALVE/RESET counter-management policies
selected through :class:`repro.config.QoSConfig`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import QoSConfig
from ..core.arbitration import Request
from ..core.lrg import LRGState
from ..core.ssvc import SSVCCore
from .base import OutputArbiter


class SSVCArbiter(OutputArbiter):
    """Swizzle Switch Virtual Clock arbitration for one output.

    Args:
        num_inputs: switch radix.
        qos: quantization / counter-management parameters.
        lrg: optional shared LRG state used for tie-breaking (and shared
            with the BE plane in the three-class arbiter, mirroring the
            hardware's single per-output LRG order).
    """

    name = "ssvc"

    def __init__(
        self,
        num_inputs: int,
        qos: Optional[QoSConfig] = None,
        lrg: Optional[LRGState] = None,
    ) -> None:
        self.num_inputs = num_inputs
        self.qos = qos if qos is not None else QoSConfig()
        self.core = SSVCCore(self.qos, num_inputs, lrg=lrg)
        self.name = f"ssvc-{self.qos.counter_mode.value}"

    # ---------------------------------------------------------- registration

    def register_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Admit a flow at this output; returns its Vtick."""
        return self.core.register_flow(input_port, rate, packet_flits)

    # --------------------------------------------------------- select/commit

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        winner_port = self.core.select((r.input_port for r in requests), now)
        return next(r for r in requests if r.input_port == winner_port)

    def commit(self, winner: Request, now: int) -> None:
        self.core.commit(winner.input_port, now)

    # ----------------------------------------------------------- fault hooks

    def inject_counter_bitflip(self, input_port: int, bit: int, now: int) -> None:
        """Fault hook: flip one bit of this input's auxVC counter."""
        self.core.inject_counter_bitflip(input_port, bit, now)
