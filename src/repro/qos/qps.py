"""QPS-r — queue-proportional sampling with r acceptance rounds.

QPS-r (arXiv:1905.05392; retrieved via the SW-QPS paper's lineage) runs
``r`` propose/accept rounds per cycle:

1. **Propose** — every unmatched input samples *one* unmatched output
   with probability proportional to the VOQ backlog it holds for it, and
   proposes, attaching that backlog as the proposal's weight.
2. **Accept** — every output that received proposals accepts the one
   with the largest weight (longest VOQ first — the greedy step that
   gives QPS its maximal-weight flavor); ties break to the lowest input
   index, which is deterministic and replayable.

With ``r = 1`` the scheduler has O(1) per-port complexity and already
sustains high throughput; ``r = 2`` (the default here, the paper's
recommended configuration) re-runs the exchange among still-unmatched
ports to fill most of the remaining holes.

Sampling draws go through :func:`repro.core.matching.sample_proportional`
keyed on ``(seed, cycle, round, input)`` — no RNG object, so matchings
replay bit-identically at any sweep job count.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from ..core.matching import Matching, sample_proportional
from ..errors import ArbitrationError
from .iterative import IterativeArbiter


class QPSRArbiter(IterativeArbiter):
    """The QPS-r scheduler for one whole switch.

    Args:
        num_inputs: switch radix.
        rounds: propose/accept rounds per cycle (the ``r`` in QPS-r).
    """

    name = "qps-r"

    def __init__(self, num_inputs: int, rounds: int = 2) -> None:
        super().__init__(num_inputs)
        if rounds < 1:
            raise ArbitrationError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    # ---------------------------------------------------------------- phases

    def _propose_phase(
        self,
        backlog: Mapping[int, Mapping[int, int]],
        matched_inputs: Set[int],
        matched_outputs: Set[int],
        now: int,
        round_index: int,
    ) -> Tuple[Dict[int, List[Tuple[int, int]]], int]:
        """Queue-proportional proposals: output -> [(weight, input)].

        Pure with respect to shared state (RL013): the caller's backlog
        is read, never mutated, and no pointer/window state exists to
        advance here.
        """
        proposals: Dict[int, List[Tuple[int, int]]] = {}
        count = 0
        for port in sorted(backlog):
            if port in matched_inputs:
                continue
            available = {
                output: flits
                for output, flits in backlog[port].items()
                if output not in matched_outputs
            }
            if not available:
                continue
            target = sample_proportional(
                available, self._seed, now, round_index, port
            )
            proposals.setdefault(target, []).append((available[target], port))
            count += 1
        return proposals, count

    @staticmethod
    def _accept_phase(
        proposals: Dict[int, List[Tuple[int, int]]]
    ) -> List[Tuple[int, int]]:
        """Longest-VOQ-first acceptance, ties to the lowest input index."""
        accepted: List[Tuple[int, int]] = []
        for output in sorted(proposals):
            weight, port = max(
                proposals[output], key=lambda entry: (entry[0], -entry[1])
            )
            accepted.append((port, output))
        return accepted

    # ------------------------------------------------------------------ match

    def match(
        self,
        backlog: Mapping[int, Mapping[int, int]],
        free_outputs: Sequence[int],
        now: int,
    ) -> Matching:
        pairs: List[Tuple[int, int]] = []
        matched_inputs: Set[int] = set()
        matched_outputs: Set[int] = set()
        proposals_seen = 0
        rounds_run = 0
        for round_index in range(self.rounds):
            proposals, count = self._propose_phase(
                backlog, matched_inputs, matched_outputs, now, round_index
            )
            if not proposals:
                break
            rounds_run += 1
            proposals_seen += count
            for port, output in self._accept_phase(proposals):
                pairs.append((port, output))
                matched_inputs.add(port)
                matched_outputs.add(output)
        return Matching(
            tuple(pairs), iterations=max(rounds_run, 1), proposals=proposals_seen
        )
