"""Time-Division Multiplexing arbitration (paper Section 2.2).

"In a true TDM system, packets are serviced only in the time slots allocated
to the source. If the source has no packets to send, that time slot is
wasted and results in link underutilization." Virtual Clock exists precisely
to fix this, so the TDM arbiter is the reference point for the
underutilization ablation bench.

The slot table is built from reserved rates: a frame of ``frame_slots``
packet slots is divided proportionally, each slot spanning one packet
transmission opportunity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.arbitration import Request
from ..errors import ConfigError
from .base import OutputArbiter


def build_slot_table(rates: Dict[int, float], frame_slots: int) -> List[Optional[int]]:
    """Spread each input's slots evenly across a frame.

    Args:
        rates: reserved rate per input (fractions of the channel); the sum
            must not exceed 1.
        frame_slots: number of packet slots in one frame.

    Returns:
        A list of length ``frame_slots``; entry ``k`` is the input owning
        slot ``k`` or ``None`` for an unreserved slot.
    """
    if frame_slots < 1:
        raise ConfigError(f"frame_slots must be >= 1, got {frame_slots}")
    total = sum(rates.values())
    if total > 1.0 + 1e-9:
        raise ConfigError(f"reserved rates sum to {total:.4f} > 1.0")
    if any(r <= 0 for r in rates.values()):
        raise ConfigError("all reserved rates must be positive")
    table: List[Optional[int]] = [None] * frame_slots
    # Largest-rate-first placement at evenly spaced offsets minimizes jitter.
    for port in sorted(rates, key=lambda p: -rates[p]):
        count = round(rates[port] * frame_slots)
        if count == 0 and rates[port] > 0:
            count = 1
        placed = 0
        stride = frame_slots / max(count, 1)
        k = 0
        while placed < count and k < 4 * frame_slots:
            slot = int(k * stride) % frame_slots
            probe = 0
            while table[(slot + probe) % frame_slots] is not None and probe < frame_slots:
                probe += 1
            idx = (slot + probe) % frame_slots
            if table[idx] is None:
                table[idx] = port
                placed += 1
            k += 1
        if placed < count:
            raise ConfigError("slot table overflow: rates leave no room for placement")
    return table


class TDMArbiter(OutputArbiter):
    """Static slot-table arbitration; unowned/idle slots are wasted.

    Args:
        num_inputs: switch radix.
        rates: reserved rate per input.
        frame_slots: slots per frame (defaults to ``4 * num_inputs`` for
            reasonable rate resolution).
        slot_cycles: cycles per slot — normally the packet length so one
            slot carries one packet.
    """

    name = "tdm"

    def __init__(
        self,
        num_inputs: int,
        rates: Optional[Dict[int, float]] = None,
        frame_slots: Optional[int] = None,
        slot_cycles: int = 9,
    ) -> None:
        if slot_cycles < 1:
            raise ConfigError(f"slot_cycles must be >= 1, got {slot_cycles}")
        self.num_inputs = num_inputs
        self.slot_cycles = slot_cycles
        self.frame_slots = frame_slots or 4 * num_inputs
        self._rates: Dict[int, float] = dict(rates or {})
        self.table = build_slot_table(self._rates, self.frame_slots)
        self.wasted_slots = 0

    def register_flow(self, input_port: int, rate: float, packet_flits: int) -> float:
        """Reservation adapter: rebuild the slot table with the new rate."""
        if not 0 <= input_port < self.num_inputs:
            raise ConfigError(f"input_port {input_port} out of range [0, {self.num_inputs})")
        self._rates[input_port] = rate
        self.table = build_slot_table(self._rates, self.frame_slots)
        return 1.0 / self.frame_slots

    def slot_owner(self, now: int) -> Optional[int]:
        """The input owning the slot active at cycle ``now``."""
        return self.table[(now // self.slot_cycles) % len(self.table)]

    def select(self, requests: Sequence[Request], now: int) -> Optional[Request]:
        if not requests:
            return None
        self._validate(requests)
        owner = self.slot_owner(now)
        if owner is None:
            self.wasted_slots += 1
            return None
        for request in requests:
            if request.input_port == owner:
                return request
        self.wasted_slots += 1  # owner idle: slot wasted, nobody else may use it
        return None

    def commit(self, winner: Request, now: int) -> None:
        """TDM keeps no per-grant state; the table is static."""
