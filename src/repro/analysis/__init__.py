"""``repro.analysis`` — self-hosted static analysis for the simulator.

The paper's guarantees (SSVC bandwidth adherence, the GL worst-case bound
of Eq. 1) hold only if the simulator preserves a set of cross-module
invariants — seeded determinism, pure-select/explicit-commit arbitration,
bounded thermometer levels. This package enforces them statically:

* :mod:`repro.analysis.engine` — AST visitor framework, rule registry,
  per-line/per-file suppressions, text & JSON reports.
* :mod:`repro.analysis.rules` — simulator-specific hygiene rules (RL1xx).
* :mod:`repro.analysis.contracts` — cross-module protocol contracts (RC1xx).
* :mod:`repro.analysis.cli` — the ``repro-lint`` console entry point.

The analyzer lints its own source (``repro-lint src/repro`` includes this
package) and its catalogue is documented in ``docs/STATIC_ANALYSIS.md``.
"""

from .engine import (
    Engine,
    Finding,
    Report,
    Rule,
    Severity,
    SourceModule,
    all_rules,
    register,
)

# Importing the rule modules populates the registry.
from . import rules as _rules  # noqa: F401,E402
from . import contracts as _contracts  # noqa: F401,E402


def lint_paths(paths: "list[str]", force_guarded: bool = False) -> Report:
    """Lint files/directories with the full default rule set."""
    return Engine(force_guarded=force_guarded).lint_paths(paths)


def lint_source(
    source: str, path: str = "<string>", force_guarded: bool = False
) -> "list[Finding]":
    """Lint a source string (test/tooling convenience)."""
    return Engine(force_guarded=force_guarded).lint_source(source, path)


__all__ = [
    "Engine",
    "Finding",
    "Report",
    "Rule",
    "Severity",
    "SourceModule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
]
