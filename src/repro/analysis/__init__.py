"""``repro.analysis`` — self-hosted static analysis for the simulator.

The paper's guarantees (SSVC bandwidth adherence, the GL worst-case bound
of Eq. 1) hold only if the simulator preserves a set of cross-module
invariants — seeded determinism, pure-select/explicit-commit arbitration,
bounded thermometer levels. This package enforces them statically:

* :mod:`repro.analysis.engine` — AST visitor framework, rule registry,
  per-line/per-file suppressions, text & JSON reports.
* :mod:`repro.analysis.rules` — simulator-specific hygiene rules (RL1xx).
* :mod:`repro.analysis.contracts` — cross-module protocol contracts (RC1xx).
* :mod:`repro.analysis.project` — whole-program loader: module/symbol
  tables, import graph, approximate call graph, and the
  :class:`ProjectRule` API behind ``repro-lint --project``.
* :mod:`repro.analysis.project_rules` — cross-module rules (RP2xx):
  seed provenance, fork-safety, exception-contract, probe-flush.
* :mod:`repro.analysis.baseline` — grandfathered-findings baseline so CI
  fails only on regressions.
* :mod:`repro.analysis.cli` — the ``repro-lint`` console entry point.

The analyzer lints its own source (``repro-lint src/repro`` includes this
package) and its catalogue is documented in ``docs/STATIC_ANALYSIS.md``.
"""

from .engine import (
    Engine,
    Finding,
    Report,
    Rule,
    Severity,
    SourceModule,
    all_rules,
    register,
)
from .project import (
    Project,
    ProjectLoader,
    ProjectRule,
    all_project_rules,
    analyze_project,
    register_project_rule,
)
from .baseline import apply_baseline, load_baseline, write_baseline

# Importing the rule modules populates the registries.
from . import rules as _rules  # noqa: F401,E402
from . import contracts as _contracts  # noqa: F401,E402
from . import project_rules as _project_rules  # noqa: F401,E402


def lint_paths(paths: "list[str]", force_guarded: bool = False) -> Report:
    """Lint files/directories with the full default rule set."""
    return Engine(force_guarded=force_guarded).lint_paths(paths)


def lint_source(
    source: str, path: str = "<string>", force_guarded: bool = False
) -> "list[Finding]":
    """Lint a source string (test/tooling convenience)."""
    return Engine(force_guarded=force_guarded).lint_source(source, path)


__all__ = [
    "Engine",
    "Finding",
    "Project",
    "ProjectLoader",
    "ProjectRule",
    "Report",
    "Rule",
    "Severity",
    "SourceModule",
    "all_project_rules",
    "all_rules",
    "analyze_project",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register",
    "register_project_rule",
    "write_baseline",
]
