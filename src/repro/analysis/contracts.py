"""Cross-module protocol contracts (the RC1xx series).

Where ``repro.analysis.rules`` checks local hygiene, these rules verify the
*protocols* the subsystems agree on:

* the pure-select / explicit-commit split of every arbiter
  (:class:`repro.qos.base.OutputArbiter`, :class:`repro.core.ssvc.SSVCCore`),
* the ``[0, positions)`` level range of
  :class:`repro.core.thermometer.ThermometerCode`,
* typed configuration parameters, so the ``mypy --strict`` gate on
  ``repro.core`` actually sees :class:`repro.config.SwitchConfig`'s
  validated types at every boundary.

They are ordinary engine rules (same registry, same suppression syntax) but
they subscribe to ``FunctionDef`` nodes and analyze whole function bodies.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Union

from .engine import ModuleContext, Rule, Severity, constant_int, dotted_name, register

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names that discharge a pending ``select()`` decision.
_DISCHARGE_METHODS = ("commit", "abandon")

#: Function names that *are* the pure selection phase of the protocol and
#: therefore must not commit (the caller owns the decision).
_PURE_SELECT_NAMES = frozenset({"select"})


def _own_nodes(func: _FunctionNode) -> List[ast.AST]:
    """All nodes of ``func``'s body, excluding nested function/class scopes."""
    collected: List[ast.AST] = []
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        collected.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return collected


def _is_arbiter_select_call(node: ast.Call) -> bool:
    """Match the arbiter protocol shape ``<receiver>.select(candidates, now)``.

    The two-positional-argument shape distinguishes arbitration selects
    from unrelated ``select`` methods (e.g. the sense-amp mux's
    ``select(level, gl_request=...)`` in the circuit model).
    """
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "select"
        and len(node.args) == 2
        and not node.keywords
    )


@register
class SelectCommitContract(Rule):
    """RC101: every ``select()`` call path must commit, abandon, or delegate.

    :meth:`SSVCCore.select` and :meth:`OutputArbiter.select` are pure —
    LRG order and auxVC counters only advance in ``commit()``. A caller
    that selects and never commits (nor explicitly abandons, nor returns
    the decision to *its* caller) silently freezes QoS state: flows keep
    winning without being charged, and the Fig. 4 bandwidth shares drift.

    Within one function body the contract is satisfied when, for each
    ``R.select(candidates, now)`` call, there is an ``R.commit(...)`` or
    ``R.abandon(...)`` call on the same receiver ``R``, or the selection
    result escapes through a ``return``. Functions themselves named
    ``select`` are the pure phase and are exempt.
    """

    id = "RC101"
    name = "select-without-commit"
    severity = Severity.ERROR
    description = "arbiter select() whose decision is never committed, abandoned, or returned"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name in _PURE_SELECT_NAMES:
            return
        own = _own_nodes(node)
        select_calls = [
            n for n in own if isinstance(n, ast.Call) and _is_arbiter_select_call(n)
        ]
        if not select_calls:
            return
        discharged = self._discharged_receivers(own)
        returned = self._returned_expressions(own)
        for call in select_calls:
            assert isinstance(call.func, ast.Attribute)
            receiver = ast.unparse(call.func.value)
            if receiver in discharged:
                continue
            if self._escapes_via_return(call, own, returned):
                continue
            ctx.report(
                self,
                call,
                f"{receiver}.select() in {node.name}() is never committed, "
                f"abandoned, or returned — QoS counters will not advance",
            )

    @staticmethod
    def _discharged_receivers(own: List[ast.AST]) -> Set[str]:
        receivers: Set[str] = set()
        for n in own:
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in _DISCHARGE_METHODS
            ):
                receivers.add(ast.unparse(n.func.value))
        return receivers

    @staticmethod
    def _returned_expressions(own: List[ast.AST]) -> List[ast.AST]:
        return [n.value for n in own if isinstance(n, ast.Return) and n.value is not None]

    @staticmethod
    def _escapes_via_return(
        call: ast.Call, own: List[ast.AST], returned: List[ast.AST]
    ) -> bool:
        # Direct delegation: the select call appears inside a return value.
        for value in returned:
            if any(n is call for n in ast.walk(value)):
                return True
        # Indirect delegation: names assigned from the select call are
        # mentioned in some return value.
        assigned: Set[str] = set()
        for n in own:
            if isinstance(n, ast.Assign) and any(sub is call for sub in ast.walk(n.value)):
                for target in n.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            assigned.add(name_node.id)
            if isinstance(n, (ast.AnnAssign, ast.AugAssign)) and n.value is not None:
                if any(sub is call for sub in ast.walk(n.value)) and isinstance(n.target, ast.Name):
                    assigned.add(n.target.id)
        if not assigned:
            return False
        for value in returned:
            for name_node in ast.walk(value):
                if isinstance(name_node, ast.Name) and name_node.id in assigned:
                    return True
        return False


@register
class ThermometerBoundsContract(Rule):
    """RC102: statically checkable ``ThermometerCode`` levels are in range.

    The register encodes levels ``[0, positions - 1]`` (paper Fig. 1a);
    :meth:`ThermometerCode.__post_init__` enforces this at runtime, but a
    constant violation at a construction site is a bug worth catching
    before any simulation runs. Flags constant ``level`` arguments that
    are negative or ``>= positions`` (when ``positions`` is also a
    constant), and non-positive constant ``positions``.
    """

    id = "RC102"
    name = "thermometer-bounds"
    severity = Severity.ERROR
    description = "ThermometerCode constructed with a constant level outside [0, positions)"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is None or name.split(".")[-1] != "ThermometerCode":
            return
        positions = self._argument(node, 0, "positions")
        level = self._argument(node, 1, "level")
        positions_value = constant_int(positions)
        level_value = constant_int(level)
        if positions_value is not None and positions_value < 1:
            ctx.report(self, node, f"ThermometerCode positions must be >= 1, got constant {positions_value}")
        if level_value is None:
            return
        if level_value < 0:
            ctx.report(self, node, f"ThermometerCode level must be >= 0, got constant {level_value}")
        elif positions_value is not None and level_value >= positions_value:
            ctx.report(
                self,
                node,
                f"ThermometerCode level {level_value} out of range [0, {positions_value - 1}]",
            )

    @staticmethod
    def _argument(node: ast.Call, index: int, keyword: str) -> Optional[ast.AST]:
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
        if len(node.args) > index:
            return node.args[index]
        return None


@register
class TypedConfigContract(Rule):
    """RC103: config-consuming public functions declare their config type.

    ``SwitchConfig``/``QoSConfig``/``GLPolicerConfig`` validate themselves
    in ``__post_init__`` — construction *is* validation. The remaining
    hole is a public function taking an untyped ``config`` parameter:
    mypy cannot prove a validated object flows in, and a raw dict would
    sail through until some attribute access fails mid-simulation. Any
    public function parameter named ``config``/``cfg`` (or ending in
    ``_config``/``_cfg``) must carry a type annotation.
    """

    id = "RC103"
    name = "untyped-config"
    severity = Severity.ERROR
    description = "public function takes an unannotated config parameter"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name.startswith("_") and node.name != "__init__":
            return
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if not self._is_config_name(arg.arg):
                continue
            if arg.annotation is None:
                ctx.report(
                    self,
                    arg,
                    f"parameter {arg.arg!r} of public {node.name}() needs a config type "
                    f"annotation so mypy --strict can verify validated configs flow in",
                )

    @staticmethod
    def _is_config_name(name: str) -> bool:
        return name in ("config", "cfg") or name.endswith("_config") or name.endswith("_cfg")
