"""Grandfathered-findings baseline for ``repro-lint --project``.

A whole-program analyzer adopted mid-project inevitably fires on code
that predates it. Rather than suppressing those findings inline (noise
in the source, and indistinguishable from deliberate waivers) or fixing
everything in one PR (unreviewable), CI compares the current findings
against a committed baseline file and fails only on *regressions*: a
finding is allowed iff an identical ``(rule_id, path, message)`` entry
exists in the baseline, with multiset semantics so two identical new
findings against one baselined entry still fail.

Baselined findings stay visible in the report (marked ``baselined``)
but do not affect the exit code; ``repro-lint --write-baseline``
regenerates the file from the current open findings so shrinking it is
a one-command operation once a grandfathered issue is fixed.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import ConfigError
from .engine import Finding, Report

_TOOL = "reprolint-baseline"
_VERSION = 1

#: The identity under which a finding matches a baseline entry. Line
#: numbers are deliberately excluded: unrelated edits above a
#: grandfathered finding must not un-baseline it.
_Key = Tuple[str, str, str]


def _finding_key(finding: Finding) -> _Key:
    return (finding.rule_id, finding.path, finding.message)


def load_baseline(path: Union[str, Path]) -> Counter:
    """Load a baseline file into a multiset of finding keys."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise ConfigError(f"baseline file not found: {path}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"baseline file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("tool") != _TOOL:
        raise ConfigError(f"baseline file {path} is not a {_TOOL} file")
    if payload.get("version") != _VERSION:
        raise ConfigError(
            f"baseline file {path} has unsupported version "
            f"{payload.get('version')!r} (expected {_VERSION})"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ConfigError(f"baseline file {path} has no 'entries' list")
    keys: Counter = Counter()
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(field), str)
            for field in ("rule_id", "path", "message")
        ):
            raise ConfigError(
                f"baseline file {path} entry {i} must have string "
                "'rule_id', 'path', and 'message' fields"
            )
        keys[(entry["rule_id"], entry["path"], entry["message"])] += 1
    return keys


def apply_baseline(report: Report, baseline: Counter) -> int:
    """Mark baselined findings in-place; return the count of *stale*
    baseline entries (present in the file, no longer found — a nudge to
    regenerate the baseline, never a failure)."""
    budget = Counter(baseline)
    for finding in report.findings:
        if finding.suppressed:
            continue
        key = _finding_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            # Finding is a frozen dataclass; baselining is the one
            # post-construction state transition it supports.
            object.__setattr__(finding, "baselined", True)
    return sum(budget.values())


def write_baseline(report: Report, path: Union[str, Path]) -> int:
    """Write the current open findings as the new baseline; returns the
    entry count. Deterministic ordering so the file diffs cleanly."""
    entries: List[Dict[str, str]] = [
        {
            "rule_id": finding.rule_id,
            "path": finding.path,
            "message": finding.message,
        }
        for finding in sorted(
            report.open_findings,
            key=lambda f: (f.path, f.rule_id, f.line, f.message),
        )
    ]
    payload = {"tool": _TOOL, "version": _VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return len(entries)
