"""Whole-program rules (the RP2xx series).

Each rule here verifies an invariant that spans modules — exactly the
class of bug the per-file engine structurally cannot see (the
process-global packet-id counter fixed in PR 1, the swallowed worker
exceptions found by RL011, the journal-vs-kernel flush discipline from
PRs 2–5 all crossed at least one module boundary).

The rules lean on :class:`repro.analysis.project.Project` for symbol and
call resolution and treat every *unresolved* edge as unknown, never as a
violation: an approximate analyzer that guesses produces suppression
noise, one that abstains produces trust.

Rule summary (details in ``docs/STATIC_ANALYSIS.md``):

* **RP201 seed-provenance** — every RNG construction must be reachable
  only through call paths that thread an explicit seed. The analyzer
  taints each function's seed expressions back to parameters and flags
  (a) call sites that leave an optional seed parameter ``None``,
  (b) explicit ``None`` seeds, (c) RNG seeds derived from anything that
  is not a parameter, a seeded attribute, or a constant, and
  (d) ``SeedSequence()`` drawn from OS entropy.
* **RP202 fork-safety** — any callable submitted to
  ``SweepExecutor.map``/``run`` must be picklable (no lambdas, no nested
  functions) and must transitively avoid module-level mutable state,
  ``global`` writes, and module-level OS resources (open file handles).
* **RP203 exception-contract** — everything raised in the project must
  derive from the ``ReproError`` taxonomy or be an idiomatic builtin;
  re-wrapping inside an ``except`` must keep the causal chain
  (``from exc``), and severing it (``from None``) on a taxonomy error
  is flagged.
* **RP204 probe-flush discipline** — a kernel hot loop that batches
  counters locally (the ``resolve_hooks`` pattern) must flush them on
  every exit path: a bound count hook that is never called, or a
  ``return`` between the accumulation loop and the flush block, loses
  observability exactly on the runs one is debugging.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import Severity, dotted_name
from .project import (
    CallSite,
    FunctionInfo,
    ModuleInfo,
    MUTABLE_KIND,
    Project,
    ProjectContext,
    ProjectRule,
    RESOURCE_KIND,
    register_project_rule,
)

# --------------------------------------------------------------- taint utils


def _mentions(expr: ast.AST, names: Set[str]) -> bool:
    """Does ``expr`` read any of ``names``?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in names:
            return True
    return False


_SEEDISH_MARKERS = ("seed", "rng", "entropy", "sequence")


def _is_seedish_attr(node: ast.AST) -> bool:
    """``self.seed`` / ``self._rng`` style reads of seeded instance state."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
        and any(marker in node.attr.lower() for marker in _SEEDISH_MARKERS)
    )


def _mentions_seedish_attr(expr: ast.AST) -> bool:
    return any(_is_seedish_attr(node) for node in ast.walk(expr))


def _seedish_call(expr: ast.AST) -> bool:
    """Calls whose name marks derived seed material (``spawn``, ``seed``...)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and any(
                marker in name.lower() for marker in ("spawn", "seed", "entropy")
            ):
                return True
    return False


def _own_statements(fn_node: ast.AST) -> List[ast.AST]:
    """All nodes of the function body, excluding nested def/class scopes."""
    assert isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef))
    collected: List[ast.AST] = []
    stack: List[ast.AST] = list(fn_node.body)
    while stack:
        node = stack.pop()
        collected.append(node)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return collected


def _local_taint(fn: FunctionInfo, initial: Set[str]) -> Set[str]:
    """Fixpoint of names derived (via assignment / loop targets) from
    ``initial`` names or seeded instance attributes inside ``fn``."""
    tainted = set(initial)
    own = _own_statements(fn.fn_node)

    def value_tainted(value: ast.AST) -> bool:
        return (
            _mentions(value, tainted)
            or _mentions_seedish_attr(value)
            or _seedish_call(value)
        )

    def add_targets(target: ast.AST) -> bool:
        changed = False
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and node.id not in tainted:
                tainted.add(node.id)
                changed = True
        return changed

    changed = True
    while changed:
        changed = False
        for node in own:
            if isinstance(node, ast.Assign) and value_tainted(node.value):
                for target in node.targets:
                    changed |= add_targets(target)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if value_tainted(node.value):
                    changed |= add_targets(node.target)
            elif isinstance(node, ast.AugAssign) and value_tainted(node.value):
                changed |= add_targets(node.target)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and value_tainted(node.iter):
                changed |= add_targets(node.target)
            elif isinstance(node, ast.comprehension) and value_tainted(node.iter):
                changed |= add_targets(node.target)
    return tainted


# ------------------------------------------------------------- RP201 helpers

#: RNG constructor terminal names -> (positional index, keyword) of the
#: seed argument.
_RNG_CTORS: Dict[str, Tuple[int, str]] = {
    "default_rng": (0, "seed"),
    "RandomState": (0, "seed"),
    "Random": (0, "x"),
    "SeedSequence": (0, "entropy"),
}


def _rng_seed_expr(call: ast.Call) -> Optional[Tuple[str, Optional[ast.AST]]]:
    """``(ctor_name, seed_expr)`` when ``call`` constructs an RNG.

    ``seed_expr`` is None when the construction passes no seed at all.
    Matches both the canonical spellings (``np.random.default_rng``) and
    bare imported names (``default_rng(...)``); misidentifying an
    unrelated local ``Random`` class costs a spurious provenance check,
    which the constant/taint analysis then almost always satisfies.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    terminal = name.rpartition(".")[2]
    spec = _RNG_CTORS.get(terminal)
    if spec is None:
        return None
    index, keyword = spec
    for kw in call.keywords:
        if kw.arg == keyword:
            return terminal, kw.value
    if len(call.args) > index:
        return terminal, call.args[index]
    return terminal, None


def _has_none_guard(fn: FunctionInfo, param: str) -> bool:
    """``if param is None: raise ...`` or a rebinding of ``param`` guards
    the optional-seed pattern at runtime — the param is then never a sink."""
    for node in ast.walk(fn.fn_node):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == param
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.Eq))
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == param for t in sub.targets
            ):
                return True
            if (
                isinstance(sub, ast.AugAssign)
                and isinstance(sub.target, ast.Name)
                and sub.target.id == param
            ):
                return True
    return False


def _map_call_arguments(
    callee: FunctionInfo, call: ast.Call
) -> Dict[str, Optional[ast.AST]]:
    """Parameter name -> supplied argument expression (None = omitted).

    ``**kwargs`` forwarding maps nothing (unknown, so never a finding).
    """
    params = callee.params
    supplied: Dict[str, Optional[ast.AST]] = {p.arg: None for p in params}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            return {}  # *args forwarding: positions unknowable
        if i < len(params):
            supplied[params[i].arg] = arg
    for kw in call.keywords:
        if kw.arg is None:
            return {}  # **kwargs forwarding
        if kw.arg in supplied:
            supplied[kw.arg] = kw.value
    return supplied


@register_project_rule
class SeedProvenanceRule(ProjectRule):
    """RP201: every RNG construction must thread an explicit seed.

    The per-file RL001 catches a literally unseeded ``default_rng()``;
    this rule catches the cross-module version, where the construction
    *looks* seeded (``default_rng(seed)``) but the seed is an optional
    parameter some caller three modules away leaves as ``None``. The
    taint pass marks each function parameter that flows into an RNG seed
    position (transitively through project calls); any call site that
    omits such a parameter (when its default is ``None``) or passes an
    explicit ``None`` is a path from the caller to an unseeded RNG.
    Constructions whose seed derives from neither a parameter, a seeded
    attribute (``self.seed``), a seed-deriving call (``.spawn``), nor a
    constant are flagged at the construction site, as is
    ``SeedSequence()`` drawn from OS entropy.
    """

    id = "RP201"
    name = "seed-provenance"
    severity = Severity.ERROR
    description = "call path reaches an RNG whose seed is not explicitly threaded"

    def check(self, project: Project, ctx: ProjectContext) -> None:
        project.call_graph()  # populates CallSite.resolved
        #: (function qualname, param name) -> representative RNG site text
        sinks: Dict[Tuple[str, str], str] = {}
        for fn in project.functions():
            module = project.modules[fn.module]
            param_names = [p.arg for p in fn.params]
            for site in fn.calls:
                rng = _rng_seed_expr(site.node)
                if rng is None:
                    continue
                ctor, seed_expr = rng
                if seed_expr is None:
                    if ctor == "SeedSequence":
                        ctx.report(
                            self, module, site.node,
                            "SeedSequence() without entropy draws from the OS; "
                            "pass the master seed explicitly",
                        )
                    continue  # other no-arg constructions are RL001's finding
                if isinstance(seed_expr, ast.Constant):
                    continue  # literal seed (None literals are RL001's)
                sink_params = [
                    p for p in param_names
                    if _mentions(seed_expr, _local_taint(fn, {p}))
                ]
                if sink_params:
                    for p in sink_params:
                        if not _has_none_guard(fn, p):
                            sinks[(fn.qualname, p)] = (
                                f"{ctor}(...) at {module.path}:{site.node.lineno}"
                            )
                    continue
                if (
                    _mentions_seedish_attr(seed_expr)
                    or _seedish_call(seed_expr)
                    or _mentions(seed_expr, _local_taint(fn, set()))
                ):
                    continue  # derived from seeded attrs / spawn chains
                ctx.report(
                    self, module, site.node,
                    f"{ctor}(...) seed does not derive from a parameter, a "
                    "seeded attribute, or a constant — provenance unknown",
                )
        self._propagate_and_flag(project, ctx, sinks)

    def _propagate_and_flag(
        self,
        project: Project,
        ctx: ProjectContext,
        sinks: Dict[Tuple[str, str], str],
    ) -> None:
        # Fixpoint: a caller param that flows into a sink param is a sink.
        changed = True
        while changed:
            changed = False
            for fn in project.functions():
                param_names = {p.arg for p in fn.params}
                for site in fn.calls:
                    callee = (
                        project.function(site.resolved)
                        if site.resolved is not None
                        else None
                    )
                    if callee is None:
                        continue
                    supplied = _map_call_arguments(callee, site.node)
                    for (owner, param), origin in list(sinks.items()):
                        if owner != callee.qualname or param not in supplied:
                            continue
                        arg = supplied[param]
                        if arg is None or not isinstance(arg, ast.AST):
                            continue
                        for p in param_names:
                            key = (fn.qualname, p)
                            if key in sinks or _has_none_guard(fn, p):
                                continue
                            if _mentions(arg, _local_taint(fn, {p})):
                                sinks[key] = origin
                                changed = True
        # Flag the violating call sites.
        for fn in project.functions():
            module = project.modules[fn.module]
            for site in fn.calls:
                callee = (
                    project.function(site.resolved)
                    if site.resolved is not None
                    else None
                )
                if callee is None:
                    continue
                supplied = _map_call_arguments(callee, site.node)
                for (owner, param), origin in sinks.items():
                    if owner != callee.qualname or param not in supplied:
                        continue
                    arg = supplied[param]
                    if arg is None:
                        has_default, default = callee.param_default(param)
                        if (
                            has_default
                            and isinstance(default, ast.Constant)
                            and default.value is None
                        ):
                            ctx.report(
                                self, module, site.node,
                                f"call to {callee.name}() omits seed parameter "
                                f"{param!r} (defaults to None) — unseeded "
                                f"{origin} becomes reachable",
                            )
                    elif isinstance(arg, ast.Constant) and arg.value is None:
                        ctx.report(
                            self, module, site.node,
                            f"call to {callee.name}() passes {param}=None — "
                            f"unseeded {origin} becomes reachable",
                        )


# ------------------------------------------------------------- RP202 helpers

_MUTATING_METHODS = frozenset(
    {"append", "appendleft", "extend", "insert", "add", "update", "remove",
     "discard", "pop", "popleft", "popitem", "clear", "setdefault",
     "sort", "reverse", "write", "writelines"}
)

_SUBMIT_METHODS = ("map", "run")
_EXECUTOR_CLASS = "SweepExecutor"


def _locally_bound_names(fn: FunctionInfo) -> Set[str]:
    """Names bound inside the function (params, assignments, loop/with
    targets, imports) — these shadow module-level globals."""
    bound = {p.arg for p in fn.params}

    def add_binding_targets(target: ast.AST) -> None:
        # Only true rebindings shadow a global: ``x = ...`` / destructuring.
        # ``x[k] = ...`` and ``x.attr = ...`` mutate the existing object and
        # must NOT mark ``x`` as local.
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_binding_targets(element)
        elif isinstance(target, ast.Starred):
            add_binding_targets(target.value)

    for node in _own_statements(fn.fn_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                add_binding_targets(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            add_binding_targets(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            add_binding_targets(node.target)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
    return bound


@register_project_rule
class ForkSafetyRule(ProjectRule):
    """RP202: sweep workers must be fork- and pickle-safe.

    ``SweepExecutor`` forks workers into separate processes; the
    serial == parallel determinism contract (docs/PARALLELISM.md) holds
    only if a worker's behaviour is a pure function of its
    :class:`SweepPoint`. This rule resolves every function submitted to
    ``SweepExecutor.map``/``run`` and walks its transitive project
    callees looking for state that does not survive (or silently forks
    with) the process boundary: lambdas and nested functions (not
    picklable by qualified name), ``global`` writes, mutation of
    module-level containers, and module-level OS resources such as open
    file handles.
    """

    id = "RP202"
    name = "fork-unsafe-worker"
    severity = Severity.ERROR
    description = "sweep worker (or its callees) relies on fork-unsafe module state"

    def check(self, project: Project, ctx: ProjectContext) -> None:
        project.call_graph()
        for fn in project.functions():
            module = project.modules[fn.module]
            local_types = project.infer_local_types(fn)
            for site in fn.calls:
                worker = self._submitted_worker(site)
                if worker is None:
                    continue
                if not self._is_executor_receiver(site, local_types):
                    continue
                self._check_worker(project, ctx, module, fn, site, worker)

    @staticmethod
    def _submitted_worker(site: CallSite) -> Optional[ast.AST]:
        text = site.callee_text
        if text is None or "." not in text:
            return None
        if text.rpartition(".")[2] not in _SUBMIT_METHODS:
            return None
        if not site.node.args:
            return None
        return site.node.args[0]

    @staticmethod
    def _is_executor_receiver(
        site: CallSite, local_types: Dict[str, str]
    ) -> bool:
        text = site.callee_text
        assert text is not None
        receiver = text.rpartition(".")[0]
        inferred = local_types.get(receiver)
        return inferred is not None and inferred.endswith(f":{_EXECUTOR_CLASS}")

    def _check_worker(
        self,
        project: Project,
        ctx: ProjectContext,
        module: ModuleInfo,
        caller: FunctionInfo,
        site: CallSite,
        worker: ast.AST,
    ) -> None:
        if isinstance(worker, ast.Lambda):
            ctx.report(
                self, module, worker,
                "lambda submitted as a sweep worker is not picklable; "
                "define a module-level function",
            )
            return
        roots = self._worker_roots(project, module, caller, site, worker)
        if roots is None:
            return  # unresolvable worker: unknown, not a violation
        for root in roots:
            if root.nested:
                ctx.report(
                    self, module, worker,
                    f"sweep worker {root.name!r} is a nested function — not "
                    "picklable by qualified name; move it to module level",
                )
                continue
            self._check_reachable_state(project, ctx, site, root)

    def _worker_roots(
        self,
        project: Project,
        module: ModuleInfo,
        caller: FunctionInfo,
        site: CallSite,
        worker: ast.AST,
    ) -> Optional[List[FunctionInfo]]:
        text = dotted_name(worker)
        if text is not None:
            # Nested function defined in the submitting function?
            nested_qualname = f"{caller.qualname}.<locals>.{text}"
            nested = project.function(nested_qualname)
            if nested is not None:
                return [nested]
            resolved = project.resolve(module, text)
            if resolved is None:
                return None
            if resolved.kind == "function":
                fn = project.function(resolved.qualname)
                return [fn] if fn is not None else None
            if resolved.kind == "class":
                cls = project.class_info(resolved.qualname)
                if cls is not None and "__call__" in cls.methods:
                    return [cls.methods["__call__"]]
                return None
            return None
        if isinstance(worker, ast.Call):
            # ``executor.map(WorkerAdapter(fn), points)``: the instance's
            # __call__ runs in the child.
            ctor = project.resolve(module, dotted_name(worker.func))
            if ctor is not None and ctor.kind == "class":
                cls = project.class_info(ctor.qualname)
                if cls is not None and "__call__" in cls.methods:
                    return [cls.methods["__call__"]]
        return None

    def _check_reachable_state(
        self,
        project: Project,
        ctx: ProjectContext,
        submit_site: CallSite,
        root: FunctionInfo,
    ) -> None:
        reachable = [root.qualname, *sorted(project.transitive_callees(root.qualname))]
        reported: Set[Tuple[str, str]] = set()
        for qualname in reachable:
            fn = project.function(qualname)
            if fn is None:
                continue
            fn_module = project.modules[fn.module]
            bound = _locally_bound_names(fn)
            for node in _own_statements(fn.fn_node):
                self._check_node(
                    ctx, fn_module, fn, root, node, bound, reported
                )

    def _check_node(
        self,
        ctx: ProjectContext,
        fn_module: ModuleInfo,
        fn: FunctionInfo,
        root: FunctionInfo,
        node: ast.AST,
        bound: Set[str],
        reported: Set[Tuple[str, str]],
    ) -> None:
        via = (
            f" (reachable from sweep worker {root.name!r})"
            if fn.qualname != root.qualname
            else f" (sweep worker {root.name!r})"
        )
        if isinstance(node, ast.Global):
            key = (fn.qualname, "global:" + ",".join(node.names))
            if key not in reported:
                reported.add(key)
                ctx.report(
                    self, fn_module, node,
                    f"{fn.name}() writes module-level state via 'global "
                    f"{', '.join(node.names)}'{via}; worker results must be "
                    "a pure function of the sweep point",
                )
            return
        risky = fn_module.risky_globals
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            target = node.func.value
            if (
                isinstance(target, ast.Name)
                and node.func.attr in _MUTATING_METHODS
                and target.id not in bound
                and risky.get(target.id) == MUTABLE_KIND
            ):
                key = (fn.qualname, target.id)
                if key not in reported:
                    reported.add(key)
                    ctx.report(
                        self, fn_module, node,
                        f"{fn.name}() mutates module-level {target.id!r} via "
                        f".{node.func.attr}(){via}; per-process copies diverge "
                        "silently after fork",
                    )
                return
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id not in bound
                    and risky.get(target.value.id) == MUTABLE_KIND
                ):
                    key = (fn.qualname, target.value.id)
                    if key not in reported:
                        reported.add(key)
                        ctx.report(
                            self, fn_module, node,
                            f"{fn.name}() assigns into module-level "
                            f"{target.value.id!r}{via}; per-process copies "
                            "diverge silently after fork",
                        )
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in bound and risky.get(node.id) == RESOURCE_KIND:
                key = (fn.qualname, node.id)
                if key not in reported:
                    reported.add(key)
                    ctx.report(
                        self, fn_module, node,
                        f"{fn.name}() uses module-level file handle "
                        f"{node.id!r}{via}; open handles must not cross the "
                        "fork boundary",
                    )


# ------------------------------------------------------------- RP203 helpers

#: Builtins whose raising is idiomatic Python the taxonomy deliberately
#: lets propagate (``repro.errors`` docstring: programming errors are not
#: wrapped). Everything else must derive from ``ReproError``.
_ALLOWED_BUILTIN_RAISES = frozenset(
    {"ValueError", "TypeError", "KeyError", "IndexError", "AttributeError",
     "NotImplementedError", "AssertionError", "StopIteration", "OSError",
     "FileNotFoundError", "TimeoutError", "KeyboardInterrupt", "SystemExit"}
)

_TAXONOMY_ROOT = "ReproError"

_BUILTIN_EXCEPTION_BASES = frozenset(
    {"Exception", "BaseException", *_ALLOWED_BUILTIN_RAISES, "RuntimeError",
     "ArithmeticError", "LookupError"}
)


@register_project_rule
class ExceptionContractRule(ProjectRule):
    """RP203: raised exceptions conform to the ``ReproError`` taxonomy.

    Callers are promised (``repro.errors``) that one ``except
    ReproError`` catches every library failure while programming errors
    propagate. A ``raise RuntimeError`` three modules below a public
    entry point silently breaks that promise — and no single-file rule
    can know whether ``SomeError`` imported from elsewhere is taxonomy or
    not. This rule resolves each raised class through the project's
    import and class tables: project classes must have ``ReproError`` in
    their (cross-module) base chain, builtins must be on the idiomatic
    allow-list. Inside ``except`` handlers it additionally requires the
    causal chain to survive re-wrapping: a taxonomy raise without
    ``from exc`` (when the handler binds one) or with an explicit
    ``from None`` erases the evidence the resilience layer journals.
    """

    id = "RP203"
    name = "exception-contract"
    severity = Severity.ERROR
    description = "raise outside the ReproError taxonomy, or re-wrap dropping the cause"

    def check(self, project: Project, ctx: ProjectContext) -> None:
        for fn in project.functions():
            module = project.modules[fn.module]
            own = _own_statements(fn.fn_node)
            handlers = [n for n in own if isinstance(n, ast.ExceptHandler)]
            for node in own:
                if isinstance(node, ast.Raise):
                    self._check_raise(project, ctx, module, fn, node, handlers)

    # ------------------------------------------------------------ taxonomy

    def _raised_class_name(self, node: ast.Raise) -> Optional[str]:
        exc = node.exc
        if exc is None:
            return None  # bare re-raise: always fine
        if isinstance(exc, ast.Call):
            return dotted_name(exc.func)
        return dotted_name(exc)

    def _in_taxonomy(self, project: Project, module: ModuleInfo, name: str) -> Optional[bool]:
        """True/False when decidable; None when the class is unresolvable."""
        terminal = name.rpartition(".")[2]
        if terminal == _TAXONOMY_ROOT:
            return True
        resolved = project.resolve(module, name)
        if resolved is not None and resolved.kind == "class":
            cls = project.class_info(resolved.qualname)
            if cls is None:
                return None
            for entry in project.base_chain(cls):
                if entry.rpartition(".")[2].rpartition(":")[2] == _TAXONOMY_ROOT:
                    return True
            return False
        binding = module.imports.get(name.partition(".")[0])
        if binding is not None:
            # Imported from outside the project: taxonomy iff the absolute
            # path says so; otherwise undecidable.
            return True if _TAXONOMY_ROOT in binding.target else None
        if terminal in _BUILTIN_EXCEPTION_BASES or terminal in _ALLOWED_BUILTIN_RAISES:
            return False  # a builtin, decidably outside the taxonomy
        return None

    def _check_raise(
        self,
        project: Project,
        ctx: ProjectContext,
        module: ModuleInfo,
        fn: FunctionInfo,
        node: ast.Raise,
        handlers: Sequence[ast.AST],
    ) -> None:
        name = self._raised_class_name(node)
        if name is None:
            return
        terminal = name.rpartition(".")[2]
        in_taxonomy = self._in_taxonomy(project, module, name)
        if in_taxonomy is False:
            if terminal not in _ALLOWED_BUILTIN_RAISES:
                ctx.report(
                    self, module, node,
                    f"raise {terminal}(...) in {fn.name}() is outside the "
                    f"{_TAXONOMY_ROOT} taxonomy; callers catching ReproError "
                    "will miss it — raise a taxonomy error instead",
                )
                return
        self._check_rewrap(ctx, module, fn, node, handlers, in_taxonomy)

    def _check_rewrap(
        self,
        ctx: ProjectContext,
        module: ModuleInfo,
        fn: FunctionInfo,
        node: ast.Raise,
        handlers: Sequence[ast.AST],
        in_taxonomy: Optional[bool],
    ) -> None:
        if in_taxonomy is not True:
            return
        handler = self._enclosing_handler(node, handlers)
        if handler is None:
            return
        assert isinstance(handler, ast.ExceptHandler)
        if isinstance(node.cause, ast.Constant) and node.cause.value is None:
            # Severing the chain is acceptable when converting a *specific*
            # info-less builtin (``except KeyError: raise ConfigError(...)
            # from None`` — the repo's lookup idiom); severing a broad or
            # taxonomy catch erases real evidence.
            if not self._catches_only_specific_builtins(handler):
                ctx.report(
                    self, module, node,
                    f"re-wrap in {fn.name}() severs a broad failure context "
                    "with 'from None'; keep the chain ('from exc') so the "
                    "original error stays diagnosable",
                )
            return
        if node.cause is not None:
            return
        bound = handler.name
        if bound is None:
            return  # nothing to chain from; implicit __context__ stands
        if node.exc is not None and _mentions(node.exc, {bound}):
            return  # original error is embedded in the new one
        ctx.report(
            self, module, node,
            f"re-wrap in {fn.name}() drops the caught exception "
            f"{bound!r}; add 'from {bound}' (or embed it) so the cause "
            "chain survives",
        )

    @staticmethod
    def _catches_only_specific_builtins(handler: ast.ExceptHandler) -> bool:
        """True when the handler catches only named, non-broad builtin
        exceptions (KeyError, ValueError, ...)."""
        caught = handler.type
        if caught is None:
            return False  # bare except is the broadest catch of all
        types = list(caught.elts) if isinstance(caught, ast.Tuple) else [caught]
        for entry in types:
            name = dotted_name(entry)
            if name is None:
                return False
            terminal = name.rpartition(".")[2]
            if terminal in ("Exception", "BaseException"):
                return False
            if terminal not in _ALLOWED_BUILTIN_RAISES:
                return False  # taxonomy or unknown: keep the chain
        return True

    @staticmethod
    def _enclosing_handler(
        node: ast.Raise, handlers: Sequence[ast.AST]
    ) -> Optional[ast.AST]:
        for handler in handlers:
            for sub in ast.walk(handler):
                if sub is node:
                    return handler
        return None


# ------------------------------------------------------------- RP204 helpers


@register_project_rule
class ProbeFlushRule(ProjectRule):
    """RP204: locally batched probe counters flush on every exit path.

    Kernel hot loops follow the pattern blessed by ``repro.obs``:
    resolve the probe hooks once (``resolve_hooks``), accumulate plain
    local integers inside the loop, and flush them through the count
    hook after the loop — any other shape either pays per-wake hook
    dispatch or silently loses counters. This rule checks the two ways
    the pattern decays: a function that binds the count hook and batches
    counters but never flushes at all, and an early ``return`` between
    the first accumulation and the flush block (exactly what a
    fault/cancel path bolted onto a kernel tends to introduce).
    """

    id = "RP204"
    name = "probe-flush"
    severity = Severity.ERROR
    description = "kernel batches probe counters but misses a flush on some exit path"

    def check(self, project: Project, ctx: ProjectContext) -> None:
        for fn in project.functions():
            module = project.modules[fn.module]
            if not self._resolves_hooks(fn):
                continue
            counters = self._batched_counters(fn)
            if not counters:
                continue
            flush_stmts = self._flush_statements(fn)
            if not flush_stmts:
                ctx.report(
                    self, module, fn.fn_node,
                    f"{fn.name}() batches counters "
                    f"({', '.join(sorted(counters))}) and resolves probe "
                    "hooks but never flushes them — the probe sees zeros",
                )
                continue
            first_increment = min(line for _, line in counters.items())
            first_flush = min(stmt.lineno for stmt in flush_stmts)
            for node in _own_statements(fn.fn_node):
                if not isinstance(node, ast.Return):
                    continue
                if any(
                    node in set(ast.walk(stmt)) for stmt in flush_stmts
                ):
                    continue
                if first_increment < node.lineno < first_flush:
                    ctx.report(
                        self, module, node,
                        f"return in {fn.name}() exits before the probe flush "
                        f"at line {first_flush}; batched counters "
                        f"({', '.join(sorted(counters))}) are lost on this "
                        "path",
                    )

    @staticmethod
    def _resolves_hooks(fn: FunctionInfo) -> bool:
        for site in fn.calls:
            text = site.callee_text
            if text is not None and text.rpartition(".")[2] == "resolve_hooks":
                return True
        return False

    @staticmethod
    def _batched_counters(fn: FunctionInfo) -> Dict[str, int]:
        """Local scalar counters incremented inside a loop -> first
        increment line. A counter is a name assigned a constant int and
        ``+=``-incremented within a ``for``/``while`` body."""
        own = _own_statements(fn.fn_node)
        initialized: Set[str] = set()
        for node in own:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
                if isinstance(node.value.value, int) and not isinstance(node.value.value, bool):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            initialized.add(target.id)
        counters: Dict[str, int] = {}
        for node in own:
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.AugAssign)
                    and isinstance(sub.op, ast.Add)
                    and isinstance(sub.target, ast.Name)
                    and sub.target.id in initialized
                ):
                    name = sub.target.id
                    if name not in counters or sub.lineno < counters[name]:
                        counters[name] = sub.lineno
        return counters

    def _flush_statements(self, fn: FunctionInfo) -> List[ast.stmt]:
        """Top-level statements of the function containing a count-hook
        call (``count_hook(...)``, ``hooks.count(...)``, ``probe.count``)."""
        aliases = self._count_hook_aliases(fn)
        out: List[ast.stmt] = []
        for stmt in fn.fn_node.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                text = dotted_name(sub.func)
                if text is None:
                    continue
                if text in aliases or text.rpartition(".")[2] == "count":
                    out.append(stmt)
                    break
        return out

    @staticmethod
    def _count_hook_aliases(fn: FunctionInfo) -> Set[str]:
        aliases: Set[str] = set()
        for node in _own_statements(fn.fn_node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "count"
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases
