"""Simulator-specific AST rules (the RL1xx series).

Each rule encodes an invariant the paper's guarantees depend on. The
guarantees in question: SSVC bandwidth adherence (paper Fig. 4) requires
bit-identical replay of arbitration decisions, and the GL worst-case bound
(Eq. 1) is only checkable against a deterministic simulator. Hence the
recurring theme below: nothing in the arbitration path may depend on
global RNG state, wall-clock time, float round-off, or unordered
container iteration.

Rules are registered in id order; ``repro-lint --list-rules`` prints this
module's docstrings as the authoritative rule catalogue (see
``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

import ast

from .engine import ModuleContext, Rule, Severity, dotted_name, register

#: Functions on the stdlib ``random`` module that consume the *global*
#: (hidden, process-wide) Mersenne Twister state.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "sample",
        "shuffle", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "seed", "getrandbits",
    }
)

#: Legacy ``numpy.random.*`` module-level samplers backed by the global
#: RandomState (as opposed to an injected ``Generator``).
_GLOBAL_NUMPY_FNS = frozenset(
    {
        "random", "rand", "randn", "randint", "random_sample", "choice",
        "shuffle", "permutation", "uniform", "normal", "poisson",
        "exponential", "binomial", "geometric", "seed",
    }
)

_NUMPY_ALIASES = ("numpy.random", "np.random")

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)


@register
class UnseededRngRule(Rule):
    """RL001: every random draw must come from an injected, seeded generator.

    Flags any use of the stdlib ``random`` module's global state
    (``random.random()``, ``random.shuffle()``, ...), ``random.Random()``
    constructed without a seed, ``numpy.random.default_rng()`` /
    ``RandomState()`` without a seed, and the legacy global
    ``numpy.random.<sampler>()`` functions. Seeded construction
    (``default_rng(seed)``, ``Random(42)``) and drawing from an injected
    ``Generator`` object are fine — the simulator's convention is
    ``np.random.SeedSequence(master).spawn(...)`` per flow.
    """

    id = "RL001"
    name = "unseeded-rng"
    severity = Severity.ERROR
    description = "RNG draw from global or unseeded state breaks seeded determinism"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is None:
            return
        unseeded = not node.args and not node.keywords
        head, _, tail = name.rpartition(".")
        if head == "random" and tail in _GLOBAL_RANDOM_FNS:
            ctx.report(self, node, f"{name}() draws from the global random state; inject a seeded Random/Generator instead")
        elif name in ("random.Random", "Random") and unseeded:
            ctx.report(self, node, f"{name}() without a seed is nondeterministic; pass an explicit seed")
        elif head in _NUMPY_ALIASES and tail in ("default_rng", "RandomState"):
            if unseeded or (len(node.args) == 1 and isinstance(node.args[0], ast.Constant) and node.args[0].value is None):
                ctx.report(self, node, f"{name}() without a seed is nondeterministic; pass an explicit seed or SeedSequence")
        elif head in _NUMPY_ALIASES and tail in _GLOBAL_NUMPY_FNS:
            ctx.report(self, node, f"{name}() uses numpy's global RandomState; use an injected Generator")


@register
class WallClockRule(Rule):
    """RL002: no wall-clock reads inside guarded simulator packages.

    ``time.time()``, ``perf_counter()``, ``datetime.now()`` and friends
    make behavior depend on the host machine. They are fine in benchmarks
    and the experiment harness; inside ``repro.{core,switch,qos,
    multiswitch}`` all time is the simulated cycle counter ``now``.
    """

    id = "RL002"
    name = "wall-clock"
    severity = Severity.ERROR
    description = "wall-clock read inside a determinism-guarded package"
    node_types = (ast.Call,)
    guarded_only = True

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            ctx.report(self, node, f"{name}() reads the wall clock; simulator code must use the cycle counter")


@register
class FloatEqualityRule(Rule):
    """RL003: no ``==``/``!=`` against float values.

    auxVC counters, credits, and Vticks are floats accumulated over
    millions of cycles; exact equality against them is round-off roulette.
    Flags comparisons where an operand is a float literal, a ``float()``
    cast, or a true-division expression. Use ``math.isclose``, an integer
    representation, or an ordering comparison instead.
    """

    id = "RL003"
    name = "float-equality"
    severity = Severity.ERROR
    description = "exact ==/!= comparison against a float expression"
    node_types = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if self._is_floatish(side):
                    ctx.report(self, node, "exact float comparison; use math.isclose or integer units")
                    return

    @staticmethod
    def _is_floatish(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.Call) and dotted_name(node.func) == "float":
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        return False


@register
class MutableDefaultRule(Rule):
    """RL004: no mutable default arguments.

    A ``def f(history=[])`` default is shared across *all* calls — per-run
    state leaks between simulations and between repeats of the same
    experiment. Use ``None`` plus an in-body default, or
    ``dataclasses.field(default_factory=...)``.
    """

    id = "RL004"
    name = "mutable-default"
    severity = Severity.ERROR
    description = "mutable default argument shared across calls"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.report(
                    self,
                    default,
                    f"mutable default argument in {node.name}(); use None and create inside the body",
                )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and dotted_name(node.func) in (
            "list", "dict", "set", "bytearray", "collections.deque", "deque",
        ):
            return True
        return False


@register
class BareExceptRule(Rule):
    """RL005: no bare ``except:`` clauses.

    A bare except swallows ``KeyboardInterrupt``/``SystemExit`` and hides
    programming errors behind QoS-invariant violations. Catch
    ``repro.errors.ReproError`` (the library-wide base class) or a
    concrete exception type.
    """

    id = "RL005"
    name = "bare-except"
    severity = Severity.ERROR
    description = "bare except clause hides programming errors"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            ctx.report(self, node, "bare except; catch ReproError or a concrete exception type")


@register
class SwallowedExceptionRule(Rule):
    """RL006: no silently swallowed exceptions.

    ``except SomeError: pass`` (or ``...``) erases the only evidence that
    an invariant broke. Either handle the error, re-raise, or log via the
    stats collector; if swallowing is genuinely correct, say why with an
    inline ``# reprolint: disable=swallowed-exception`` justification.
    """

    id = "RL006"
    name = "swallowed-exception"
    severity = Severity.WARNING
    description = "exception handler whose only body is pass/..."
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        body = node.body
        if len(body) == 1 and (
            isinstance(body[0], ast.Pass)
            or (isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant) and body[0].value.value is Ellipsis)
        ):
            ctx.report(self, node, "exception silently swallowed; handle it or justify the suppression inline")


@register
class SetIterationRule(Rule):
    """RL007: no set iteration driving control flow in guarded packages.

    Iterating a ``set``/``frozenset`` yields elements in hash order, which
    varies run-to-run for str-keyed sets under hash randomization — the
    classic way an arbitration loop silently loses determinism (a future
    SW-QPS-style parallel scheduler is exactly the PR that would introduce
    this). Sort the set, or keep candidates in a list/dict (dicts
    preserve insertion order). ``dict.popitem()`` is flagged for the same
    reason: "last inserted" is rarely the order an arbiter means.
    """

    id = "RL007"
    name = "set-iteration"
    severity = Severity.ERROR
    description = "iteration over an unordered set inside a guarded package"
    node_types = (ast.For, ast.AsyncFor, ast.comprehension, ast.Call)
    guarded_only = True

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_iterable(node.iter, ctx)
        elif isinstance(node, ast.comprehension):
            self._check_iterable(node.iter, ctx)
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and node.func.attr == "popitem":
                ctx.report(self, node, "dict.popitem() order is incidental; pop an explicit key")

    def _check_iterable(self, iterable: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            ctx.report(self, iterable, "iterating a set literal; order is undefined — sort or use a list")
        elif isinstance(iterable, ast.Call) and dotted_name(iterable.func) in ("set", "frozenset"):
            ctx.report(self, iterable, "iterating set(...); order is undefined — use sorted(...) instead")


@register
class PrintInLibraryRule(Rule):
    """RL008: no ``print()`` in guarded simulator packages.

    The core/switch/qos/multiswitch packages are library code driven by
    benchmarks and million-packet experiments; a stray debug print both
    floods output and (being I/O) distorts the perf numbers the ROADMAP
    cares about. Reporting belongs in ``repro.metrics`` and the
    experiment CLI.
    """

    id = "RL008"
    name = "print-in-library"
    severity = Severity.WARNING
    description = "print() call inside a guarded library package"
    node_types = (ast.Call,)
    guarded_only = True

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(self, node, "print() in library code; return data or use repro.metrics reporting")


#: Module prefixes that spawn OS processes; fan-out must go through the
#: one audited entry point instead.
_FAN_OUT_MODULES = ("multiprocessing", "concurrent.futures")


@register
class FanOutImportRule(Rule):
    """RL009: process fan-out only through ``repro.parallel``.

    ``SweepExecutor`` is the single audited entry point for parallelism:
    it derives per-point seeds, merges results in point order, and
    surfaces worker crashes as ``SimulationError``. A direct
    ``multiprocessing`` / ``concurrent.futures`` import anywhere else can
    reorder results or leak global RNG state into workers, silently
    breaking the serial == parallel determinism contract
    (``docs/PARALLELISM.md``). Import ``repro.parallel`` instead.
    """

    id = "RL009"
    name = "fan-out-import"
    severity = Severity.ERROR
    description = "process-pool import outside the repro.parallel subsystem"
    node_types = (ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if ctx.module.parts[:2] == ("repro", "parallel"):
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if self._is_fan_out(alias.name):
                    self._flag(node, alias.name, ctx)
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:  # relative import
                return
            if self._is_fan_out(node.module):
                self._flag(node, node.module, ctx)
            elif node.module == "concurrent" and any(
                alias.name == "futures" for alias in node.names
            ):
                self._flag(node, "concurrent.futures", ctx)

    @staticmethod
    def _is_fan_out(name: str) -> bool:
        return any(
            name == prefix or name.startswith(prefix + ".")
            for prefix in _FAN_OUT_MODULES
        )

    def _flag(self, node: ast.AST, name: str, ctx: ModuleContext) -> None:
        ctx.report(
            self,
            node,
            f"direct {name} import bypasses the deterministic sweep "
            "executor; use repro.parallel.SweepExecutor",
        )


@register
class FaultDeepImportRule(Rule):
    """RL010: fault hooks imported only through the ``repro.faults`` facade.

    The fault subsystem's public surface — :class:`FaultPlan`,
    :class:`FaultInjector`, ``resolve_injector``, the spec constructors,
    and the declared contracts — is re-exported from the package root.
    The submodules behind it (``plan``, ``injector``) are free to move,
    and the injection hosts validate plans against the facade's
    invariants (empty plan == no plan, layer-checked kinds). A deep
    import like ``from repro.faults.injector import FaultInjector``
    couples kernels to internals and sidesteps that contract, so it is
    flagged everywhere outside the ``repro.faults`` package itself.
    """

    id = "RL010"
    name = "fault-deep-import"
    severity = Severity.ERROR
    description = "deep import into repro.faults internals instead of the facade"
    node_types = (ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if ctx.module.parts[:2] == ("repro", "faults"):
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.faults."):
                    self._flag(node, alias.name, ctx)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level:
                # Relative deep import: ``from ..faults.plan import X``
                # parses as level=2, module="faults.plan".
                parts = module.split(".")
                if len(parts) >= 2 and parts[0] == "faults":
                    self._flag(node, "." * node.level + module, ctx)
            elif module.startswith("repro.faults."):
                self._flag(node, module, ctx)

    def _flag(self, node: ast.AST, name: str, ctx: ModuleContext) -> None:
        ctx.report(
            self,
            node,
            f"deep import {name} reaches into repro.faults internals; "
            "import from the repro.faults package root",
        )


#: Lower-cased substrings in a called name that count as *recording* the
#: failure (probe counters, journals, loggers, reports, stderr writes...).
_RECORD_MARKERS = (
    "log", "warn", "print", "record", "probe", "count", "event",
    "report", "stderr", "journal", "emit", "trace", "note", "write",
)


@register
class SwallowedWithoutRecordRule(Rule):
    """RL011: every exception handler must re-raise, record, or resolve.

    RL006 catches the trivial ``except E: pass``; this rule catches the
    subtler swallow — a handler that *does* something (reset a cache,
    assign a fallback) but lets the only evidence of the failure vanish:
    no re-raise, no return/break/continue the caller can observe, no use
    of the bound exception, and no call into a recording sink (probe
    counters, journal, logger, report, stderr...). The resilience layer
    made this load-bearing: a retry/salvage decision is only auditable if
    every absorbed failure leaves a trace (``resilience.*`` counters, the
    journal, or a ``PointFailure``). If absorbing really is correct, say
    why with ``# reprolint: disable=swallowed-without-record``.
    """

    id = "RL011"
    name = "swallowed-without-record"
    severity = Severity.WARNING
    description = "exception handler neither re-raises, records, nor resolves"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        body = node.body
        if len(body) == 1 and (
            isinstance(body[0], ast.Pass)
            or (
                isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and body[0].value.value is Ellipsis
            )
        ):
            return  # RL006's territory; one finding per defect is enough
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Raise, ast.Return, ast.Break, ast.Continue)):
                    return
                if isinstance(sub, ast.Call) and self._records(sub):
                    return
                if (
                    node.name is not None
                    and isinstance(sub, ast.Name)
                    and sub.id == node.name
                ):
                    return  # the exception object flows somewhere visible
        ctx.report(
            self,
            node,
            "exception absorbed without re-raise, record, or control-flow "
            "exit; count/journal/log the failure or justify inline",
        )

    @staticmethod
    def _records(call: ast.Call) -> bool:
        name = dotted_name(call.func)
        if name is None:
            return False
        lowered = name.lower()
        return any(marker in lowered for marker in _RECORD_MARKERS)


#: Dotted names (and the builtin) that denote a floating-point dtype.
_FLOAT_DTYPE_NAMES = frozenset(
    {
        "float",
        "np.float16", "np.float32", "np.float64", "np.float128",
        "np.half", "np.single", "np.double", "np.longdouble", "np.floating",
        "numpy.float16", "numpy.float32", "numpy.float64", "numpy.float128",
        "numpy.half", "numpy.single", "numpy.double", "numpy.longdouble",
        "numpy.floating",
    }
)

#: String dtype spellings that denote floats ("f" alone is float32).
_FLOAT_DTYPE_STRINGS = frozenset(
    {"f", "f2", "f4", "f8", "f16", "float16", "float32", "float64",
     "float128", "half", "single", "double", "longdouble"}
)

#: numpy constructors whose *default* dtype is float64 when none is given.
_FLOAT_DEFAULT_CTORS = frozenset({"zeros", "ones", "empty"})

#: numpy array constructors where an explicit float dtype is flagged.
_ARRAY_CTORS = _FLOAT_DEFAULT_CTORS | {"array", "asarray", "full", "arange", "full_like", "zeros_like", "ones_like", "empty_like"}

#: Selection reductions whose lowest-index tie-break must be documented.
_TIE_BREAK_FNS = frozenset({"argmin", "argmax", "argsort"})

_NUMPY_HEADS = ("np", "numpy")


@register
class NumpyDeterminismRule(Rule):
    """RL012: numpy in guarded packages — integer arrays, documented ties.

    The array kernel's parity contract (``docs/KERNELS.md``) holds only
    if its numpy usage is as replayable as the scalar loops it mirrors.
    Three hazards are flagged inside the guarded packages:

    * ``np.random.*`` global-state samplers — a hidden process-wide
      RandomState draw cannot be replayed; the sanctioned idiom is a
      seeded ``np.random.SeedSequence(...).spawn(...)`` / ``default_rng``
      Generator (RL001 flags the same samplers everywhere, but an
      un-guarded module can suppress it locally — inside the guarded
      packages this rule makes the ban non-negotiable);
    * float dtypes in array constructors — an explicit ``dtype=float64``
      (or a ``zeros``/``ones``/``empty`` call *without* a dtype, which
      defaults to float64) puts round-off into the grant path, where the
      contract is integer-exact compares; pass an integer or bool dtype;
    * ``argmin``/``argmax``/``argsort`` without a nearby ``tie-break``
      comment — numpy resolves ties by lowest index, and whether that
      coincides with the scalar arbiter's LRG order is exactly the kind
      of silent assumption that breaks bit-identical parity; document why
      the tie-break is safe within two lines of the call.
    """

    id = "RL012"
    name = "numpy-determinism"
    severity = Severity.ERROR
    description = "numpy usage that can break bit-identical arbitration replay"
    node_types = (ast.Call,)
    guarded_only = True

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is not None:
            head, _, tail = name.rpartition(".")
            if head in _NUMPY_ALIASES and tail in _GLOBAL_NUMPY_FNS:
                ctx.report(
                    self,
                    node,
                    f"{name}() draws from numpy's hidden global RandomState; "
                    "arbitration code must use a seeded, injected Generator",
                )
                return
            if head in _NUMPY_HEADS and tail in _ARRAY_CTORS:
                self._check_ctor(node, name, tail, ctx)
                return
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "astype":
                if node.args and self._is_float_dtype(node.args[0]):
                    ctx.report(
                        self,
                        node,
                        "astype() to a float dtype in arbitration code; "
                        "the grant path compares integers only",
                    )
                return
            if node.func.attr in _TIE_BREAK_FNS and not self._documented(node, ctx):
                ctx.report(
                    self,
                    node,
                    f"{node.func.attr}() without a documented tie-break; "
                    "numpy picks the lowest index on ties — add a "
                    "'# tie-break:' comment within two lines saying why "
                    "that matches the scalar arbiter",
                )

    def _check_ctor(
        self, node: ast.Call, name: str, tail: str, ctx: ModuleContext
    ) -> None:
        dtype = next((kw.value for kw in node.keywords if kw.arg == "dtype"), None)
        if dtype is None:
            if tail in _FLOAT_DEFAULT_CTORS:
                ctx.report(
                    self,
                    node,
                    f"{name}() without a dtype defaults to float64; grant-path "
                    "arrays must pass an explicit integer or bool dtype",
                )
            return
        if self._is_float_dtype(dtype):
            ctx.report(
                self,
                node,
                f"{name}() with a float dtype in arbitration code; the "
                "grant path compares integers only",
            )

    @staticmethod
    def _is_float_dtype(node: ast.AST) -> bool:
        name = dotted_name(node)
        if name in _FLOAT_DTYPE_NAMES:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            spelling = node.value.lstrip("<>=").lower()
            return spelling in _FLOAT_DTYPE_STRINGS
        return False

    def _documented(self, node: ast.Call, ctx: ModuleContext) -> bool:
        lines = ctx.module.source.splitlines()
        lo = max(node.lineno - 3, 0)
        hi = min(node.lineno + 1, len(lines))
        window = "\n".join(lines[lo:hi]).lower()
        return "tie-break" in window or "tie break" in window


#: Container methods that mutate their receiver in place. Calling one on
#: shared scheduler state (or on the caller's backlog) inside a grant/
#: propose phase is the mid-iteration mutation RL013 forbids.
_RL013_MUTATORS = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "setdefault",
        "update",
    }
)

#: Method-name markers for the read-only matching phases.
_RL013_PHASE_MARKERS = ("grant", "propose", "request")


def _rl013_root(node: ast.AST) -> Optional[str]:
    """The base Name of an Attribute/Subscript chain (``self`` for
    ``self._slots[i].by_input``), or None when the chain passes through a
    call and the receiver cannot be tracked statically."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _rl013_touches_pointer(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and "pointer" in child.attr.lower():
            return True
    return False


@register
class IterativeArbiterContractRule(Rule):
    """RL013: iterative-arbiter contract — pure phases, accept-gated pointers.

    The iterative matchers (:mod:`repro.qos.iterative` subclasses) repeat
    a request/grant/accept exchange several times per cycle. Two
    structural invariants make that exchange replayable and keep the
    schedulers' fairness arguments intact:

    * **grant/propose phases are pure** — a method whose name marks it as
      part of the request or grant phase (``grant``/``propose``/
      ``request``) must not mutate shared scheduler state (``self.*``) or
      the caller's VOQ backlog mid-iteration: a grant computed from
      state another port's grant just changed is order-dependent, and the
      simulator's determinism contract (docs/PARALLELISM.md) forbids
      that. Mutation belongs in the accept phase or in ``match`` itself.
    * **round-robin pointers advance only on accepted grants** — iSLIP's
      no-starvation argument rests on pointers slipping past a match
      only when the grant is *accepted*; a pointer write anywhere but an
      accept-phase method (or ``__init__``) desynchronizes the rotation
      and reintroduces the synchronization pathology round-robin
      matching exists to avoid.

    The rule fires on classes whose base list names ``IterativeArbiter``.
    """

    id = "RL013"
    name = "iterative-arbiter-contract"
    severity = Severity.ERROR
    description = (
        "iterative matchers must keep grant phases pure and advance "
        "round-robin pointers only on accepted grants"
    )
    node_types = (ast.ClassDef,)
    guarded_only = True

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.ClassDef)
        if not any(
            (dotted_name(base) or "").split(".")[-1] == "IterativeArbiter"
            for base in node.bases
        ):
            return
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_method(item, ctx)

    def _check_method(self, method: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
        lowered = method.name.lower()
        pointer_ok = "accept" in lowered or method.name == "__init__"
        is_phase = "accept" not in lowered and any(
            marker in lowered for marker in _RL013_PHASE_MARKERS
        )
        args = method.args
        params = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        } - {"self"}
        for stmt in ast.walk(method):
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    self._check_write(target, method, ctx,
                                      pointer_ok, is_phase, params)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    self._check_write(target, method, ctx,
                                      pointer_ok, is_phase, params)
            elif (
                isinstance(stmt, ast.Call)
                and isinstance(stmt.func, ast.Attribute)
                and stmt.func.attr in _RL013_MUTATORS
            ):
                root = _rl013_root(stmt.func.value)
                if is_phase and root is not None and (
                    root == "self" or root in params
                ):
                    what = (
                        "shared scheduler state" if root == "self"
                        else f"the caller's {root!r}"
                    )
                    ctx.report(
                        self,
                        stmt,
                        f"{method.name}() calls .{stmt.func.attr}() on "
                        f"{what}; grant/propose phases must stay pure — "
                        "mutate in the accept phase or in match()",
                    )

    def _check_write(
        self,
        target: ast.AST,
        method: ast.AST,
        ctx: ModuleContext,
        pointer_ok: bool,
        is_phase: bool,
        params: "set[str]",
    ) -> None:
        assert isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_write(element, method, ctx,
                                  pointer_ok, is_phase, params)
            return
        root = _rl013_root(target)
        if root is None:
            return
        if _rl013_touches_pointer(target) and root == "self" and not pointer_ok:
            ctx.report(
                self,
                target,
                f"{method.name}() writes a round-robin pointer; pointers "
                "advance only on accepted grants (an accept-phase method "
                "or __init__)",
            )
            return
        if is_phase and (root == "self" or root in params):
            what = (
                "shared scheduler state" if root == "self"
                else f"the caller's {root!r}"
            )
            ctx.report(
                self,
                target,
                f"{method.name}() assigns into {what}; grant/propose "
                "phases must stay pure — mutate in the accept phase or "
                "in match()",
            )


#: Calls whose return value is an OS-level socket that must be released.
_RL014_ACQUIRERS = frozenset(
    {
        "socket.socket", "socket.create_connection",
        "socket.create_server", "socket.socketpair",
    }
)

#: Attribute calls that mint a dependent stream from an existing socket
#: (``sock.makefile(...)`` hands out a buffered file object holding the
#: socket open; ``server.accept()`` hands out a brand-new connection).
_RL014_METHOD_ACQUIRERS = frozenset({"makefile", "accept"})

#: Method names that count as releasing the resource.
_RL014_RELEASERS = frozenset({"close", "shutdown", "server_close", "detach"})


def _rl014_scope_statements(fn: ast.AST) -> "list[ast.AST]":
    """Every node in ``fn``'s own body, not descending into nested
    function/class scopes (those are visited as their own functions, and a
    socket created there is that scope's responsibility)."""
    out: "list[ast.AST]" = []
    stack: "list[ast.AST]" = list(
        fn.body  # type: ignore[attr-defined]
    )
    while stack:
        node = stack.pop()
        out.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.append(child)
    return out


def _rl014_is_acquirer(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name in _RL014_ACQUIRERS:
        return True
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in _RL014_METHOD_ACQUIRERS
    )


def _rl014_mentions(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


@register
class DaemonResourceCleanupRule(Rule):
    """RL014: daemon/socket resources need finally or context-manager cleanup.

    The serve layer (``repro.serve``, ``docs/SERVICE.md``) holds OS-level
    resources — listening sockets, accepted connections, the buffered
    streams ``makefile()`` mints from them — whose leak mode is silent: a
    daemon that drops a connection object without closing it keeps the
    file descriptor (and the peer's half of the TCP stream) alive until
    process exit, which in a long-lived ``repro-serve`` process means
    "forever". The crash-safety contract makes this worse than a resource
    hygiene nit: the drain path promises every fsync'd catalog entry is
    durable *and* every client gets either a result or a loud error, and
    both promises route through sockets being deterministically released.

    Flagged: a local-variable assignment from ``socket.socket(...)``,
    ``socket.create_connection(...)``, ``socket.create_server(...)``,
    ``socketpair(...)``, ``<x>.makefile(...)``, or ``<x>.accept()`` whose
    name is never guaranteed released in the same function. Released
    means any of:

    * the name is a ``with`` context (``with sock:``, ``with
      contextlib.closing(sock) as ...``),
    * ``<name>.close()`` / ``.shutdown()`` / ``.server_close()`` /
      ``.detach()`` appears in the ``finally`` of a ``try`` in the same
      function (a bare happy-path ``close()`` does NOT count — the
      exception path is exactly where daemons leak),
    * ownership escapes: the name is returned, yielded, stored on an
      attribute (``self.sock = ...``), or registered with an exit stack
      (``stack.enter_context``/``push``/``callback``).
    """

    id = "RL014"
    name = "daemon-resource-cleanup"
    severity = Severity.ERROR
    description = (
        "socket/daemon resource acquired without finally or "
        "context-manager cleanup"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        scope = _rl014_scope_statements(node)
        acquisitions: "list[tuple[str, ast.Assign]]" = []
        for stmt in scope:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            value = stmt.value
            if not isinstance(value, ast.Call) or not _rl014_is_acquirer(value):
                continue
            if isinstance(target, ast.Name):
                acquisitions.append((target.id, stmt))
            elif isinstance(target, (ast.Tuple, ast.List)):
                # conn, addr = server.accept() — the first element is the
                # socket; the rest (peer address) needs no cleanup.
                first = target.elts[0] if target.elts else None
                if isinstance(first, ast.Name):
                    acquisitions.append((first.id, stmt))
            # an Attribute target (self.sock = ...) hands the resource to
            # the object's lifecycle — close() belongs to its owner, not
            # this function.
        for name, stmt in acquisitions:
            if not self._released(name, scope):
                ctx.report(
                    self,
                    stmt,
                    f"{name!r} holds an OS socket/stream but is never "
                    "released on the exception path; use `with`, close it "
                    "in a `finally`, or hand ownership out (return / "
                    "attribute / ExitStack)",
                )

    @staticmethod
    def _released(name: str, scope: "list[ast.AST]") -> bool:
        for node in scope:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _rl014_mentions(item.context_expr, name):
                        return True
            elif isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in _RL014_RELEASERS
                            and _rl014_mentions(sub.func.value, name)
                        ):
                            return True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and _rl014_mentions(node.value, name):
                    return True
            elif isinstance(node, ast.Assign):
                # self.sock = sock — ownership moves to the object.
                if any(
                    isinstance(t, ast.Attribute) for t in node.targets
                ) and _rl014_mentions(node.value, name):
                    return True
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("enter_context", "push", "callback")
                    and any(_rl014_mentions(arg, name) for arg in node.args)
                ):
                    return True
        return False
