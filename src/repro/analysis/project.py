"""Whole-program analysis: project loader, symbol table, call graph.

The per-file engine (:mod:`repro.analysis.engine`) sees one module at a
time, so it can prove local hygiene but not the invariants that live on
*paths between modules* — an optional ``seed=None`` parameter threaded
three calls deep into ``default_rng``, a sweep worker that mutates a
module-level cache in another file, an exception class whose base chain
crosses two modules. This module closes that gap:

* :class:`ProjectLoader` parses every ``*.py`` under one or more roots
  **once** (the same :class:`~repro.analysis.engine.SourceModule` objects
  the per-file engine consumes, so a ``--project`` run never re-parses),
  and builds a :class:`Project`:

  - a module table keyed by dotted name, with per-module import bindings
    (absolute targets resolved through relative imports and
    ``__init__`` re-exports, ``if TYPE_CHECKING`` imports marked
    type-only),
  - a symbol table of top-level functions, classes and their methods,
    and module-level assignments classified by mutability,
  - an approximate call graph: call sites are resolved through import
    aliases, ``self``, and a light local type inference (``x =
    SweepExecutor(...)`` makes ``x.map`` resolve to
    ``SweepExecutor.map``).

* :class:`ProjectRule` is the whole-program counterpart of
  :class:`~repro.analysis.engine.Rule`: it receives the full
  :class:`Project` and reports findings through :class:`ProjectContext`,
  which applies the same ``# reprolint: disable=`` suppression grammar
  as the per-file engine.

Everything here is *approximate by design* — resolution returns ``None``
rather than guessing when a name goes through a dynamic ``__getattr__``,
a ``getattr()`` fallback, or an import the project does not contain.
Rules must treat unresolved edges as "unknown", never as violations.
The loader is hardened against import cycles (resolution carries a
visited set) and never executes project code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from .engine import (
    Engine,
    Finding,
    Report,
    Severity,
    SourceModule,
    dotted_name,
    finding_suppressed,
    iter_python_files,
    register_rule_token,
)

#: Name classes a module-level binding can have, as far as fork-safety
#: cares: a mutable container, an OS resource (open file handle), or
#: anything else (immutable constants, classes, functions...).
MUTABLE_KIND = "mutable"
RESOURCE_KIND = "resource"

_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "collections.deque",
     "defaultdict", "collections.defaultdict", "Counter", "collections.Counter",
     "OrderedDict", "collections.OrderedDict"}
)


def _classify_module_binding(value: ast.AST) -> Optional[str]:
    """Mutability class of a module-level assignment's value, or None."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return MUTABLE_KIND
    if isinstance(value, ast.Call):
        callee = dotted_name(value.func)
        if callee in _MUTABLE_CTORS:
            return MUTABLE_KIND
        if callee == "open" or (callee is not None and callee.endswith(".open")):
            return RESOURCE_KIND
    return None


@dataclass
class ImportBinding:
    """One local import alias and its absolute target."""

    alias: str
    target: str
    #: imported only under ``if TYPE_CHECKING`` — absent at runtime, so
    #: call-graph resolution must ignore it.
    type_only: bool
    line: int


@dataclass
class CallSite:
    """One call expression inside a function, pre- and post-resolution."""

    #: the callee as written (``"np.random.default_rng"``, ``"self._go"``);
    #: None when the callee is not a name/attribute chain (e.g. a call on
    #: a subscript or on another call's result).
    callee_text: Optional[str]
    node: ast.Call
    #: fully-qualified symbol this call resolves to, when it names a
    #: function or method defined in the project (``"repro.x:Cls.meth"``).
    resolved: Optional[str] = None


@dataclass
class FunctionInfo:
    """One function or method, with its call sites."""

    qualname: str  #: ``module:func`` or ``module:Class.method``
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    #: True for functions defined inside another function's body —
    #: unpicklable by qualname, which fork-safety cares about.
    nested: bool = False
    calls: List[CallSite] = field(default_factory=list)

    @property
    def fn_node(self) -> ast.FunctionDef:
        node = self.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        return node  # type: ignore[return-value]

    @property
    def params(self) -> List[ast.arg]:
        args = self.fn_node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if self.class_name is not None and params and not self._is_static():
            params = params[1:]  # drop self/cls
        return params

    def _is_static(self) -> bool:
        for deco in self.fn_node.decorator_list:
            if dotted_name(deco) == "staticmethod":
                return True
        return False

    def param_default(self, name: str) -> Tuple[bool, Optional[ast.AST]]:
        """``(has_default, default_node)`` for parameter ``name``."""
        args = self.fn_node.args
        positional = [*args.posonlyargs, *args.args]
        defaults = list(args.defaults)
        # defaults align to the tail of the positional parameter list
        offset = len(positional) - len(defaults)
        for i, arg in enumerate(positional):
            if arg.arg == name:
                if i >= offset:
                    return True, defaults[i - offset]
                return False, None
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == name:
                return default is not None, default
        return False, None


@dataclass
class ClassInfo:
    """One top-level class: methods and (textual) base names."""

    qualname: str  #: ``module:Class``
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the project knows about one source module."""

    name: str  #: dotted module name, e.g. ``repro.qos.base``
    source: SourceModule
    imports: Dict[str, ImportBinding] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level name -> MUTABLE_KIND / RESOURCE_KIND
    risky_globals: Dict[str, str] = field(default_factory=dict)
    #: re-exported name -> absolute dotted target (``__init__`` facades)
    exports: Dict[str, str] = field(default_factory=dict)
    #: the module defines a dynamic ``__getattr__`` fallback, so unknown
    #: attribute lookups must resolve to "unknown", not "missing".
    dynamic_getattr: bool = False

    @property
    def path(self) -> str:
        return self.source.path

    def all_functions(self) -> Iterable[FunctionInfo]:
        for fn in self.functions.values():
            yield fn
        for cls in self.classes.values():
            for fn in cls.methods.values():
                yield fn


@dataclass(frozen=True)
class ResolvedSymbol:
    """What a dotted name resolves to inside the project."""

    kind: str  #: "function" | "class" | "module" | "global"
    qualname: str  #: ``module:Symbol`` (or the module name for "module")


class _ModuleBuilder(ast.NodeVisitor):
    """Single AST pass extracting a :class:`ModuleInfo` from one module."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._type_only_depth = 0
        self._func_depth = 0
        self._class_stack: List[ClassInfo] = []
        self._current_fn: List[FunctionInfo] = []

    # -------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self._bind(local, target, node.lineno)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._import_base(node)
        if base is not None:
            top_level = self._func_depth == 0 and not self._class_stack
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                self._bind(local, target, node.lineno)
                # A top-level ``from .sub import Name`` in a package
                # __init__ is a facade re-export: resolving
                # ``package.Name`` must follow it to ``package.sub.Name``.
                if self._is_package and top_level and not self._type_only_depth:
                    self.info.exports[local] = target
        self.generic_visit(node)

    @property
    def _is_package(self) -> bool:
        return Path(self.info.path).name == "__init__.py"

    def _import_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        # Relative import: resolve against this module's package. For a
        # package __init__, the module's own name IS the package.
        parts = self.info.name.split(".")
        if not self._is_package:
            parts = parts[:-1]
        # level=1 means "this package"; each extra level pops one parent.
        for _ in range(node.level - 1):
            if not parts:
                return None  # beyond the project root; unresolvable
            parts = parts[:-1]
        prefix = ".".join(parts)
        if node.module:
            return f"{prefix}.{node.module}" if prefix else node.module
        return prefix

    def _bind(self, alias: str, target: str, line: int) -> None:
        self.info.imports[alias] = ImportBinding(
            alias=alias,
            target=target,
            type_only=self._type_only_depth > 0,
            line=line,
        )

    # ------------------------------------------------------ TYPE_CHECKING

    def visit_If(self, node: ast.If) -> None:
        names = {
            n.id for n in ast.walk(node.test) if isinstance(n, ast.Name)
        } | {
            n.attr for n in ast.walk(node.test) if isinstance(n, ast.Attribute)
        }
        if "TYPE_CHECKING" in names:
            self._type_only_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_only_depth -= 1
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    # ------------------------------------------------------------- symbols

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _handle_function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name == "__getattr__" and self._func_depth == 0 and not self._class_stack:
            self.info.dynamic_getattr = True
        cls = self._class_stack[-1] if self._class_stack else None
        nested = self._func_depth > 0
        if cls is not None and not nested:
            qualname = f"{self.info.name}:{cls.name}.{node.name}"
        elif nested and self._current_fn:
            qualname = f"{self._current_fn[-1].qualname}.<locals>.{node.name}"
        else:
            qualname = f"{self.info.name}:{node.name}"
        fn = FunctionInfo(
            qualname=qualname,
            module=self.info.name,
            name=node.name,
            node=node,
            class_name=cls.name if cls is not None and not nested else None,
            nested=nested,
        )
        if nested:
            # Nested defs are indexed flat (qualname keyed) so fork-safety
            # can look them up, but they never shadow top-level symbols.
            self.info.functions.setdefault(qualname, fn)
        elif cls is not None:
            cls.methods[node.name] = fn
        else:
            self.info.functions[node.name] = fn
        self._current_fn.append(fn)
        self._func_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self._func_depth -= 1
        self._current_fn.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_depth > 0 or self._class_stack:
            # Nested/inner classes stay out of the symbol table (rare, and
            # never part of a cross-module contract in this codebase).
            self.generic_visit(node)
            return
        cls = ClassInfo(
            qualname=f"{self.info.name}:{node.name}",
            module=self.info.name,
            name=node.name,
            node=node,
            bases=[b for b in (dotted_name(base) for base in node.bases) if b],
        )
        self.info.classes[node.name] = cls
        self._class_stack.append(cls)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._func_depth == 0 and not self._class_stack:
            kind = _classify_module_binding(node.value)
            if kind is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.info.risky_globals[target.id] = kind
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            self._func_depth == 0
            and not self._class_stack
            and node.value is not None
            and isinstance(node.target, ast.Name)
        ):
            kind = _classify_module_binding(node.value)
            if kind is not None:
                self.info.risky_globals[node.target.id] = kind
        self.generic_visit(node)

    # ---------------------------------------------------------- call sites

    def visit_Call(self, node: ast.Call) -> None:
        if self._current_fn:
            self._current_fn[-1].calls.append(
                CallSite(callee_text=dotted_name(node.func), node=node)
            )
        self.generic_visit(node)


class Project:
    """The loaded whole-program view: modules, symbols, calls."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self._call_graph: Optional[Dict[str, Set[str]]] = None
        self._reverse_calls: Optional[Dict[str, Set[str]]] = None
        self._function_index: Dict[str, FunctionInfo] = {}
        for mod in modules.values():
            for fn in mod.all_functions():
                self._function_index[fn.qualname] = fn
            for qualname, fn in list(mod.functions.items()):
                if fn.nested:
                    self._function_index[fn.qualname] = fn

    # ------------------------------------------------------------- lookups

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self._function_index.get(qualname)

    def functions(self) -> Iterable[FunctionInfo]:
        return self._function_index.values()

    def class_info(self, qualname: str) -> Optional[ClassInfo]:
        module_name, _, symbol = qualname.partition(":")
        mod = self.modules.get(module_name)
        if mod is None:
            return None
        return mod.classes.get(symbol)

    @property
    def import_graph(self) -> Dict[str, Set[str]]:
        """module -> set of *project* modules it imports (runtime only)."""
        graph: Dict[str, Set[str]] = {}
        for name, mod in self.modules.items():
            edges: Set[str] = set()
            for binding in mod.imports.values():
                if binding.type_only:
                    continue
                target_module = self._containing_module(binding.target)
                if target_module is not None and target_module != name:
                    edges.add(target_module)
            graph[name] = edges
        return graph

    def _containing_module(self, dotted: str) -> Optional[str]:
        """Longest project-module prefix of an absolute dotted path."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # ---------------------------------------------------------- resolution

    def resolve(
        self, module: ModuleInfo, dotted: Optional[str]
    ) -> Optional[ResolvedSymbol]:
        """Resolve a name as written in ``module`` to a project symbol.

        Follows import aliases and ``__init__`` re-export chains with a
        visited set, so cyclic imports terminate. Returns ``None`` for
        anything outside the project or behind a dynamic ``__getattr__``.
        """
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        binding = module.imports.get(head)
        if binding is not None:
            if binding.type_only:
                return None
            absolute = binding.target + (f".{rest}" if rest else "")
            return self._resolve_absolute(absolute, set())
        # Name defined in this module?
        return self._resolve_in_module(module, dotted, set())

    def _resolve_in_module(
        self, module: ModuleInfo, symbol_path: str, seen: Set[str]
    ) -> Optional[ResolvedSymbol]:
        head, _, rest = symbol_path.partition(".")
        if head in module.functions:
            return ResolvedSymbol("function", module.functions[head].qualname)
        if head in module.classes:
            cls = module.classes[head]
            if rest and "." not in rest:
                method = cls.methods.get(rest)
                if method is not None:
                    return ResolvedSymbol("function", method.qualname)
            if rest:
                return None
            return ResolvedSymbol("class", cls.qualname)
        if head in module.exports:
            target = module.exports[head] + (f".{rest}" if rest else "")
            return self._resolve_absolute(target, seen)
        if head in module.risky_globals:
            return ResolvedSymbol("global", f"{module.name}:{head}")
        return None

    def _resolve_absolute(
        self, dotted: str, seen: Set[str]
    ) -> Optional[ResolvedSymbol]:
        if dotted in seen:
            return None  # re-export cycle
        seen.add(dotted)
        owner = self._containing_module(dotted)
        if owner is None:
            return None
        remainder = dotted[len(owner):].lstrip(".")
        mod = self.modules[owner]
        if not remainder:
            return ResolvedSymbol("module", owner)
        return self._resolve_in_module(mod, remainder, seen)

    def infer_local_types(
        self, fn: FunctionInfo
    ) -> Dict[str, str]:
        """Map local variable names to project class qualnames.

        Sources: parameter annotations naming a project class, and
        assignments from a direct constructor call (``x = Executor(...)``).
        One pass, no joins — a rebound name keeps its last classification,
        which is the right bias for the "was this built from class C?"
        questions the project rules ask.
        """
        module = self.modules[fn.module]
        types: Dict[str, str] = {}
        for param in self.params_with_annotations(fn):
            arg, annotation = param
            resolved = self.resolve(module, annotation)
            if resolved is not None and resolved.kind == "class":
                types[arg] = resolved.qualname
        for node in ast.walk(fn.fn_node):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            callee = dotted_name(node.value.func)
            resolved = self.resolve(module, callee)
            if resolved is None or resolved.kind != "class":
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = resolved.qualname
        return types

    @staticmethod
    def params_with_annotations(
        fn: FunctionInfo,
    ) -> List[Tuple[str, Optional[str]]]:
        out: List[Tuple[str, Optional[str]]] = []
        for arg in fn.params:
            annotation = None
            if arg.annotation is not None:
                annotation = dotted_name(arg.annotation)
            out.append((arg.arg, annotation))
        return out

    # ---------------------------------------------------------- call graph

    def resolve_call(
        self, fn: FunctionInfo, site: CallSite,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Resolve one call site to a project function qualname, or None."""
        text = site.callee_text
        if text is None:
            return None
        module = self.modules[fn.module]
        head, _, rest = text.partition(".")
        if head == "self" and fn.class_name is not None:
            return self._resolve_method_chain(
                module.classes.get(fn.class_name), rest
            )
        if head == "cls" and fn.class_name is not None:
            return self._resolve_method_chain(
                module.classes.get(fn.class_name), rest
            )
        if local_types is not None and head in local_types and rest:
            owner = self.class_info(local_types[head])
            return self._resolve_method_chain(owner, rest)
        resolved = self.resolve(module, text)
        if resolved is not None and resolved.kind == "function":
            return resolved.qualname
        if resolved is not None and resolved.kind == "class":
            # Calling a class constructs it; resolve to __init__ if defined.
            cls = self.class_info(resolved.qualname)
            if cls is not None and "__init__" in cls.methods:
                return cls.methods["__init__"].qualname
        return None

    def _resolve_method_chain(
        self, cls: Optional[ClassInfo], method_path: str
    ) -> Optional[str]:
        if cls is None or not method_path or "." in method_path:
            return None
        seen: Set[str] = set()
        current: Optional[ClassInfo] = cls
        while current is not None and current.qualname not in seen:
            seen.add(current.qualname)
            method = current.methods.get(method_path)
            if method is not None:
                return method.qualname
            current = self._first_project_base(current)
        return None

    def _first_project_base(self, cls: ClassInfo) -> Optional[ClassInfo]:
        module = self.modules[cls.module]
        for base_text in cls.bases:
            resolved = self.resolve(module, base_text)
            if resolved is not None and resolved.kind == "class":
                return self.class_info(resolved.qualname)
        return None

    def base_chain(self, cls: ClassInfo, limit: int = 32) -> List[str]:
        """Textual base names up the (project-resolvable) MRO spine.

        Includes both resolved project bases (followed transitively, cycle
        safe) and unresolved base names as written — callers can match
        either a project class qualname or an imported name like
        ``SimulationError``.
        """
        chain: List[str] = []
        seen: Set[str] = set()
        frontier = [cls]
        while frontier and len(chain) < limit:
            current = frontier.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            module = self.modules[current.module]
            for base_text in current.bases:
                resolved = self.resolve(module, base_text)
                if resolved is not None and resolved.kind == "class":
                    chain.append(resolved.qualname)
                    base_cls = self.class_info(resolved.qualname)
                    if base_cls is not None:
                        frontier.append(base_cls)
                else:
                    # Keep the absolute target when the import is known
                    # even though the module is outside the project roots.
                    binding = module.imports.get(base_text.partition(".")[0])
                    if binding is not None and "." not in base_text:
                        chain.append(binding.target)
                    else:
                        chain.append(base_text)
        return chain

    def call_graph(self) -> Dict[str, Set[str]]:
        """qualname -> resolved project callees (built once, cached)."""
        if self._call_graph is None:
            graph: Dict[str, Set[str]] = {}
            for fn in list(self.functions()):
                local_types = self.infer_local_types(fn)
                edges: Set[str] = set()
                for site in fn.calls:
                    target = self.resolve_call(fn, site, local_types)
                    if target is not None:
                        site.resolved = target
                        edges.add(target)
                graph[fn.qualname] = edges
            self._call_graph = graph
        return self._call_graph

    def callers_of(self, qualname: str) -> Set[str]:
        if self._reverse_calls is None:
            reverse: Dict[str, Set[str]] = {}
            for caller, callees in self.call_graph().items():
                for callee in callees:
                    reverse.setdefault(callee, set()).add(caller)
            self._reverse_calls = reverse
        return self._reverse_calls.get(qualname, set())

    def transitive_callees(
        self, qualname: str, limit: int = 2000
    ) -> Set[str]:
        """BFS closure over the call graph (bounded, cycle safe)."""
        graph = self.call_graph()
        seen: Set[str] = set()
        frontier = [qualname]
        while frontier and len(seen) < limit:
            current = frontier.pop(0)
            for callee in graph.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen


class ProjectLoader:
    """Parses project roots into a :class:`Project`.

    A *root* is a directory whose immediate children are top-level
    packages or modules: ``ProjectLoader(["src"])`` loads ``repro.*``;
    pointing it at a fixture directory loads the mini-packages inside.
    Files that fail to parse are recorded (and reported by the CLI), not
    fatal — one broken module must not hide findings in ninety others.
    """

    def __init__(self, roots: Sequence[str]) -> None:
        self.roots = [Path(root) for root in roots]
        self.parse_errors: List[str] = []

    def load(self) -> Project:
        modules: Dict[str, ModuleInfo] = {}
        for root in self.roots:
            for file_path in iter_python_files([str(root)]):
                name = self._module_name(root, file_path)
                if name is None:
                    continue
                try:
                    source = SourceModule.from_path(file_path)
                except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                    self.parse_errors.append(f"{file_path}: {exc}")
                    continue
                info = ModuleInfo(name=name, source=source)
                _ModuleBuilder(info).visit(source.tree)
                modules[name] = info
        return Project(modules)

    @staticmethod
    def _module_name(root: Path, file_path: Path) -> Optional[str]:
        try:
            relative = file_path.relative_to(root)
        except ValueError:
            return None
        parts = list(relative.with_suffix("").parts)
        if not parts:
            return None
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if not parts:
            return None
        return ".".join(parts)


# ----------------------------------------------------------- project rules


class ProjectRule:
    """Base class for whole-program rules (the RP2xx series).

    Unlike per-file rules, a project rule sees the complete
    :class:`Project` in one :meth:`check` call and is responsible for its
    own traversal; findings go through :meth:`ProjectContext.report`,
    which applies inline suppressions and records the owning module.
    """

    id: str = "RP000"
    name: str = "abstract-project-rule"
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, project: Project, ctx: "ProjectContext") -> None:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> Dict[str, object]:
        return {
            "id": cls.id,
            "name": cls.name,
            "severity": str(cls.severity),
            "scope": "project",
            "description": cls.description,
        }


_PROJECT_REGISTRY: List[Type[ProjectRule]] = []


def register_project_rule(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the registry."""
    if any(existing.id == rule_cls.id for existing in _PROJECT_REGISTRY):
        raise ValueError(f"duplicate project rule id {rule_cls.id}")
    _PROJECT_REGISTRY.append(rule_cls)
    register_rule_token(rule_cls.id, rule_cls.id)
    register_rule_token(rule_cls.name, rule_cls.id)
    return rule_cls


def all_project_rules() -> List[Type[ProjectRule]]:
    return list(_PROJECT_REGISTRY)


class ProjectContext:
    """Finding sink for project rules (suppression-aware)."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: List[Finding] = []

    def report(
        self, rule: ProjectRule, module: ModuleInfo, node: ast.AST, message: str
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end_line = getattr(node, "end_lineno", None) or line
        self.findings.append(
            Finding(
                path=module.path,
                line=line,
                col=col,
                rule_id=rule.id,
                rule_name=rule.name,
                severity=rule.severity,
                message=message,
                suppressed=finding_suppressed(
                    module.source, rule.id, rule.name, line, end_line
                ),
            )
        )


def analyze_project(
    roots: Sequence[str],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    per_file: bool = True,
) -> Report:
    """Run project rules (and, by default, all per-file rules) over roots.

    The per-file engine reuses the loader's parsed :class:`SourceModule`
    objects, so ``--project`` pays for parsing exactly once. ``select`` /
    ``ignore`` filter both rule families by id.
    """
    loader = ProjectLoader(roots)
    project = loader.load()
    chosen = all_project_rules()
    if select:
        chosen = [r for r in chosen if r.id in select]
    if ignore:
        chosen = [r for r in chosen if r.id not in ignore]
    report = Report(
        active_rules=[cls.describe() for cls in chosen]
    )
    report.parse_errors.extend(loader.parse_errors)
    if per_file:
        engine = Engine(select=select or None, ignore=ignore or None)
        report.active_rules = (
            [cls.describe() for cls in engine.rule_classes]
            + report.active_rules
        )
        for name in sorted(project.modules):
            report.findings.extend(
                engine.lint_module(project.modules[name].source)
            )
    report.files_scanned = len(project.modules)
    ctx = ProjectContext(project)
    for rule_cls in chosen:
        rule_cls().check(project, ctx)
    report.findings.extend(ctx.findings)
    return report
