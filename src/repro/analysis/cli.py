"""``repro-lint`` — the command-line front end of the analyzer.

Exit codes: 0 clean (suppressed and baselined findings allowed), 1 open
findings, 2 a file failed to parse or a CLI argument was invalid.

Examples::

    repro-lint src/repro                       # per-file lint of the library
    repro-lint --project                       # whole-program pass over src/
    repro-lint --project --baseline analysis/baseline.json
    repro-lint --project --write-baseline analysis/baseline.json
    repro-lint src/repro --format json         # machine-readable report
    repro-lint path.py --select RL001,RC101    # only these rules
    repro-lint --list-rules                    # rule catalogue
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Set

from ..errors import ConfigError
from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import Engine, all_rules, resolve_rule_tokens
from .project import all_project_rules, analyze_project

#: Default analysis root for ``--project`` when no paths are given.
_DEFAULT_PROJECT_ROOT = "src"


def _split_tokens(values: Sequence[str]) -> Set[str]:
    tokens: List[str] = []
    for value in values:
        tokens.extend(part for part in value.split(",") if part.strip())
    return resolve_rule_tokens(tokens)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis and contract verification for the QoS switch simulator.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--project",
        action="store_true",
        help="whole-program analysis: parse the tree once, run the RP2xx "
        "cross-module rules in addition to the per-file rules "
        f"(paths are analysis roots; default: {_DEFAULT_PROJECT_ROOT}/)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="grandfather findings listed in this baseline file; only "
        "regressions affect the exit code",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current open findings to FILE as the new baseline "
        "and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--force-guarded",
        action="store_true",
        help="treat every file as determinism-guarded (apply RL002/RL007/RL008 everywhere)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _render_rule_list() -> str:
    lines = []
    for rule in all_rules():
        scope = "guarded packages" if rule.guarded_only else "all files"
        lines.append(f"{rule.id}  {rule.name:<24} [{rule.severity}] ({scope})")
        lines.append(f"       {rule.description}")
    for project_rule in all_project_rules():
        lines.append(
            f"{project_rule.id}  {project_rule.name:<24} "
            f"[{project_rule.severity}] (whole program)"
        )
        lines.append(f"       {project_rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_render_rule_list())
        return 0
    if options.baseline and options.write_baseline:
        parser.error("--baseline and --write-baseline are mutually exclusive")
    if not options.project and (options.baseline or options.write_baseline):
        parser.error("--baseline/--write-baseline require --project")
    if not options.paths and not options.project:
        parser.error("no paths given (or use --project / --list-rules)")
    try:
        select = _split_tokens(options.select)
        ignore = _split_tokens(options.ignore)
    except ValueError as exc:
        parser.error(str(exc))
    if options.project:
        roots = options.paths or [_DEFAULT_PROJECT_ROOT]
        report = analyze_project(roots, select=select or None, ignore=ignore or None)
    else:
        runner = Engine(
            select=select or None,
            ignore=ignore or None,
            force_guarded=options.force_guarded,
        )
        report = runner.lint_paths(options.paths)
    if options.write_baseline:
        count = write_baseline(report, options.write_baseline)
        print(f"wrote {count} baseline entries to {options.write_baseline}")
        return 0 if not report.parse_errors else 2
    stale = 0
    if options.baseline:
        try:
            stale = apply_baseline(report, load_baseline(options.baseline))
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if options.format == "json":
        print(report.to_json())
    else:
        print(
            report.to_text(
                show_suppressed=options.show_suppressed,
                per_rule_summary=options.project,
            )
        )
        if stale:
            print(
                f"note: {stale} stale baseline entries no longer match any "
                "finding; regenerate with --write-baseline"
            )
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
