"""``repro-lint`` — the command-line front end of the analyzer.

Exit codes: 0 clean (suppressed findings allowed), 1 open findings,
2 a file failed to parse or a CLI argument was invalid.

Examples::

    repro-lint src/repro                       # lint the library
    repro-lint src/repro --format json         # machine-readable report
    repro-lint path.py --select RL001,RC101    # only these rules
    repro-lint --list-rules                    # rule catalogue
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Set

from .engine import Engine, all_rules, resolve_rule_tokens


def _split_tokens(values: Sequence[str]) -> Set[str]:
    tokens: List[str] = []
    for value in values:
        tokens.extend(part for part in value.split(",") if part.strip())
    return resolve_rule_tokens(tokens)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis and contract verification for the QoS switch simulator.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--force-guarded",
        action="store_true",
        help="treat every file as determinism-guarded (apply RL002/RL007/RL008 everywhere)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _render_rule_list() -> str:
    lines = []
    for rule in all_rules():
        scope = "guarded packages" if rule.guarded_only else "all files"
        lines.append(f"{rule.id}  {rule.name:<24} [{rule.severity}] ({scope})")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_render_rule_list())
        return 0
    if not options.paths:
        parser.error("no paths given (or use --list-rules)")
    try:
        select = _split_tokens(options.select)
        ignore = _split_tokens(options.ignore)
    except ValueError as exc:
        parser.error(str(exc))
    runner = Engine(
        select=select or None,
        ignore=ignore or None,
        force_guarded=options.force_guarded,
    )
    report = runner.lint_paths(options.paths)
    if options.format == "json":
        print(report.to_json())
    else:
        print(report.to_text(show_suppressed=options.show_suppressed))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
