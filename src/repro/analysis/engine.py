"""The ``reprolint`` rule engine: modules, suppressions, dispatch, reports.

The engine is deliberately small and dependency-free (stdlib ``ast`` +
``tokenize`` only) so it can run in CI before the package's own
dependencies are installed, and so it can lint itself (``repro-lint
src/repro`` covers ``repro.analysis`` too).

Design:

* A :class:`Rule` declares which AST node types it wants via
  ``node_types``; the engine walks each module's tree **once** and
  dispatches every node to the rules subscribed to its type. Rules that
  need whole-function context (the contract checks) simply subscribe to
  ``ast.FunctionDef`` and walk the function body themselves.
* Findings are reported through :meth:`ModuleContext.report`, which
  applies the suppression table before recording anything. Suppressed
  findings are kept (marked ``suppressed=True``) so ``--show-suppressed``
  and the JSON report can audit them, but they never affect the exit code.
* *Guarded* modules are the packages whose behavior feeds arbitration
  decisions (``repro.core``, ``repro.switch``, ``repro.qos``,
  ``repro.multiswitch``). Rules with ``guarded_only=True`` fire only
  there: wall-clock reads are fine in a benchmark harness but not in the
  simulator's hot path.

Suppression syntax (checked by tests in ``tests/test_analysis_rules.py``)::

    x = datetime.now()  # reprolint: disable=wall-clock
    # reprolint: disable=RL003        <- own-line comment guards the next line
    # reprolint: disable-file=RL008   <- disables a rule for the whole module

Rule IDs (``RL001``) and rule names (``unseeded-rng``) are interchangeable
in suppression comments; ``all`` disables every rule for that line.
"""

from __future__ import annotations

import ast
import enum
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

#: Sub-packages of ``repro`` whose modules are *guarded*: code here drives
#: arbitration decisions, so determinism-sensitive rules apply.
GUARDED_PACKAGES = ("core", "switch", "qos", "multiswitch")

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\-\s]+)"
)


class Severity(enum.Enum):
    """Finding severity. Any unsuppressed finding fails the lint run;
    severity exists so reports can rank output, not so warnings can pass."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    severity: Severity
    message: str
    suppressed: bool = False
    #: True when a committed baseline file grandfathers this finding; like
    #: suppression it keeps the finding visible but off the exit code.
    baselined: bool = False

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": str(self.severity),
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        mark = ""
        if self.suppressed:
            mark = " (suppressed)"
        elif self.baselined:
            mark = " (baselined)"
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}{mark}"
        )


class Rule:
    """Base class for all reprolint rules.

    Subclasses set the class attributes and implement :meth:`visit`; the
    engine instantiates one rule object per module visit, so instance
    attributes may carry per-module scratch state.
    """

    id: str = "RL000"
    name: str = "abstract-rule"
    severity: Severity = Severity.ERROR
    description: str = ""
    #: AST node classes this rule wants to see.
    node_types: Tuple[type, ...] = ()
    #: When True the rule fires only inside GUARDED_PACKAGES modules.
    guarded_only: bool = False

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> None:
        raise NotImplementedError

    def finish(self, ctx: "ModuleContext") -> None:
        """Called once after the walk; override for module-end checks."""

    @classmethod
    def describe(cls) -> Dict[str, object]:
        return {
            "id": cls.id,
            "name": cls.name,
            "severity": str(cls.severity),
            "guarded_only": cls.guarded_only,
            "description": cls.description,
        }


#: Global rule registry, populated by the :func:`register` decorator when
#: ``repro.analysis.rules`` / ``repro.analysis.contracts`` are imported.
_REGISTRY: List[Type[Rule]] = []


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if any(existing.id == rule_cls.id for existing in _REGISTRY):
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY.append(rule_cls)
    return rule_cls


def all_rules() -> List[Type[Rule]]:
    """Registered rules, in registration (== documentation) order."""
    return list(_REGISTRY)


#: id/name tokens contributed by rule families living outside this module
#: (the project rules register theirs here, avoiding a circular import).
_EXTRA_RULE_TOKENS: Dict[str, str] = {}


def register_rule_token(key: str, rule_id: str) -> None:
    """Make ``key`` (an id or name) resolvable by :func:`resolve_rule_tokens`."""
    _EXTRA_RULE_TOKENS[key.lower()] = rule_id


def resolve_rule_tokens(tokens: Iterable[str]) -> Set[str]:
    """Map a mix of rule ids/names to canonical rule ids.

    Unknown tokens raise ``ValueError`` so CLI typos fail loudly.
    """
    by_key = dict(_EXTRA_RULE_TOKENS)
    for rule in all_rules():
        by_key[rule.id.lower()] = rule.id
        by_key[rule.name.lower()] = rule.id
    resolved = set()
    for token in tokens:
        key = token.strip().lower()
        if not key:
            continue
        if key not in by_key:
            raise ValueError(f"unknown rule {token!r}")
        resolved.add(by_key[key])
    return resolved


@dataclass
class SourceModule:
    """A parsed source file plus everything rules need to inspect it."""

    path: str
    source: str
    tree: ast.Module
    #: dotted-module path parts starting at the ``repro`` package root,
    #: e.g. ``("repro", "core", "ssvc")``; empty when not under ``repro``.
    parts: Tuple[str, ...]
    #: line -> set of rule ids/names suppressed on that line ("all" allowed)
    line_suppressions: Dict[int, Set[str]]
    #: rule ids/names suppressed for the whole file
    file_suppressions: Set[str]

    @classmethod
    def from_source(cls, source: str, path: str) -> "SourceModule":
        tree = ast.parse(source, filename=path)
        line_sup, file_sup = _parse_suppressions(source)
        return cls(
            path=path,
            source=source,
            tree=tree,
            parts=_module_parts(path),
            line_suppressions=line_sup,
            file_suppressions=file_sup,
        )

    @classmethod
    def from_path(cls, path: Path) -> "SourceModule":
        return cls.from_source(path.read_text(encoding="utf-8"), str(path))

    @property
    def guarded(self) -> bool:
        """True when the module lives in a determinism-guarded package."""
        return len(self.parts) >= 2 and self.parts[1] in GUARDED_PACKAGES


def _module_parts(path: str) -> Tuple[str, ...]:
    parts = Path(path).with_suffix("").parts
    for i, part in enumerate(parts):
        if part == "repro":
            return tuple(parts[i:])
    return ()


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract ``# reprolint:`` comments via tokenize (never from strings)."""
    line_sup: Dict[int, Set[str]] = {}
    file_sup: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    # Best effort: an untokenizable module still gets linted, just without
    # suppression comments (the parse error surfaces elsewhere anyway).
    # reprolint: disable=swallowed-without-record
    except tokenize.TokenError:  # incomplete final block etc. — best effort
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        kind, raw = match.groups()
        names = {t.strip().lower() for t in raw.split(",") if t.strip()}
        if kind == "disable-file":
            file_sup |= names
            continue
        line = tok.start[0]
        line_sup.setdefault(line, set()).update(names)
        # An own-line comment guards the statement that follows it.
        own_line = tok.line[: tok.start[1]].strip() == ""
        if own_line:
            line_sup.setdefault(line + 1, set()).update(names)
    return line_sup, file_sup


class ModuleContext:
    """Per-module state handed to rules during the walk."""

    def __init__(self, module: SourceModule, force_guarded: bool = False) -> None:
        self.module = module
        self.guarded = module.guarded or force_guarded
        self.findings: List[Finding] = []

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        """Record a finding at ``node``, honouring suppression comments."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end_line = getattr(node, "end_lineno", None) or line
        self.findings.append(
            Finding(
                path=self.module.path,
                line=line,
                col=col,
                rule_id=rule.id,
                rule_name=rule.name,
                severity=rule.severity,
                message=message,
                suppressed=self._is_suppressed(rule, line, end_line),
            )
        )

    def _is_suppressed(self, rule: Rule, line: int, end_line: int) -> bool:
        return finding_suppressed(
            self.module, rule.id, rule.name, line, end_line
        )


def finding_suppressed(
    module: SourceModule, rule_id: str, rule_name: str, line: int, end_line: int
) -> bool:
    """Shared suppression check for per-file and project-rule findings.

    The same ``# reprolint: disable=`` comment grammar governs both rule
    families, so a justified inline suppression silences a whole-program
    rule (e.g. RP203) exactly like a local one.
    """
    keys = {rule_id.lower(), rule_name.lower(), "all"}
    if keys & module.file_suppressions:
        return True
    for physical in range(line, end_line + 1):
        if keys & module.line_suppressions.get(physical, set()):
            return True
    return False


@dataclass
class Report:
    """Aggregate result of a lint run over one or more paths."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)
    active_rules: List[Dict[str, object]] = field(default_factory=list)

    @property
    def open_findings(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed and not f.baselined]

    @property
    def suppressed_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined and not f.suppressed]

    @property
    def exit_code(self) -> int:
        if self.parse_errors:
            return 2
        return 1 if self.open_findings else 0

    def summary(self) -> Dict[str, object]:
        per_rule: Dict[str, int] = {}
        for finding in self.open_findings:
            per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
        return {
            "files_scanned": self.files_scanned,
            "open_findings": len(self.open_findings),
            "suppressed_findings": len(self.suppressed_findings),
            "baselined_findings": len(self.baselined_findings),
            "parse_errors": len(self.parse_errors),
            "findings_per_rule": dict(sorted(per_rule.items())),
        }

    def to_json(self) -> str:
        return json.dumps(
            {
                "tool": "reprolint",
                "rules": self.active_rules,
                "summary": self.summary(),
                "findings": [f.to_dict() for f in sorted(self.findings, key=Finding.sort_key)],
                "parse_errors": self.parse_errors,
            },
            indent=2,
            sort_keys=False,
        )

    def to_text(
        self, show_suppressed: bool = False, per_rule_summary: bool = False
    ) -> str:
        lines = []
        for error in self.parse_errors:
            lines.append(f"parse error: {error}")
        shown = self.findings if show_suppressed else self.open_findings
        for finding in sorted(shown, key=Finding.sort_key):
            lines.append(finding.render())
        summary = self.summary()
        if per_rule_summary:
            per_rule = summary["findings_per_rule"]
            assert isinstance(per_rule, dict)
            lines.append("findings per rule:")
            if per_rule:
                for rule_id, count in per_rule.items():
                    lines.append(f"  {rule_id}: {count}")
            else:
                lines.append("  (none)")
        tail = (
            f"{summary['files_scanned']} file(s) scanned, "
            f"{summary['open_findings']} finding(s), "
            f"{summary['suppressed_findings']} suppressed"
        )
        baselined = summary["baselined_findings"]
        if isinstance(baselined, int) and baselined:
            tail += f", {baselined} baselined"
        lines.append(tail)
        return "\n".join(lines)


class Engine:
    """Runs a set of rules over modules and collects a :class:`Report`."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        select: Optional[Set[str]] = None,
        ignore: Optional[Set[str]] = None,
        force_guarded: bool = False,
    ) -> None:
        chosen = list(rules) if rules is not None else all_rules()
        if select:
            chosen = [r for r in chosen if r.id in select]
        if ignore:
            chosen = [r for r in chosen if r.id not in ignore]
        self.rule_classes = chosen
        self.force_guarded = force_guarded

    # ------------------------------------------------------------------ runs

    def lint_module(self, module: SourceModule) -> List[Finding]:
        """Single-pass walk of one module through all selected rules."""
        ctx = ModuleContext(module, force_guarded=self.force_guarded)
        rules = [cls() for cls in self.rule_classes]
        dispatch: Dict[type, List[Rule]] = {}
        for rule in rules:
            if rule.guarded_only and not ctx.guarded:
                continue
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        for node in ast.walk(module.tree):
            for rule in dispatch.get(type(node), ()):
                rule.visit(node, ctx)
        for rule in rules:
            if rule.guarded_only and not ctx.guarded:
                continue
            rule.finish(ctx)
        return ctx.findings

    def lint_source(self, source: str, path: str = "<string>") -> List[Finding]:
        return self.lint_module(SourceModule.from_source(source, path))

    def lint_paths(self, paths: Sequence[str]) -> Report:
        report = Report(active_rules=[cls.describe() for cls in self.rule_classes])
        existing = []
        for raw in paths:
            if Path(raw).exists():
                existing.append(raw)
            else:
                report.parse_errors.append(f"{raw}: path does not exist")
        for file_path in iter_python_files(existing):
            try:
                module = SourceModule.from_path(file_path)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                report.parse_errors.append(f"{file_path}: {exc}")
                continue
            report.findings.extend(self.lint_module(module))
            report.files_scanned += 1
        return report


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Expand files/directories into a deterministic list of ``.py`` files."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(p for p in path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate.suffix != ".py" or candidate in seen:
                continue
            seen.add(candidate)
            yield candidate


# --------------------------------------------------------------- AST helpers


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def constant_int(node: Optional[ast.AST]) -> Optional[int]:
    """The integer value of a (possibly negated) literal, else None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = constant_int(node.operand)
        return -inner if inner is not None else None
    return None
