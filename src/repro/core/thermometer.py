"""Thermometer-code registers (paper Fig. 1a and Section 3.1).

The auxVC counters are too wide to map directly onto the output bus, so the
hardware exposes only their most-significant bits, encoded as a *thermometer
code*: a bit vector whose first ``level + 1`` positions are 1 and the rest 0.
A flow at coarse level ``L`` senses the bitline lane ``L``; smaller levels
mean smaller auxVC and therefore higher priority.

The register supports exactly the update operations the paper describes:

* *shift up* by one position each time the significant bits of auxVC grow
  (a packet transmission carried into the MSBs);
* *shift down* by one position when the real-time clock counter saturates
  (SUBTRACT management policy);
* *halve* — "the auxVC register is shifted down by 1 position and the top
  half of the thermometer code is copied to the bottom half and then reset"
  (HALVE policy);
* *reset* to all-zero-level (RESET policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

from ..errors import ConfigError


@dataclass
class ThermometerCode:
    """A thermometer-coded priority level with ``positions`` lanes.

    ``level`` ranges over ``[0, positions - 1]``; bit ``i`` of the vector is
    1 iff ``i <= level``. Level 0 (vector ``100...0``) is the highest
    arbitration priority; the first bit is always 1, matching the paper's
    ``[1, T1, ..., T(n-1)]`` layout.
    """

    positions: int
    level: int = 0
    saturations: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.positions < 1:
            raise ConfigError(f"positions must be >= 1, got {self.positions}")
        if not 0 <= self.level < self.positions:
            raise ConfigError(
                f"level must be in [0, {self.positions - 1}], got {self.level}"
            )

    # ------------------------------------------------------------------ bits

    @property
    def bits(self) -> Tuple[int, ...]:
        """The bit vector ``(T0, T1, ..., T(n-1))`` with T0 always 1."""
        return tuple(1 if i <= self.level else 0 for i in range(self.positions))

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "ThermometerCode":
        """Decode a bit vector, validating the thermometer property.

        Raises:
            ConfigError: if the vector is empty, contains values other than
                0/1, does not start with 1, or has a 1 after a 0.
        """
        vec = tuple(bits)
        if not vec:
            raise ConfigError("thermometer bit vector must be non-empty")
        if any(b not in (0, 1) for b in vec):
            raise ConfigError(f"thermometer bits must be 0/1, got {vec}")
        if vec[0] != 1:
            raise ConfigError(f"thermometer bit 0 must be 1, got {vec}")
        level = 0
        for i in range(1, len(vec)):
            if vec[i] == 1:
                if vec[i - 1] == 0:
                    raise ConfigError(f"not a thermometer code: {vec}")
                level = i
        return cls(positions=len(vec), level=level)

    @classmethod
    def from_counter(cls, counter_value: float, quantum: int, positions: int) -> "ThermometerCode":
        """Quantize an auxVC value (in cycles) to a coarse level.

        Values at or above ``positions * quantum`` saturate at the top level
        — in hardware the finite counter would have triggered a management
        event; clamping models the instant before that event.
        """
        if quantum <= 0:
            raise ConfigError(f"quantum must be positive, got {quantum}")
        if counter_value < 0:
            raise ConfigError(f"counter_value must be >= 0, got {counter_value}")
        level = min(int(counter_value // quantum), positions - 1)
        return cls(positions=positions, level=level)

    # --------------------------------------------------------------- updates

    def shift_up(self) -> bool:
        """Advance one level (significant bits of auxVC grew by one).

        Returns ``True`` if the register saturated (was already at the top
        level) — the caller should trigger its counter-management policy.
        """
        if self.level + 1 >= self.positions:
            self.saturations += 1
            return True
        self.level += 1
        return False

    def shift_down(self, amount: int = 1) -> None:
        """Drop ``amount`` levels, flooring at level 0 (SUBTRACT policy)."""
        if amount < 0:
            raise ConfigError(f"shift_down amount must be >= 0, got {amount}")
        self.level = max(self.level - amount, 0)

    def halve(self) -> None:
        """Divide the encoded level by two (HALVE policy).

        Copying the top half of the vector onto the bottom half and clearing
        the top is exactly an integer division of the level by two.
        """
        self.level //= 2

    def reset(self) -> None:
        """Clear to the highest-priority level (RESET policy)."""
        self.level = 0

    # ------------------------------------------------------------ comparison

    def beats(self, other: "ThermometerCode") -> bool:
        """True when this code wins arbitration outright over ``other``.

        Smaller auxVC (hence smaller level) wins; equal levels are a tie to
        be broken by LRG.
        """
        return self.level < other.level

    def ties(self, other: "ThermometerCode") -> bool:
        """True when both codes encode the same coarse level."""
        return self.level == other.level

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "[" + ",".join(str(b) for b in self.bits) + "]"
