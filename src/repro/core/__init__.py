"""Core QoS algorithms of the paper.

This package holds the algorithmic heart of the reproduction, independent of
both the cycle-level simulator (``repro.switch``) and the wire-level circuit
model (``repro.circuit``):

* :mod:`repro.core.virtual_clock` — auxVC counters and Vtick derivation.
* :mod:`repro.core.thermometer` — thermometer-code registers (Fig. 1a).
* :mod:`repro.core.lrg` — least-recently-granted priority state.
* :mod:`repro.core.ssvc` — the SSVC coarse-grained Virtual Clock core with
  the three finite-counter management policies.
* :mod:`repro.core.bandwidth` — per-output bandwidth reservation/admission.
* :mod:`repro.core.gl_bound` — Guaranteed Latency bound math (Eqs. 1-3).
* :mod:`repro.core.arbitration` — request/grant value types shared by all
  arbiters.
* :mod:`repro.core.matching` — round-robin pointers, keyed-hash
  queue-proportional sampling, and the :class:`~repro.core.matching.Matching`
  value type used by the iterative VOQ schedulers.
"""

from .arbitration import Grant, Request
from .bandwidth import BandwidthAllocator, Reservation
from .gl_bound import burst_budgets, gl_latency_bound
from .lrg import LRGState
from .matching import Matching, keyed_draw, round_robin_pick, sample_proportional
from .ssvc import SSVCCore
from .thermometer import ThermometerCode
from .virtual_clock import VirtualClockCounter, compute_vtick

__all__ = [
    "BandwidthAllocator",
    "Grant",
    "LRGState",
    "Matching",
    "Request",
    "Reservation",
    "SSVCCore",
    "ThermometerCode",
    "VirtualClockCounter",
    "burst_budgets",
    "compute_vtick",
    "gl_latency_bound",
    "keyed_draw",
    "round_robin_pick",
    "sample_proportional",
]
