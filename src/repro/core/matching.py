"""Matching primitives shared by the iterative VOQ schedulers.

The input-queued schedulers in :mod:`repro.qos` (iSLIP, QPS-r, SW-QPS)
are built from three deterministic ingredients:

* :class:`Matching` — the value object one scheduling decision produces:
  a conflict-free set of (input, output) pairs plus diagnostics;
* :func:`round_robin_pick` — the rotating-priority selection both iSLIP
  phases use (grant pointers at outputs, accept pointers at inputs);
* :func:`keyed_draw` / :func:`sample_proportional` — queue-proportional
  sampling driven by a keyed blake2b hash instead of RNG state, so a
  draw depends only on ``(seed, cycle, round, port)`` and is therefore
  bit-identical across kernels, process fan-out, and resumed sweeps
  (the same stateless-draw idiom as :mod:`repro.faults.injector`).

Everything here is integer arithmetic — no floats enter any grant
decision, matching the repo-wide integer-exact arbitration contract
(docs/KERNELS.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from ..errors import ArbitrationError


@dataclass(frozen=True)
class Matching:
    """One scheduling decision of an iterative VOQ scheduler.

    Attributes:
        pairs: matched ``(input, output)`` pairs; each input and each
            output appears at most once (validated on construction).
        iterations: request/grant/accept (or propose/accept) rounds the
            scheduler actually ran to produce this matching.
        proposals: total requests/proposals examined across those rounds
            (feeds the ``voq.proposals`` probe counter).
    """

    pairs: Tuple[Tuple[int, int], ...]
    iterations: int = 1
    proposals: int = 0

    def __post_init__(self) -> None:
        inputs = [i for i, _ in self.pairs]
        outputs = [o for _, o in self.pairs]
        if len(set(inputs)) != len(inputs) or len(set(outputs)) != len(outputs):
            raise ArbitrationError(
                f"matching is not conflict-free: inputs {sorted(inputs)}, "
                f"outputs {sorted(outputs)}"
            )

    def __len__(self) -> int:
        return len(self.pairs)


def round_robin_pick(candidates: Sequence[int], pointer: int) -> int:
    """The first candidate at or after ``pointer``, wrapping around.

    This is the rotating-priority selection of the iSLIP grant and accept
    phases: ports are scanned in increasing index order starting at the
    pointer, so the port the pointer rests on has highest priority and
    the one just granted (pointer = winner + 1) has lowest.

    Args:
        candidates: strictly increasing port indices (the callers build
            them from sorted dict iteration).
        pointer: current round-robin pointer position.

    Raises:
        ArbitrationError: if ``candidates`` is empty or unsorted (a
            scheduler bug — phases must present sorted request sets).
    """
    if not candidates:
        raise ArbitrationError("round_robin_pick over no candidates")
    previous = -1
    for port in candidates:
        if port <= previous:
            raise ArbitrationError(
                f"candidates must be strictly increasing, got {list(candidates)}"
            )
        previous = port
    for port in candidates:
        if port >= pointer:
            return port
    return candidates[0]


def keyed_draw(*key: int) -> int:
    """A 64-bit non-negative integer determined entirely by ``key``.

    blake2b over the key tuple, same construction as the fault injector's
    stateless draws: no RNG object, no call-order dependence — the draw
    for ``(seed, cycle, round, port)`` is the same whoever asks first.
    """
    material = ",".join(str(part) for part in key).encode("ascii")
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def sample_proportional(weights: Mapping[int, int], *key: int) -> int:
    """Pick a key of ``weights`` with probability proportional to weight.

    The queue-proportional sampling step of QPS-r / SW-QPS: an input
    samples one output with probability ``voq_len / total_backlog``. The
    draw is :func:`keyed_draw` reduced modulo the total weight, then
    located by walking the keys in increasing order — all integers, so
    the decision replays exactly.

    Args:
        weights: positive integer weight per candidate (a VOQ backlog in
            flits); iteration is over ``sorted(weights)`` so dict
            insertion order cannot leak into the decision.

    Raises:
        ArbitrationError: if ``weights`` is empty or any weight is
            non-positive (empty VOQs must be filtered before sampling).
    """
    if not weights:
        raise ArbitrationError("sample_proportional over no candidates")
    total = 0
    for candidate in weights:
        weight = weights[candidate]
        if weight <= 0:
            raise ArbitrationError(
                f"non-positive weight {weight} for candidate {candidate}"
            )
        total += weight
    point = keyed_draw(*key) % total
    cumulative = 0
    for candidate in sorted(weights):
        cumulative += weights[candidate]
        if point < cumulative:
            return candidate
    raise ArbitrationError("sample walk exhausted weights")  # pragma: no cover
