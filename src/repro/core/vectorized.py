"""Integer-exact vectorized arbitration primitives (array kernel backend).

The array kernel (:mod:`repro.switch.array_kernel`) batches one cycle's
arbitration across all outputs at once. This module holds the pure
building blocks it composes, each the element-wise twin of a scalar
routine elsewhere in :mod:`repro.core`:

* :func:`thermometer_levels` — :meth:`ThermometerCode.from_counter`
  broadcast over an auxVC counter matrix;
* :func:`epoch_decay` — the SUBTRACT-mode lazy window shift of
  :meth:`SSVCCore._sync`, applied eagerly to a whole matrix;
* :func:`lrg_commit` / :func:`lrg_select` — the self-updating
  least-recently-granted order of :class:`LRGState` as a rank vector;
* :func:`coarse_row` — the class-precedence of
  :meth:`InputPort.head_for_output` plus the GL/GB/BE plane priority of
  :class:`ThreeClassArbiter` collapsed into one integer band per input;
* :func:`composite_key` / :func:`masked_argmin` — "smallest coarse band
  wins, LRG breaks ties" as a single argmin over a fused integer key;
* :func:`gl_eligibility_threshold` — the GL policer's float clock
  predicate folded into one integer cycle threshold, so the kernel's
  per-cycle eligibility test is an integer compare.

Everything here works on **integer dtypes only** — the grant path never
compares floats (the one float input, the policer clock, is converted to
an integer threshold once per transmission, outside the per-cycle loop).
Property tests (``tests/test_vectorized_properties.py``) pin each helper
element-wise against its scalar counterpart on randomized matrices.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np
import numpy.typing as npt

IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]

#: Coarse band of an input presenting no head for the output: larger than
#: any real band (GL=0, GB=1..levels, BE/demoted-GL=levels+1) for every
#: supported ``levels`` (<= 2**16 significant-bit levels).
NO_REQUEST: int = 1 << 20

#: Sentinel for masked-out entries of a composite-key row. Strictly larger
#: than any real key (``NO_REQUEST * radix + rank < 2**31``) so a row
#: whose minimum reaches this value has no eligible requester.
MASKED: int = 1 << 40

#: GL threshold meaning "never eligible" (zero reserved rate).
NEVER_ELIGIBLE: int = 1 << 60

#: GL threshold meaning "always eligible" (policing disabled).
ALWAYS_ELIGIBLE: int = 0


def thermometer_levels(
    value_num: IntArray, quantum_num: Union[int, IntArray], levels: int
) -> IntArray:
    """Coarse thermometer level per counter, vectorized.

    Element-wise ``min(value_num // quantum_num, levels - 1)`` — the exact
    quantization of :meth:`repro.core.thermometer.ThermometerCode.from_counter`
    and :meth:`repro.core.ssvc.SSVCCore.level`, with both operands in the
    core's integer subtick units. ``quantum_num`` may be a scalar or a
    broadcastable array (a per-output column of subtick quanta).
    """
    result: IntArray = np.minimum(value_num // quantum_num, levels - 1)
    return result


def epoch_decay(
    value_num: IntArray,
    delta_epochs: int,
    quantum_num: Union[int, IntArray],
    levels: int,
    out: Optional[IntArray] = None,
) -> IntArray:
    """SUBTRACT-mode window decay over ``delta_epochs`` quanta, vectorized.

    Mirrors :meth:`SSVCCore._sync`: ``max(value - delta * quantum, 0)``.
    The multiplier is clamped to ``levels`` — exact, because a saturating
    register never exceeds ``levels * quantum`` subticks, so any larger
    delta already floors every counter at zero — which keeps the product
    inside int64 even after very long idle gaps (``delta`` can reach
    ``horizon / quantum`` while ``quantum_num`` carries a 2**50-scale
    subtick denominator).
    """
    if delta_epochs <= 0:
        if out is not None and out is not value_num:
            np.copyto(out, value_num)
            return out
        return value_num
    decay = min(delta_epochs, levels) * np.asarray(quantum_num)
    result: IntArray = np.subtract(value_num, decay, out=out)
    np.maximum(result, 0, out=result)
    return result


def lrg_ranks(order: Sequence[int]) -> IntArray:
    """Rank vector (0 = highest priority) from an LRG priority order."""
    n = len(order)
    ranks = np.empty(n, dtype=np.int64)
    for rank, inp in enumerate(order):
        ranks[inp] = rank
    return ranks


def lrg_select(rank_row: IntArray, candidates: BoolArray) -> int:
    """Least-recently-granted candidate, or -1 when none request.

    Twin of :meth:`LRGState.arbitrate`: the requesting input with the
    smallest rank wins. Ranks are a permutation, so the minimum is unique
    # (argmin's lowest-index tie-break can never engage on a valid row).
    """
    if not bool(candidates.any()):
        return -1
    masked = np.where(candidates, rank_row, MASKED)
    # tie-break: ranks are unique, so argmin has a single minimum.
    return int(np.argmin(masked))


def lrg_commit(rank_row: IntArray, winner: int) -> None:
    """Demote ``winner`` below all others, in place.

    Twin of :meth:`LRGState.grant`: the winner moves to the bottom of the
    priority order (rank ``n - 1``) and everyone previously below it moves
    up one slot.
    """
    old = int(rank_row[winner])
    rank_row[rank_row > old] -= 1
    rank_row[winner] = rank_row.shape[0] - 1


def coarse_row(
    gl_here: BoolArray,
    gb_here: BoolArray,
    be_here: BoolArray,
    gb_levels: IntArray,
    allow_gl: bool,
    levels: int,
) -> IntArray:
    """Coarse priority band per input for one output, vectorized.

    Collapses :meth:`InputPort.head_for_output` (which head each input
    presents) and the three-class plane priority (GL > GB > BE) into one
    integer band: an eligible GL head is band 0, a GB head is
    ``1 + level`` (so better levels beat worse ones and every GB band
    beats BE), and a BE head — or a policer-demoted GL head riding along
    as best effort — is ``levels + 1``. Inputs presenting nothing get
    :data:`NO_REQUEST`.
    """
    be_band = levels + 1
    gb_banded = np.where(gb_here, gb_levels + 1, NO_REQUEST)
    if allow_gl:
        banded: IntArray = np.where(
            gl_here,
            0,
            np.where(gb_here, gb_banded, np.where(be_here, be_band, NO_REQUEST)),
        )
        return banded
    # Policer-throttled GL: the GB/BE head in front requests instead, and
    # the GL head itself is only presented when nothing else wants the
    # output (best-effort demotion).
    demoted: IntArray = np.where(
        gb_here, gb_banded, np.where(be_here | gl_here, be_band, NO_REQUEST)
    )
    return demoted


def composite_key(coarse: IntArray, rank: IntArray, radix: int) -> IntArray:
    """Fuse coarse band and LRG rank into one comparable integer key.

    ``key = coarse * radix + rank``: any band difference dominates
    (``rank < radix``), and within a band the least-recently-granted input
    wins — exactly the scalar stack's "best level, LRG ties" rule. Keys
    within a row are unique because ranks are a permutation.
    """
    keys: IntArray = coarse * radix + rank
    return keys


def masked_argmin(keys: IntArray, mask: BoolArray) -> int:
    """Winner of one output's composite-key row, or -1 when none request.

    ``mask`` marks inputs allowed to compete (not busy, non-empty, not
    stalled/dead). A no-request entry carries ``NO_REQUEST * radix + rank``
    (see :func:`composite_key`), so any key at or above
    ``NO_REQUEST * radix`` means nothing competed.
    """
    masked = np.where(mask, keys, MASKED)
    # tie-break: composite keys are unique within a row (rank is a
    # permutation), so argmin's lowest-index rule never engages.
    winner = int(np.argmin(masked))
    if int(masked[winner]) >= NO_REQUEST * keys.shape[-1]:
        return -1
    return winner


def ssvc_select(level_row: IntArray, rank_row: IntArray, candidates: BoolArray) -> int:
    """SSVC winner among GB candidates, or -1 when none request.

    Twin of :meth:`SSVCCore.select`: the smallest coarse level wins
    outright; ties within a level fall to the least-recently-granted input.
    ``level_row`` holds each candidate's coarse thermometer level.
    """
    if not bool(candidates.any()):
        return -1
    n = rank_row.shape[0]
    keys = np.where(candidates, level_row * n + rank_row, MASKED)
    # tie-break: level*n+rank is unique per input (ranks are a
    # permutation), so argmin's lowest-index rule never engages.
    return int(np.argmin(keys))


def gl_eligibility_threshold(
    usage_clock: float,
    burst_window: Optional[float],
    reserved_rate: float,
) -> int:
    """Smallest integer cycle at which the GL plane is eligible.

    Between transmissions the policer clock is frozen, and
    :meth:`GLPolicer.eligible` — ``max(clock - now, 0.0) <= burst_window``
    — is monotone in ``now``, so eligibility over integer cycles is fully
    described by one threshold: eligible iff ``now >= threshold``. The
    threshold is located by evaluating the policer's *exact float
    predicate* on a handful of integers around ``ceil(clock - window)``,
    so the integer compare the kernel performs each cycle is bit-identical
    to the float compare the reference kernel performs.

    Returns :data:`NEVER_ELIGIBLE` for a zero reservation (the rate check
    precedes the window check, matching the policer) and
    :data:`ALWAYS_ELIGIBLE` when policing is disabled.
    """
    if reserved_rate <= 0.0:
        return NEVER_ELIGIBLE
    if burst_window is None:
        return ALWAYS_ELIGIBLE
    guess = math.ceil(usage_clock - float(burst_window))
    t = max(guess - 4, 0)
    # Walk to the first integer satisfying the exact predicate; float
    # rounding shifts the analytic boundary by far less than the 4-cycle
    # back-off at these magnitudes, and monotonicity makes the first hit
    # the true threshold.
    while max(usage_clock - t, 0.0) > burst_window:
        t += 1
    return t


def gl_eligibility_thresholds(
    clocks: Sequence[float],
    burst_window: Optional[float],
    reserved_rate: float,
) -> List[int]:
    """Per-output thresholds for a vector of policer clocks."""
    return [
        gl_eligibility_threshold(clock, burst_window, reserved_rate)
        for clock in clocks
    ]
