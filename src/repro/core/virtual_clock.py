"""Virtual Clock counters (Zhang, SIGCOMM 1990) as used by the paper.

The paper's Guaranteed Bandwidth class derives from the Virtual Clock
algorithm: each flow owns a virtual time counter (``auxVC``) that advances by
``Vtick`` — the flow's average packet inter-arrival time at its reserved rate
— every time one of its packets is transmitted. Flows are served in order of
increasing ``auxVC``, which emulates time-division multiplexing while
redistributing idle slots to flows with excess demand.

This module provides the exact (fine-grained) counter used by the "Original
Virtual Clock" baseline of Fig. 5; the coarse-grained SSVC variant lives in
:mod:`repro.core.ssvc`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from ..errors import ConfigError

#: Times and counter values the clock accepts: simulator cycles (int),
#: configured float ticks, or exact rationals.
TimeLike = Union[int, float, Fraction]


def compute_vtick(reserved_rate: float, packet_flits: int) -> float:
    """Derive a flow's Vtick from its reservation.

    ``Vtick`` is "the average arrival time between packets from a flow in
    real time clock ticks" (paper Section 2.2). A flow reserving a fraction
    ``reserved_rate`` of a one-flit-per-cycle channel and sending
    ``packet_flits``-flit packets emits, on average, one packet every
    ``packet_flits / reserved_rate`` cycles.

    Args:
        reserved_rate: fraction of the output channel bandwidth reserved for
            the flow, in (0, 1].
        packet_flits: average packet length of the flow in flits.

    Returns:
        The Vtick in cycles per packet.

    Raises:
        ConfigError: if the rate is outside (0, 1] or the packet length is
            not positive.
    """
    if not 0.0 < reserved_rate <= 1.0:
        raise ConfigError(f"reserved_rate must be in (0, 1], got {reserved_rate}")
    if packet_flits <= 0:
        raise ConfigError(f"packet_flits must be positive, got {packet_flits}")
    return packet_flits / reserved_rate


class VirtualClockCounter:
    """Fine-grained auxVC counter with the paper's transmit-time update.

    The original algorithm stamps packets at *arrival*; the paper integrates
    the algorithm into switch arbitration, so the counter is consulted and
    updated at *transmit* time instead:

    1. ``auxVC <- max(auxVC, real_time)``  (anti-burst floor, step 1 of the
       original algorithm — an idle flow may not bank priority)
    2. ``auxVC <- auxVC + Vtick``

    Accounting is exact: the configured float ``vtick`` is converted to a
    rational once and every update happens in :class:`~fractions.Fraction`
    arithmetic. Accumulating the float directly drifts over long horizons
    (e.g. ``8 / 0.3`` summed 300k cycles), which flips coarse thermometer
    levels against the SSVC path; exact accounting keeps the fine-grained
    baseline and the quantized SSVC comparison on the same virtual
    timeline (regression: ``tests/test_vtick_drift.py``).

    Attributes:
        vtick: virtual time advanced per transmitted packet (cycles), as
            configured.
        value: current auxVC value in absolute cycles (exact rational).
    """

    __slots__ = ("vtick", "_vtick_exact", "_value", "transmit_count")

    def __init__(
        self, vtick: float, value: TimeLike = 0.0, transmit_count: int = 0
    ) -> None:
        if vtick <= 0:
            raise ConfigError(f"vtick must be positive, got {vtick}")
        self.vtick = float(vtick)
        self._vtick_exact = Fraction(vtick)
        self._value = Fraction(value)
        self.transmit_count = transmit_count

    def __repr__(self) -> str:
        return (
            f"VirtualClockCounter(vtick={self.vtick!r}, value={float(self._value)!r})"
        )

    @property
    def value(self) -> Fraction:
        """Current auxVC value in absolute cycles (exact)."""
        return self._value

    def effective(self, now: TimeLike) -> Fraction:
        """The counter value the arbiter compares at time ``now``.

        The anti-burst floor is applied lazily: a flow whose clock fell
        behind real time competes as if its clock read ``now``.
        """
        return max(self._value, Fraction(now))

    def lead(self, now: TimeLike) -> Fraction:
        """How far the flow's virtual time runs ahead of real time (>= 0).

        A large lead means the flow has recently consumed more than its
        reserved rate and will be deprioritized accordingly.
        """
        return max(self._value - Fraction(now), Fraction(0))

    def on_transmit(self, now: TimeLike) -> Fraction:
        """Apply the transmit-time update and return the new value."""
        self._value = max(self._value, Fraction(now)) + self._vtick_exact
        self.transmit_count += 1
        return self._value

    def stamp_arrival(self, now: TimeLike) -> Fraction:
        """Stamp a packet per the *original* (arrival-time) algorithm.

        Provided for completeness/tests; the switch arbiters use
        :meth:`on_transmit`. Returns the stamp the packet would carry.
        """
        self._value = max(self._value, Fraction(now)) + self._vtick_exact
        return self._value

    def reset(self) -> None:
        """Clear the counter (used by the RESET management policy)."""
        self._value = Fraction(0)
