"""Virtual Clock counters (Zhang, SIGCOMM 1990) as used by the paper.

The paper's Guaranteed Bandwidth class derives from the Virtual Clock
algorithm: each flow owns a virtual time counter (``auxVC``) that advances by
``Vtick`` — the flow's average packet inter-arrival time at its reserved rate
— every time one of its packets is transmitted. Flows are served in order of
increasing ``auxVC``, which emulates time-division multiplexing while
redistributing idle slots to flows with excess demand.

This module provides the exact (fine-grained) counter used by the "Original
Virtual Clock" baseline of Fig. 5; the coarse-grained SSVC variant lives in
:mod:`repro.core.ssvc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


def compute_vtick(reserved_rate: float, packet_flits: int) -> float:
    """Derive a flow's Vtick from its reservation.

    ``Vtick`` is "the average arrival time between packets from a flow in
    real time clock ticks" (paper Section 2.2). A flow reserving a fraction
    ``reserved_rate`` of a one-flit-per-cycle channel and sending
    ``packet_flits``-flit packets emits, on average, one packet every
    ``packet_flits / reserved_rate`` cycles.

    Args:
        reserved_rate: fraction of the output channel bandwidth reserved for
            the flow, in (0, 1].
        packet_flits: average packet length of the flow in flits.

    Returns:
        The Vtick in cycles per packet.

    Raises:
        ConfigError: if the rate is outside (0, 1] or the packet length is
            not positive.
    """
    if not 0.0 < reserved_rate <= 1.0:
        raise ConfigError(f"reserved_rate must be in (0, 1], got {reserved_rate}")
    if packet_flits <= 0:
        raise ConfigError(f"packet_flits must be positive, got {packet_flits}")
    return packet_flits / reserved_rate


@dataclass
class VirtualClockCounter:
    """Fine-grained auxVC counter with the paper's transmit-time update.

    The original algorithm stamps packets at *arrival*; the paper integrates
    the algorithm into switch arbitration, so the counter is consulted and
    updated at *transmit* time instead:

    1. ``auxVC <- max(auxVC, real_time)``  (anti-burst floor, step 1 of the
       original algorithm — an idle flow may not bank priority)
    2. ``auxVC <- auxVC + Vtick``

    Attributes:
        vtick: virtual time advanced per transmitted packet (cycles).
        value: current auxVC value in absolute cycles.
    """

    vtick: float
    value: float = 0.0
    transmit_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.vtick <= 0:
            raise ConfigError(f"vtick must be positive, got {self.vtick}")

    def effective(self, now: float) -> float:
        """The counter value the arbiter compares at time ``now``.

        The anti-burst floor is applied lazily: a flow whose clock fell
        behind real time competes as if its clock read ``now``.
        """
        return max(self.value, now)

    def lead(self, now: float) -> float:
        """How far the flow's virtual time runs ahead of real time (>= 0).

        A large lead means the flow has recently consumed more than its
        reserved rate and will be deprioritized accordingly.
        """
        return max(self.value - now, 0.0)

    def on_transmit(self, now: float) -> float:
        """Apply the transmit-time update and return the new value."""
        self.value = max(self.value, now) + self.vtick
        self.transmit_count += 1
        return self.value

    def stamp_arrival(self, now: float) -> float:
        """Stamp a packet per the *original* (arrival-time) algorithm.

        Provided for completeness/tests; the switch arbiters use
        :meth:`on_transmit`. Returns the stamp the packet would carry.
        """
        self.value = max(self.value, now) + self.vtick
        return self.value

    def reset(self) -> None:
        """Clear the counter (used by the RESET management policy)."""
        self.value = 0.0
