"""Guaranteed Latency class bound math (paper Section 3.4, Eqs. 1-3).

Equation 1 bounds the waiting time of a buffered GL packet at the switch:

    tau_GL <= l_max + N_GL,o * (b + b / l_min)

where ``l_max``/``l_min`` are the maximum/minimum packet lengths in flits,
``N_GL,o`` the number of inputs injecting GL traffic toward output ``o``,
and ``b`` the GL buffer depth in flits. The three terms account for channel
release (a packet already holding the channel), transmit latency of all
buffered GL flits, and per-packet arbitration latency of those flits.

Equations 2-3 invert the bound into per-input *burst budgets*: given inputs
ordered from tightest to loosest latency constraint ``L_1 <= ... <= L_N``,
the maximum burst (in packets) each may inject while every constraint still
holds. The paper's typography is ambiguous about grouping; we implement

    sigma_1 = (L_1 - l_max) / ((l_max + 1) * N)
    sigma_n = sigma_(n-1) + (L_n - L_(n-1)) / ((l_max + 1) * (N - n))   n < N
    sigma_N = sigma_(N-1) + (L_N - L_(N-1)) / (l_max + 1)

i.e. the flow with the n-th tightest constraint "can burst as many flits as
the flow with the L_(n-1) constraint but has to compete with the remaining
N - n flows" — and the loosest flow competes with no one for its marginal
budget. Tests validate internal consistency (monotonicity, reduction to the
single-input case) rather than the paper's worked numbers, which the
available text garbles.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigError


def _validate_lengths(l_max: int, l_min: int) -> None:
    if l_min <= 0:
        raise ConfigError(f"l_min must be positive, got {l_min}")
    if l_max < l_min:
        raise ConfigError(f"l_max ({l_max}) must be >= l_min ({l_min})")


def gl_latency_bound(l_max: int, l_min: int, n_gl: int, buffer_flits: int) -> float:
    """Worst-case waiting time of a buffered GL packet (Eq. 1).

    Args:
        l_max: maximum packet length in flits (any class — the channel may
            be held by a GB/BE packet when the GL packet arrives).
        l_min: minimum packet length in flits.
        n_gl: number of inputs injecting GL traffic toward this output.
        buffer_flits: GL buffer depth ``b`` per input, in flits.

    Returns:
        The bound ``tau_GL`` in cycles.
    """
    _validate_lengths(l_max, l_min)
    if n_gl < 0:
        raise ConfigError(f"n_gl must be >= 0, got {n_gl}")
    if buffer_flits <= 0:
        raise ConfigError(f"buffer_flits must be positive, got {buffer_flits}")
    return float(l_max) + n_gl * (buffer_flits + buffer_flits / l_min)


def burst_budgets(latency_bounds: Sequence[float], l_max: int) -> List[float]:
    """Per-input GL burst budgets sigma_n in packets (Eqs. 2-3).

    Args:
        latency_bounds: each GL input's latency constraint in cycles,
            in any order; they are sorted from tightest to loosest
            internally and budgets returned in that sorted order.
        l_max: maximum packet length in flits.

    Returns:
        ``sigma`` values aligned with the *sorted* (ascending) bounds.

    Raises:
        ConfigError: if no bounds are given, any bound is not positive, or
            the tightest bound is too small to admit even channel release
            (``L_1 <= l_max`` would yield a negative budget).
    """
    if not latency_bounds:
        raise ConfigError("at least one latency bound is required")
    if any(b <= 0 for b in latency_bounds):
        raise ConfigError(f"latency bounds must be positive, got {list(latency_bounds)}")
    if l_max <= 0:
        raise ConfigError(f"l_max must be positive, got {l_max}")
    bounds = sorted(float(b) for b in latency_bounds)
    n = len(bounds)
    if bounds[0] <= l_max:
        raise ConfigError(
            f"tightest bound {bounds[0]} cannot be met: a maximum-length packet "
            f"({l_max} flits) may already hold the channel"
        )
    budgets: List[float] = [(bounds[0] - l_max) / ((l_max + 1) * n)]
    for i in range(1, n):
        competitors = n - (i + 1)  # flows with looser constraints than flow i
        divisor = (l_max + 1) * (competitors if competitors > 0 else 1)
        budgets.append(budgets[i - 1] + (bounds[i] - bounds[i - 1]) / divisor)
    return budgets


def max_burst_for_bound(latency_bound: float, l_max: int, n_gl: int) -> float:
    """Budget for one input when all ``n_gl`` inputs share the same bound.

    Convenience wrapper over :func:`burst_budgets` for the symmetric case
    the paper uses in its worked examples.
    """
    if n_gl < 1:
        raise ConfigError(f"n_gl must be >= 1, got {n_gl}")
    return burst_budgets([latency_bound] * n_gl, l_max)[0]
