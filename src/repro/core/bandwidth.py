"""Per-output bandwidth reservation and admission control (paper Section 3.3).

"In the GB class, each individual input may request a fraction of the output
channel's bandwidth; therefore, there can be as many GB flows per output as
there are inputs. For the GL class, the output reserves a small fraction of
bandwidth for any GL packet injected from any input to that output. Then,
for each output channel, the sum of bandwidth allocated to all GB flows and
the GL class should be less than or equal to the total bandwidth capacity of
the output channel."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AdmissionError, ConfigError
from .virtual_clock import compute_vtick

#: Tolerance for floating-point rate sums: reservations summing to 1.0 via
#: repeated fractions (0.1 + 0.2 + ...) must still be admissible.
_RATE_EPSILON = 1e-9


@dataclass(frozen=True)
class Reservation:
    """An admitted GB reservation at one output.

    Attributes:
        input_port: the reserving input.
        rate: reserved fraction of the output channel's bandwidth.
        packet_flits: the flow's average packet length (determines Vtick).
        vtick: derived virtual-clock increment in cycles per packet.
    """

    input_port: int
    rate: float
    packet_flits: int
    vtick: float


class BandwidthAllocator:
    """Tracks and validates reservations for a single output channel.

    Args:
        num_inputs: switch radix (bounds valid input indices).
        gl_reserved_rate: fraction set aside for the GL class as a whole.

    Raises:
        ConfigError: on invalid constructor arguments.
    """

    def __init__(self, num_inputs: int, gl_reserved_rate: float = 0.0) -> None:
        if num_inputs < 1:
            raise ConfigError(f"num_inputs must be >= 1, got {num_inputs}")
        if not 0.0 <= gl_reserved_rate < 1.0:
            raise ConfigError(
                f"gl_reserved_rate must be in [0, 1), got {gl_reserved_rate}"
            )
        self.num_inputs = num_inputs
        self.gl_reserved_rate = gl_reserved_rate
        self._reservations: Dict[int, Reservation] = {}

    # ------------------------------------------------------------- admission

    def reserve(self, input_port: int, rate: float, packet_flits: int) -> Reservation:
        """Admit (or update) a GB reservation.

        Args:
            input_port: the reserving input.
            rate: requested fraction of the channel, in (0, 1].
            packet_flits: average packet length of the flow in flits.

        Returns:
            The admitted :class:`Reservation` including its Vtick.

        Raises:
            AdmissionError: if the request is malformed or would push the
                channel (GB reservations + GL reservation) over capacity.
        """
        if not 0 <= input_port < self.num_inputs:
            raise AdmissionError(
                f"input_port {input_port} out of range [0, {self.num_inputs})"
            )
        if not 0.0 < rate <= 1.0:
            raise AdmissionError(f"rate must be in (0, 1], got {rate}")
        if packet_flits <= 0:
            raise AdmissionError(f"packet_flits must be positive, got {packet_flits}")
        other = sum(r.rate for p, r in self._reservations.items() if p != input_port)
        total = other + rate + self.gl_reserved_rate
        if total > 1.0 + _RATE_EPSILON:
            raise AdmissionError(
                f"cannot reserve {rate:.4f} for input {input_port}: channel would be "
                f"oversubscribed ({total:.4f} > 1.0 including GL share "
                f"{self.gl_reserved_rate:.4f})"
            )
        reservation = Reservation(
            input_port=input_port,
            rate=rate,
            packet_flits=packet_flits,
            vtick=compute_vtick(rate, packet_flits),
        )
        self._reservations[input_port] = reservation
        return reservation

    def release(self, input_port: int) -> None:
        """Drop a reservation; a no-op if the input holds none."""
        self._reservations.pop(input_port, None)

    # ----------------------------------------------------------------- views

    def reservation(self, input_port: int) -> Optional[Reservation]:
        """The input's reservation, or ``None``."""
        return self._reservations.get(input_port)

    @property
    def reservations(self) -> List[Reservation]:
        """All admitted reservations, ordered by input index."""
        return [self._reservations[p] for p in sorted(self._reservations)]

    @property
    def reserved_total(self) -> float:
        """Sum of admitted GB rates (excluding the GL share)."""
        return sum(r.rate for r in self._reservations.values())

    @property
    def leftover(self) -> float:
        """Unreserved channel fraction available to best-effort traffic.

        Virtual Clock (unlike TDM/WRR) also redistributes *unused* reserved
        bandwidth at runtime; this figure is only the statically
        unreserved part.
        """
        return max(1.0 - self.reserved_total - self.gl_reserved_rate, 0.0)
