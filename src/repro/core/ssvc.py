"""SSVC — the Swizzle Switch Virtual Clock core (paper Section 3.1).

The paper integrates the Virtual Clock algorithm into the Swizzle Switch's
single-cycle inhibit-based arbitration. The key hardware constraint is that
auxVC counters cannot be compared at full precision on the bus: only their
most-significant bits participate, quantized into a thermometer code whose
level selects an arbitration lane. Ties within one coarse level are broken by
least-recently-granted (LRG) arbitration. This coarsening is *the* reason
SSVC improves latency for low-rate flows relative to the original Virtual
Clock (paper Section 4.3, Fig. 5).

Because the counters are finite, three management policies keep them in
range (:class:`repro.types.CounterMode`):

* ``SUBTRACT`` — a real-time counter with the granularity of the auxVC LSBs
  runs alongside; each time it saturates (every *quantum* cycles) every
  flow's most-significant value drops by one, i.e. all thermometer codes
  shift down one lane. Combined with the ``max(auxVC, real_time)`` floor,
  the stored value is the flow's *lead over real time*.
* ``HALVE`` — when any counter saturates, every counter divides by two.
* ``RESET`` — when any counter saturates, every counter clears to zero.

This module is deliberately independent of the cycle-level simulator so it
can be driven directly by unit/property tests and by the wire-level circuit
model (which consumes :meth:`SSVCCore.thermometer`).

Counter accounting is exact: values are stored as integers in *subtick*
units (cycles scaled by the largest power-of-two denominator among the
registered Vticks), so long-horizon accumulation cannot drift the way the
former float path did (which flipped coarse thermometer levels — see
``tests/test_vtick_drift.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import QoSConfig
from ..errors import ArbitrationError, ConfigError
from ..types import CounterMode
from .lrg import LRGState
from .thermometer import ThermometerCode
from .virtual_clock import compute_vtick


@dataclass
class _FlowState:
    """Per-(input, output) crosspoint QoS state.

    ``value_num`` is the auxVC register content in integer *subticks* —
    cycles scaled by the core's ``_scale`` — so accumulation is exact. Its
    meaning depends on the counter mode: in SUBTRACT mode it is the flow's
    lead over the real-time window (decays by one quantum per quantum of
    real time); in HALVE/RESET modes it is an accumulated relative value.
    ``vtick_num`` is the flow's Vtick in the same subtick units.
    """

    vtick: float
    vtick_num: int
    reserved_rate: float
    packet_flits: int
    value_num: int = 0
    epoch: int = 0
    transmit_count: int = field(default=0, repr=False)


@dataclass(frozen=True)
class SSVCState:
    """Read-only snapshot of a core's integer counter state.

    Produced by :meth:`SSVCCore.export_state` for array-kernel
    initialization: all quantities are in the core's subtick units, so a
    vectorized backend can reproduce the exact integer arithmetic without
    reaching into private attributes. ``flows`` maps input port to
    ``(vtick_num, value_num, epoch)``.
    """

    scale: int
    quantum_num: int
    saturation_num: int
    flows: Dict[int, Tuple[int, int, int]]


class SSVCCore:
    """Coarse-grained Virtual Clock state and selection for one output.

    Args:
        qos: quantization and counter-management parameters.
        lrg: the output's LRG state used for tie-breaking. SSVC replicates
            the LRG logic at each crosspoint in hardware; behaviorally a
            single shared state per output is equivalent. If ``None`` a
            fresh state sized lazily at first registration is created.
        num_inputs: switch radix (sizes the lazily created LRG state).

    The core is *pure selection + explicit commit*: :meth:`select` inspects
    counters without mutating them, :meth:`commit` performs the grant-time
    updates. This split lets the simulator abandon a tentative decision
    (e.g. when a GL request pre-empts the GB plane) without corrupting
    state, and makes the class easy to test.
    """

    def __init__(
        self,
        qos: QoSConfig,
        num_inputs: int,
        lrg: Optional[LRGState] = None,
    ) -> None:
        if num_inputs < 1:
            raise ConfigError(f"num_inputs must be >= 1, got {num_inputs}")
        self.qos = qos
        self.num_inputs = num_inputs
        self.lrg = lrg if lrg is not None else LRGState(num_inputs)
        if self.lrg.n != num_inputs:
            raise ConfigError(
                f"LRG state sized for {self.lrg.n} inputs, switch has {num_inputs}"
            )
        self._flows: Dict[int, _FlowState] = {}
        # Exact accounting: counters are integers in units of 1/_scale
        # cycles. Every float Vtick has a power-of-two denominator, so the
        # running maximum of those denominators makes all registered
        # Vticks exact integers — no float accumulation drift (the float
        # path flipped coarse levels; see tests/test_vtick_drift.py).
        self._scale = 1
        self._quantum_num = qos.quantum
        self._saturation_num = qos.saturation
        #: statistics exposed for tests and the experiment harness
        self.halve_events = 0
        self.reset_events = 0
        self.window_shifts = 0

    # ---------------------------------------------------------- registration

    def register_flow(self, input_port: int, reserved_rate: float, packet_flits: int) -> float:
        """Configure the crosspoint for a GB flow and return its Vtick.

        Each crosspoint serves one flow ``(In_i, Out_o)`` (paper Section
        3.1), so re-registering an input overwrites its previous
        reservation.
        """
        if not 0 <= input_port < self.num_inputs:
            raise ConfigError(
                f"input_port {input_port} out of range [0, {self.num_inputs})"
            )
        vtick = compute_vtick(reserved_rate, packet_flits)
        exact = Fraction(vtick)  # exact rational of the float; dyadic
        if exact.denominator > self._scale:
            self._rescale(exact.denominator)
        self._flows[input_port] = _FlowState(
            vtick=vtick,
            vtick_num=exact.numerator * (self._scale // exact.denominator),
            reserved_rate=reserved_rate,
            packet_flits=packet_flits,
        )
        return vtick

    def _rescale(self, new_scale: int) -> None:
        """Grow the subtick denominator to admit a finer Vtick."""
        factor = new_scale // self._scale
        self._scale = new_scale
        self._quantum_num *= factor
        self._saturation_num *= factor
        for flow in self._flows.values():
            flow.value_num *= factor
            flow.vtick_num *= factor

    def is_registered(self, input_port: int) -> bool:
        """True when the input holds a GB reservation at this output."""
        return input_port in self._flows

    @property
    def registered_inputs(self) -> List[int]:
        """Inputs with GB reservations, ascending."""
        return sorted(self._flows)

    # -------------------------------------------------------------- counters

    def _sync(self, flow: _FlowState, now: int) -> None:
        """Apply lazy real-time decay (SUBTRACT mode only)."""
        if self.qos.counter_mode is not CounterMode.SUBTRACT:
            return
        epoch = now // self.qos.quantum
        if epoch > flow.epoch:
            decay = (epoch - flow.epoch) * self._quantum_num
            flow.value_num = max(flow.value_num - decay, 0)
            self.window_shifts += epoch - flow.epoch
            flow.epoch = epoch

    def counter_value(self, input_port: int, now: int) -> float:
        """Current auxVC register content (relative cycles) for a flow."""
        flow = self._flow(input_port)
        self._sync(flow, now)
        return flow.value_num / self._scale

    def counter_value_exact(self, input_port: int, now: int) -> Fraction:
        """Exact auxVC register content in cycles (for property tests)."""
        flow = self._flow(input_port)
        self._sync(flow, now)
        return Fraction(flow.value_num, self._scale)

    def level(self, input_port: int, now: int) -> int:
        """Coarse priority level of the flow at ``now`` (0 = highest)."""
        flow = self._flow(input_port)
        self._sync(flow, now)
        return min(flow.value_num // self._quantum_num, self.qos.levels - 1)

    def thermometer(self, input_port: int, now: int) -> ThermometerCode:
        """Thermometer-code register content for the wire-level model."""
        return ThermometerCode(positions=self.qos.levels, level=self.level(input_port, now))

    def vtick(self, input_port: int) -> float:
        """The flow's configured Vtick in cycles per packet."""
        return self._flow(input_port).vtick

    # --------------------------------------------------------- select/commit

    def select(self, candidates: Iterable[int], now: int) -> int:
        """Pick the winner among requesting inputs (pure).

        The SSVC decision (paper Section 3.1): the smallest thermometer
        level wins outright; ties within a level are broken by LRG.
        """
        cands = list(candidates)
        if not cands:
            raise ArbitrationError("SSVC select requires at least one candidate")
        # Single pass with the quantum/levels lookups hoisted; keeps the
        # running best level and its ties in candidate order — equivalent
        # to a levels dict + min + filter without building any of them
        # (this runs once per arbitration, the simulator's hottest call).
        quantum_num = self._quantum_num
        top_level = self.qos.levels - 1
        flows = self._flows
        sync_needed = self.qos.counter_mode is CounterMode.SUBTRACT
        best = -1
        tied: List[int] = []
        for i in cands:
            try:
                flow = flows[i]
            except KeyError:
                raise ArbitrationError(
                    f"input {i} has no GB reservation at this output"
                ) from None
            if sync_needed:
                self._sync(flow, now)
            level = flow.value_num // quantum_num
            if level > top_level:
                level = top_level
            if best < 0 or level < best:
                best = level
                tied = [i]
            elif level == best:
                tied.append(i)
        if len(tied) == 1:
            return tied[0]
        return self.lrg.arbitrate(tied)

    def commit(self, winner: int, now: int) -> None:
        """Apply grant-time updates for ``winner`` at cycle ``now``.

        Advances the winner's auxVC by its Vtick (with the anti-burst floor
        already implied by the non-negative relative representation),
        demotes it in LRG, and runs the configured counter-management
        policy if the counter saturated.
        """
        flow = self._flow(winner)
        self._sync(flow, now)
        flow.value_num += flow.vtick_num
        flow.transmit_count += 1
        self.lrg.grant(winner)
        self._manage_saturation(now)

    # ------------------------------------------------------- fault injection

    def inject_counter_bitflip(self, input_port: int, bit: int, now: int) -> None:
        """Flip bit ``bit`` of the flow's coarse cycle count (fault model).

        Models a transient upset of the auxVC/thermometer register: the
        integer-cycle part of the counter has one bit XORed, clamped to the
        register's saturation range. Used only by
        :mod:`repro.faults`; never called on the healthy path.
        """
        if bit < 0 or bit >= self.qos.counter_bits:
            raise ConfigError(
                f"bit {bit} outside the {self.qos.counter_bits}-bit register"
            )
        flow = self._flow(input_port)
        self._sync(flow, now)
        cycles = flow.value_num // self._scale
        flow.value_num += ((cycles ^ (1 << bit)) - cycles) * self._scale
        if flow.value_num > self._saturation_num:
            flow.value_num = self._saturation_num

    # ----------------------------------------------------- counter management

    def _manage_saturation(self, now: int) -> None:
        saturation_num = self._saturation_num
        mode = self.qos.counter_mode
        # The hardware register saturates: it can never hold more than the
        # saturation value, in any mode, so overflow beyond the window is
        # forgotten before the management policy runs.
        saturated = False
        for flow in self._flows.values():
            if flow.value_num >= saturation_num:
                flow.value_num = saturation_num
                saturated = True
        if mode is CounterMode.SUBTRACT or not saturated:
            # SUBTRACT relies on real-time decay to pull values back down.
            return
        if mode is CounterMode.HALVE:
            # Hardware right-shift: floors to the subtick grid (error
            # < 1 subtick, never accumulated — the register stays exact).
            for flow in self._flows.values():
                flow.value_num //= 2
            self.halve_events += 1
        elif mode is CounterMode.RESET:
            for flow in self._flows.values():
                flow.value_num = 0
            self.reset_events += 1

    # ---------------------------------------------------------------- helpers

    def _flow(self, input_port: int) -> _FlowState:
        try:
            return self._flows[input_port]
        except KeyError:
            raise ArbitrationError(
                f"input {input_port} has no GB reservation at this output"
            ) from None

    def snapshot(self, now: int) -> Dict[int, float]:
        """Counter values of all registered flows (for tests/reports)."""
        return {i: self.counter_value(i, now) for i in sorted(self._flows)}

    def export_state(self) -> SSVCState:
        """Integer counter state for vectorized backends (read-only).

        The array kernel seeds its int64 matrices from this snapshot and
        thereafter performs the same subtick arithmetic as this core —
        parity tests compare the resulting grant streams bit for bit.
        """
        return SSVCState(
            scale=self._scale,
            quantum_num=self._quantum_num,
            saturation_num=self._saturation_num,
            flows={
                i: (flow.vtick_num, flow.value_num, flow.epoch)
                for i, flow in self._flows.items()
            },
        )
