"""Value types exchanged between the simulator and arbiters.

A :class:`Request` is what an input port presents to an output channel's
arbiter in one arbitration cycle; a :class:`Grant` records the outcome. Both
are deliberately free of simulator internals so the arbiters in
:mod:`repro.qos` can be unit-tested with hand-built requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..types import TrafficClass


@dataclass(frozen=True)
class Request:
    """One input's head-of-line candidate for a given output.

    Attributes:
        input_port: index of the requesting input.
        traffic_class: class of the head packet (selects the arbitration
            plane: GL beats GB beats BE).
        packet_flits: length of the head packet in flits (the winner holds
            the channel this many cycles).
        queued_flits: total flits the input currently has buffered for this
            output and class; informational, used by work-conserving
            baselines such as DWRR.
        arrival_cycle: cycle the head packet reached the head of its queue;
            informational, used by arrival-stamping arbiters (original
            Virtual Clock semantics) and by tests.
    """

    input_port: int
    traffic_class: TrafficClass
    packet_flits: int
    queued_flits: int = 0
    arrival_cycle: int = 0

    def __post_init__(self) -> None:
        if self.input_port < 0:
            raise ValueError(f"input_port must be >= 0, got {self.input_port}")
        if self.packet_flits <= 0:
            raise ValueError(f"packet_flits must be positive, got {self.packet_flits}")


@dataclass(frozen=True)
class Grant:
    """Outcome of one arbitration: which request won and when.

    Attributes:
        request: the winning request.
        cycle: cycle at which arbitration completed.
        via_gl_lane: True when the grant was decided in the dedicated GL
            lane (Fig. 3), i.e. the winner pre-empted all GB/BE requesters.
    """

    request: Request
    cycle: int
    via_gl_lane: bool = False

    @property
    def input_port(self) -> int:
        """Convenience accessor for the winning input index."""
        return self.request.input_port


def split_by_class(requests: "list[Request] | tuple[Request, ...]") -> "dict[TrafficClass, list[Request]]":
    """Group requests by traffic class (always returns all three keys)."""
    groups: "dict[TrafficClass, list[Request]]" = {
        TrafficClass.BE: [],
        TrafficClass.GB: [],
        TrafficClass.GL: [],
    }
    for req in requests:
        groups[req.traffic_class].append(req)
    return groups


def highest_present_class(requests: "list[Request] | tuple[Request, ...]") -> Optional[TrafficClass]:
    """The highest-priority class present among ``requests`` (or None)."""
    best: Optional[TrafficClass] = None
    for req in requests:
        if best is None or req.traffic_class > best:
            best = req.traffic_class
    return best
