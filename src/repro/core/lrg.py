"""Least-Recently-Granted (LRG) arbitration state.

LRG is the Swizzle Switch's default arbitration policy (Satpathy et al.,
ISSCC 2012): every input holds a priority bit against every other input, and
winning arbitration demotes the winner below all others. The result is a
self-updating total order in which the input granted longest ago always has
the highest priority — a starvation-free, round-robin-like policy.

Two isomorphic representations are provided by the same class:

* the **matrix** view (``has_priority``) mirrors the hardware's per-crosspoint
  priority bits and is what the wire-level model consumes;
* the **ordering** view (``order``) is convenient for behavioral arbiters.

The class maintains the invariant that the relation is a strict total order,
so arbitration among any non-empty requester set has exactly one winner.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..errors import ArbitrationError, ConfigError


class LRGState:
    """LRG priority state over ``n`` inputs.

    The internal representation is the priority ordering ``self._order``:
    a permutation of ``range(n)`` from highest priority (least recently
    granted) to lowest (most recently granted). The matrix view is derived.

    Args:
        n: number of inputs.
        initial_order: optional starting permutation (highest priority
            first); defaults to ``0, 1, ..., n-1``.
    """

    def __init__(self, n: int, initial_order: Optional[Sequence[int]] = None) -> None:
        if n < 1:
            raise ConfigError(f"LRG needs at least one input, got n={n}")
        self.n = n
        if initial_order is None:
            self._order: List[int] = list(range(n))
        else:
            order = list(initial_order)
            if sorted(order) != list(range(n)):
                raise ConfigError(
                    f"initial_order must be a permutation of range({n}), got {order}"
                )
            self._order = order
        self._rank = {inp: r for r, inp in enumerate(self._order)}
        self.grant_count = 0

    # ----------------------------------------------------------------- views

    @property
    def order(self) -> List[int]:
        """Inputs from highest to lowest priority (a copy)."""
        return list(self._order)

    def rank(self, i: int) -> int:
        """Priority rank of input ``i`` (0 = highest priority)."""
        self._check(i)
        return self._rank[i]

    def has_priority(self, i: int, j: int) -> bool:
        """Matrix view: does input ``i`` beat input ``j``?

        Matches the hardware's ``LRG(i, j)`` bit. ``i == j`` is rejected —
        the hardware stores no diagonal bits.
        """
        self._check(i)
        self._check(j)
        if i == j:
            raise ArbitrationError(f"LRG priority of an input against itself ({i}) is undefined")
        return self._rank[i] < self._rank[j]

    def priority_row(self, i: int) -> List[int]:
        """Bit vector over all inputs: 1 where ``i`` has priority.

        This is the per-crosspoint "LRG bits" register of Table 1 (the
        diagonal position is 0, matching the ``radix - 1`` stored bits plus
        an implicit zero).
        """
        self._check(i)
        my_rank = self._rank[i]
        return [1 if (j != i and my_rank < self._rank[j]) else 0 for j in range(self.n)]

    # --------------------------------------------------------------- updates

    def grant(self, winner: int) -> None:
        """Demote ``winner`` below every other input (self-updating LRG)."""
        self._check(winner)
        self._order.remove(winner)
        self._order.append(winner)
        self._rank = {inp: r for r, inp in enumerate(self._order)}
        self.grant_count += 1

    def arbitrate(self, requesters: Iterable[int]) -> int:
        """Pick the least recently granted input among ``requesters``.

        Pure selection — the caller must invoke :meth:`grant` to commit.

        Raises:
            ArbitrationError: if ``requesters`` is empty or contains
                duplicates/invalid indices.
        """
        reqs = list(requesters)
        if not reqs:
            raise ArbitrationError("LRG arbitration requires at least one requester")
        if len(set(reqs)) != len(reqs):
            raise ArbitrationError(f"duplicate requesters: {reqs}")
        for r in reqs:
            self._check(r)
        return min(reqs, key=self._rank.__getitem__)

    # --------------------------------------------------------------- helpers

    def _check(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise ArbitrationError(f"input index {i} out of range [0, {self.n})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LRGState(order={self._order})"
