"""Measurement: per-flow throughput/latency statistics and report tables.

* :mod:`repro.metrics.latency` — streaming latency statistics with exact
  percentiles.
* :mod:`repro.metrics.counters` — the per-flow/per-output collector the
  simulator feeds.
* :mod:`repro.metrics.throughput` — time-windowed throughput series.
* :mod:`repro.metrics.report` — ASCII tables for the experiment harness,
  formatted like the paper's tables.
"""

from .counters import FlowStats, StatsCollector
from .latency import LatencyStats
from .report import format_table
from .throughput import ThroughputWindow

__all__ = [
    "FlowStats",
    "LatencyStats",
    "StatsCollector",
    "ThroughputWindow",
    "format_table",
]
