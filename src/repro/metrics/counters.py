"""Per-flow and per-output statistics collection.

The simulator feeds this collector on every packet creation and delivery.
A warmup horizon discards transient samples: deliveries granted before
``warmup_cycles`` contribute to neither throughput nor latency, matching
standard NoC measurement methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import SimulationError
from ..switch.flit import Packet
from ..types import FlowId, TrafficClass
from .latency import LatencyStats
from .throughput import ThroughputWindow


@dataclass
class FlowStats:
    """Everything measured for one flow.

    Attributes:
        flow: the flow identity.
        offered_packets/offered_flits: creations inside the measurement
            window (offered load).
        delivered_packets/delivered_flits: deliveries whose grant fell
            inside the measurement window.
        latency: creation-to-delivery statistics.
        waiting: injection-to-grant statistics (Eq. 1's quantity).
        windowed: per-window delivered-flit series.
    """

    flow: FlowId
    offered_packets: int = 0
    offered_flits: int = 0
    delivered_packets: int = 0
    delivered_flits: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    waiting: LatencyStats = field(default_factory=LatencyStats)
    windowed: ThroughputWindow = field(default_factory=ThroughputWindow)

    def accepted_rate(self, measured_cycles: int) -> float:
        """Delivered flits per cycle over the measurement window."""
        if measured_cycles <= 0:
            raise SimulationError(f"measured_cycles must be positive, got {measured_cycles}")
        return self.delivered_flits / measured_cycles

    def offered_rate(self, measured_cycles: int) -> float:
        """Created flits per cycle over the measurement window."""
        if measured_cycles <= 0:
            raise SimulationError(f"measured_cycles must be positive, got {measured_cycles}")
        return self.offered_flits / measured_cycles


class StatsCollector:
    """Collects flow and output statistics for one simulation run.

    Args:
        warmup_cycles: samples at cycles below this are discarded.
        window_cycles: width of the windowed-throughput buckets.
    """

    def __init__(self, warmup_cycles: int = 0, window_cycles: int = 1024) -> None:
        if warmup_cycles < 0:
            raise SimulationError(f"warmup_cycles must be >= 0, got {warmup_cycles}")
        self.warmup_cycles = warmup_cycles
        self.window_cycles = window_cycles
        self._flows: Dict[FlowId, FlowStats] = {}
        self.total_delivered_flits = 0
        self.horizon: Optional[int] = None

    def _stats(self, flow: FlowId) -> FlowStats:
        stats = self._flows.get(flow)
        if stats is None:
            stats = FlowStats(flow=flow, windowed=ThroughputWindow(self.window_cycles))
            self._flows[flow] = stats
        return stats

    # -------------------------------------------------------------- feeding

    def on_created(self, packet: Packet) -> None:
        """Record a packet creation (offered load)."""
        if packet.created_cycle < self.warmup_cycles:
            return
        stats = self._stats(packet.flow)
        stats.offered_packets += 1
        stats.offered_flits += packet.flits

    def on_delivered(self, packet: Packet) -> None:
        """Record a delivery; filtered by the warmup horizon."""
        if packet.grant_cycle is None or packet.delivered_cycle is None:
            raise SimulationError(f"packet {packet.packet_id} delivered without timestamps")
        if packet.grant_cycle < self.warmup_cycles:
            return
        stats = self._stats(packet.flow)
        stats.delivered_packets += 1
        stats.delivered_flits += packet.flits
        stats.latency.add(packet.latency)
        stats.waiting.add(packet.waiting_time)
        stats.windowed.add(packet.delivered_cycle, packet.flits)
        self.total_delivered_flits += packet.flits

    def finish(self, horizon: int) -> None:
        """Freeze the run length for rate computations."""
        if horizon <= self.warmup_cycles:
            raise SimulationError(
                f"horizon {horizon} must exceed warmup {self.warmup_cycles}"
            )
        self.horizon = horizon

    # ---------------------------------------------------------------- views

    @property
    def measured_cycles(self) -> int:
        """Cycles inside the measurement window.

        Raises:
            SimulationError: before :meth:`finish` was called.
        """
        if self.horizon is None:
            raise SimulationError("collector not finished; call finish(horizon)")
        return self.horizon - self.warmup_cycles

    def flow_stats(self, flow: FlowId) -> FlowStats:
        """Stats for one flow (zeroed if it never created a packet)."""
        return self._stats(flow)

    @property
    def flows(self) -> Dict[FlowId, FlowStats]:
        """All per-flow stats keyed by flow."""
        return dict(self._flows)

    def accepted_rate(self, flow: FlowId) -> float:
        """Flow's delivered flits/cycle over the measurement window."""
        return self._stats(flow).accepted_rate(self.measured_cycles)

    def output_throughput(self, output: int) -> float:
        """Total delivered flits/cycle at one output."""
        total = sum(
            s.delivered_flits for f, s in self._flows.items() if f.dst == output
        )
        return total / self.measured_cycles

    def class_throughput(self, traffic_class: TrafficClass) -> float:
        """Total delivered flits/cycle for one traffic class."""
        total = sum(
            s.delivered_flits
            for f, s in self._flows.items()
            if f.traffic_class is traffic_class
        )
        return total / self.measured_cycles
