"""Plain-text charts for the figure-regenerating experiments.

The paper's Fig. 4/5 are line charts; the harness renders their shapes as
ASCII so a terminal (or CI log) shows the crossovers at a glance without a
plotting dependency. Resolution is deliberately coarse — these are shape
checks, the exact values live in the accompanying tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "ox+*#@%&"


def line_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Sequence[str],
    height: int = 12,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Render one or more aligned series as an ASCII line chart.

    Args:
        series: name -> y values; all series must share ``x_labels``'s
            length. Values may contain ``None`` for gaps.
        x_labels: tick labels along the x axis.
        height: chart rows (y resolution).
        title: optional caption.
        y_label: unit label printed on the y axis.

    Returns:
        The chart as a string (no trailing newline).
    """
    if not series:
        raise ConfigError("at least one series is required")
    if height < 2:
        raise ConfigError(f"height must be >= 2, got {height}")
    width = len(x_labels)
    for name, values in series.items():
        if len(values) != width:
            raise ConfigError(
                f"series {name!r} has {len(values)} points, expected {width}"
            )
    flat = [
        v for values in series.values() for v in values if v is not None
    ]
    if not flat:
        raise ConfigError("all series are empty")
    lo, hi = min(flat), max(flat)
    if hi == lo:
        hi = lo + 1.0  # flat line: render mid-chart

    def row_of(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return min(int(frac * (height - 1)), height - 1)

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x, value in enumerate(values):
            if value is None:
                continue
            y = row_of(value)
            cell = grid[y][x]
            grid[y][x] = glyph if cell == " " else "!"  # collision marker

    lines = []
    if title:
        lines.append(title)
    axis_width = max(len(f"{hi:.3g}"), len(f"{lo:.3g}"), len(y_label))
    for row in range(height - 1, -1, -1):
        if row == height - 1:
            label = f"{hi:.3g}"
        elif row == 0:
            label = f"{lo:.3g}"
        elif row == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{axis_width}} |" + "".join(grid[row]))
    lines.append(" " * axis_width + "-+" + "-" * width)
    # X labels, vertical-ish: print first/mid/last to stay narrow.
    if width >= 3:
        first, mid, last = x_labels[0], x_labels[width // 2], x_labels[-1]
        gap_a = max(width // 2 - len(first), 1)
        gap_b = max(width - 1 - width // 2 - len(mid), 1)
        lines.append(
            " " * (axis_width + 2) + first + " " * gap_a + mid + " " * gap_b + last
        )
    legend = "  ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append("legend: " + legend + "   (! = overlap)")
    return "\n".join(lines)
