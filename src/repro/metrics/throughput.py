"""Time-windowed throughput series.

Used to check *sustained* rate adherence (the paper's "flows receive their
reserved rate during congestion") rather than only end-of-run averages: a
policy could starve a flow for half the run and still look fine on the
average, but not on the windowed series.
"""

from __future__ import annotations

from typing import List

from ..errors import SimulationError


class ThroughputWindow:
    """Accumulates delivered flits into fixed-size cycle windows.

    Args:
        window_cycles: width of each window.
    """

    def __init__(self, window_cycles: int = 1024) -> None:
        if window_cycles < 1:
            raise SimulationError(f"window_cycles must be >= 1, got {window_cycles}")
        self.window_cycles = window_cycles
        self._windows: List[int] = []

    def add(self, cycle: int, flits: int) -> None:
        """Credit ``flits`` delivered at ``cycle`` to its window."""
        if cycle < 0 or flits < 0:
            raise SimulationError(f"invalid sample cycle={cycle} flits={flits}")
        index = cycle // self.window_cycles
        while len(self._windows) <= index:
            self._windows.append(0)
        self._windows[index] += flits

    @property
    def num_windows(self) -> int:
        """Windows touched so far."""
        return len(self._windows)

    def rates(self) -> List[float]:
        """Per-window throughput in flits/cycle."""
        return [w / self.window_cycles for w in self._windows]

    def sustained_minimum(self, skip_first: int = 1, skip_last: int = 1) -> float:
        """Lowest complete-window rate, ignoring edge windows.

        The first window(s) contain warmup, the last may be partial; both
        are excluded by default.

        Raises:
            SimulationError: if the skips are negative or no complete
                interior windows remain (including ``skip_first`` +
                ``skip_last`` >= ``num_windows``, which previously slipped
                through as a slice over *every* trailing window).
        """
        if skip_first < 0 or skip_last < 0:
            raise SimulationError(
                f"skips must be >= 0, got skip_first={skip_first} "
                f"skip_last={skip_last}"
            )
        end = len(self._windows) - skip_last
        interior = self._windows[skip_first:end] if end > skip_first else []
        if not interior:
            raise SimulationError(
                f"no interior windows (have {len(self._windows)}, "
                f"skip {skip_first}+{skip_last})"
            )
        return min(interior) / self.window_cycles
