"""Latency statistics with exact percentiles.

Samples are retained (simulations here deliver at most a few hundred
thousand packets) so percentiles are exact rather than approximated; the
running sum/min/max make the common mean/max queries O(1).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import SimulationError


class LatencyStats:
    """Streaming collector of latency samples (cycles)."""

    def __init__(self) -> None:
        self._samples: List[int] = []
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    def add(self, latency: int) -> None:
        """Record one sample.

        Raises:
            SimulationError: for negative latencies (always a caller bug).
        """
        if latency < 0:
            raise SimulationError(f"negative latency {latency}")
        self._samples.append(latency)
        self._sum += latency
        if self._min is None or latency < self._min:
            self._min = latency
        if self._max is None or latency > self._max:
            self._max = latency

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Average latency; 0.0 when empty (callers check ``count``)."""
        return self._sum / len(self._samples) if self._samples else 0.0

    @property
    def minimum(self) -> int:
        """Smallest sample.

        Raises:
            SimulationError: when no samples were recorded.
        """
        if self._min is None:
            raise SimulationError("no latency samples recorded")
        return self._min

    @property
    def maximum(self) -> int:
        """Largest sample.

        Raises:
            SimulationError: when no samples were recorded.
        """
        if self._max is None:
            raise SimulationError("no latency samples recorded")
        return self._max

    def percentile(self, q: float) -> float:
        """Exact percentile ``q`` in [0, 100].

        Raises:
            SimulationError: when empty or ``q`` out of range.
        """
        if not self._samples:
            raise SimulationError("no latency samples recorded")
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(np.asarray(self._samples), q))

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th-percentile latency."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(99.0)

    @property
    def stddev(self) -> float:
        """Sample standard deviation (0.0 for fewer than two samples)."""
        if len(self._samples) < 2:
            return 0.0
        return float(np.std(np.asarray(self._samples), ddof=1))

    def samples(self) -> np.ndarray:
        """All samples as an array (a copy)."""
        return np.asarray(self._samples, dtype=np.int64)
