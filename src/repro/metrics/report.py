"""ASCII table formatting for the experiment harness.

The harness prints the same rows/series the paper's tables and figures
report; this module renders them in aligned plain text so benchmark logs
are directly comparable to the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _render(cell: Cell, float_format: str) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return format(cell, float_format)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    float_format: str = ".3f",
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: cell values; floats are formatted with ``float_format``,
            ``None`` renders as ``-``.
        title: optional caption printed above the table.
        float_format: format spec applied to float cells.

    Returns:
        The table as a string (no trailing newline).
    """
    if not headers:
        raise ValueError("a table needs at least one column")
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        rendered.append([_render(cell, float_format) for cell in row])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(rendered[0], widths)))
    lines.append(sep)
    for row in rendered[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
