"""Picklable sweep envelopes and deterministic per-point seed derivation.

Every experiment in this reproduction is a *sweep*: Fig. 4 sweeps injection
rates, rate adherence sweeps random reservation mixes, scalability sweeps
auxVC significant bits, circuit verification sweeps radices. A sweep point
is wrapped in a :class:`SweepPoint` envelope — a frozen, picklable record
of everything a worker process needs to reproduce the point from scratch
(parameters as primitives, plus the point's own seed) — so the executor can
ship it across a process boundary and the result merges back by ``index``
regardless of which worker finished first.

Seed scheme: callers either pin each point's seed explicitly (the paper
experiments do, so their published numbers never move), or derive a family
of independent per-point seeds from one master seed with
:func:`spawn_seeds`, which walks ``np.random.SeedSequence(master).spawn``
— the same construction the simulator uses for per-flow streams. Both
schemes are pure functions of their inputs: the same master seed always
yields the same point seeds, in the same order, in any process.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work, self-contained and picklable.

    Attributes:
        index: unique position key; results merge back in ``index`` order
            no matter which worker ran the point.
        label: human-readable name used in progress and error messages
            (a crashed point is reported by this label).
        seed: the RNG seed this point's simulation must use.
        params: ordered ``(name, value)`` pairs; values must be picklable
            primitives (or tuples thereof) so the envelope crosses process
            boundaries without importing experiment modules eagerly.
    """

    index: int
    label: str
    seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, index: int, label: str, seed: int, **params: Any) -> "SweepPoint":
        """Build a point from keyword parameters (insertion-ordered)."""
        return cls(index=index, label=label, seed=seed, params=tuple(params.items()))

    def param(self, name: str) -> Any:
        """The value of one named parameter.

        Raises:
            ConfigError: when the point does not carry the parameter.
        """
        for key, value in self.params:
            if key == name:
                return value
        raise ConfigError(f"sweep point {self.label!r} has no parameter {name!r}")

    def as_dict(self) -> Dict[str, Any]:
        """Parameters as a dict (insertion order preserved)."""
        return dict(self.params)


@dataclass(frozen=True)
class PointResult:
    """A sweep point paired with the value its worker returned."""

    point: SweepPoint
    value: Any


def spawn_seeds(master_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent child seeds from one master seed.

    Uses ``np.random.SeedSequence(master_seed).spawn(count)`` so the child
    streams are statistically independent *and* the derivation is a pure
    function: the same master always yields the same children, in order,
    on every platform and in every process. Adding points to the end of a
    sweep never changes the seeds of earlier points.
    """
    if count < 0:
        raise ConfigError(f"seed count must be >= 0, got {count}")
    children = np.random.SeedSequence(master_seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def result_hash(values: Iterable[Any]) -> str:
    """Stable digest of a sweep's ordered result payloads.

    Hashes the ``repr`` of each value (floats round-trip exactly through
    ``repr``), separated by NUL bytes. Two runs of the same sweep — serial
    or parallel, any job count — must produce the same digest; the
    determinism tests and the CI sweep check are built on this.
    """
    digest = hashlib.sha256()
    for value in values:
        digest.update(repr(value).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()
