"""Deterministic fan-out of sweep points over a process pool.

All process-based parallelism in this repository goes through
:class:`SweepExecutor` (lint rule RL009 forbids importing
``multiprocessing``/``concurrent.futures`` anywhere else). The executor
guarantees that for a fixed point list the merged results are identical —
value for value, in order — whether it runs serially, with 2 jobs, or
with 40: each point carries its own seed, workers never share mutable
state, and results merge by the point's ``index``, not completion order.

Failure surfacing is part of the contract: a point that raises inside a
worker is shipped back as data and re-raised here as a
:class:`~repro.errors.SimulationError` naming the point; a worker process
that dies outright (``BrokenProcessPool``) is reported with the labels of
the chunk it was running. Neither case hangs the parent.
"""

from __future__ import annotations

import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, SimulationError
from .envelope import PointResult, SweepPoint

#: A worker function: takes one envelope, returns a picklable payload.
PointFn = Callable[[SweepPoint], Any]

#: ``(index, ok, payload)`` triples shipped back from a worker chunk;
#: payload is the point's return value on success, or the formatted
#: traceback text on failure.
_ChunkItem = Tuple[int, bool, Any]


def _run_chunk(fn: PointFn, points: Sequence[SweepPoint]) -> List[_ChunkItem]:
    """Worker-side body: run a chunk of points, shipping failures as data.

    Stops at the first failing point in the chunk — later points in the
    same chunk would only be discarded by the parent anyway once it
    raises for the failure.
    """
    out: List[_ChunkItem] = []
    for point in points:
        try:
            out.append((point.index, True, fn(point)))
        except Exception as exc:  # noqa: BLE001 - shipped back, re-raised by parent
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            out.append((point.index, False, detail))
            break
    return out


class SweepExecutor:
    """Map a function over sweep points, optionally across processes.

    Args:
        jobs: worker process count. ``1`` (the default) is the serial
            path — no pool is created and results are bit-identical to
            calling ``fn`` in a plain loop.
        chunk_size: points per submitted task. Defaults to
            ``ceil(len(points) / (jobs * 4))`` so each worker sees ~4
            tasks — small enough to balance uneven point costs, large
            enough to amortize pickling.

    Attributes:
        last_fallback: why the most recent :meth:`map` call ran serially
            despite ``jobs > 1`` (``None`` when it actually fanned out).
    """

    def __init__(self, jobs: int = 1, chunk_size: Optional[int] = None) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.last_fallback: Optional[str] = None

    def map(self, fn: PointFn, points: Sequence[SweepPoint]) -> List[PointResult]:
        """Run ``fn`` over every point; results in original point order.

        Raises:
            ConfigError: on duplicate point indices.
            SimulationError: when any point fails or a worker dies; the
                message names the failed point(s).
        """
        pts = list(points)
        seen: Dict[int, str] = {}
        for point in pts:
            if point.index in seen:
                raise ConfigError(
                    f"duplicate sweep point index {point.index}: "
                    f"{seen[point.index]!r} vs {point.label!r}"
                )
            seen[point.index] = point.label
        self.last_fallback = None
        if self.jobs == 1:
            return self._map_serial(fn, pts)
        if len(pts) < 2:
            self.last_fallback = "fewer than 2 points"
            return self._map_serial(fn, pts)
        unpicklable = self._pickle_check(fn, pts)
        if unpicklable is not None:
            self.last_fallback = unpicklable
            return self._map_serial(fn, pts)
        return self._map_parallel(fn, pts)

    @staticmethod
    def _pickle_check(fn: PointFn, pts: Sequence[SweepPoint]) -> Optional[str]:
        """A reason to fall back to serial, or None when fan-out is safe."""
        try:
            pickle.dumps(fn)
        except Exception:
            return f"worker function {getattr(fn, '__name__', fn)!r} is not picklable"
        try:
            pickle.dumps(pts)
        except Exception:
            return "sweep points are not picklable"
        return None

    @staticmethod
    def _map_serial(fn: PointFn, pts: Sequence[SweepPoint]) -> List[PointResult]:
        results: List[PointResult] = []
        for point in pts:
            try:
                value = fn(point)
            except SimulationError:
                raise
            except Exception as exc:
                raise SimulationError(
                    f"sweep point {point.index} ({point.label}) failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            results.append(PointResult(point, value))
        return results

    def _map_parallel(self, fn: PointFn, pts: Sequence[SweepPoint]) -> List[PointResult]:
        chunk = self.chunk_size or max(1, -(-len(pts) // (self.jobs * 4)))
        chunks = [pts[i : i + chunk] for i in range(0, len(pts), chunk)]
        values: Dict[int, Any] = {}
        failures: Dict[int, str] = {}
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(chunks)))
        try:
            futures = [(c, pool.submit(_run_chunk, fn, c)) for c in chunks]
            for chunk_points, future in futures:
                try:
                    items = future.result()
                except BrokenProcessPool as exc:
                    labels = ", ".join(p.label for p in chunk_points)
                    raise SimulationError(
                        "worker process died while running sweep "
                        f"points [{labels}]"
                    ) from exc
                for index, ok, payload in items:
                    if ok:
                        values[index] = payload
                    else:
                        failures[index] = str(payload)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        if failures:
            order = {point.index: pos for pos, point in enumerate(pts)}
            first = min(failures, key=lambda idx: order[idx])
            label = next(p.label for p in pts if p.index == first)
            raise SimulationError(
                f"sweep point {first} ({label}) failed in worker:\n"
                f"{failures[first]}"
            )
        missing = [p for p in pts if p.index not in values]
        if missing:
            names = ", ".join(p.label for p in missing)
            raise SimulationError(f"sweep lost results for points [{names}]")
        return [PointResult(point, values[point.index]) for point in pts]
