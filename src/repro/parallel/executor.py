"""Deterministic fan-out of sweep points over a process pool.

All process-based parallelism in this repository goes through
:class:`SweepExecutor` (lint rule RL009 forbids importing
``multiprocessing``/``concurrent.futures`` anywhere else). The executor
guarantees that for a fixed point list the merged results are identical —
value for value, in order — whether it runs serially, with 2 jobs, or
with 40: each point carries its own seed, workers never share mutable
state, and results merge by the point's ``index``, not completion order.

Failure surfacing is part of the contract: a point that raises inside a
worker is shipped back as data and re-raised here as a
:class:`~repro.errors.SimulationError` naming the point; a worker process
that dies outright (``BrokenProcessPool``) is reported with the labels of
the chunk it was running. Neither case hangs the parent.

Resilient execution (:class:`repro.resilience.ResilienceOptions`) layers
checkpointing, retries, per-point timeouts, salvage, and clean
cancellation on top of that contract without weakening it:

* when no resilience feature is requested the executor runs the exact
  historical chunked path — bit-identical behavior, verified by the CI
  serial-vs-parallel diff;
* when resilience is active, points run one process per point so a hung
  worker can be killed by the watchdog, completed points are checkpointed
  to the run journal the moment they finish, failed points are retried
  under the deterministic backoff policy, and SIGINT/SIGTERM drain
  in-flight points before exiting with a resumable journal
  (:class:`~repro.errors.SweepInterrupted`);
* determinism survives all of it because every point's seed is stateless:
  a retried or resumed point recomputes the same bits, and the journal
  *asserts* that on every re-execution.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing.connection import Connection, wait as _connection_wait
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, SimulationError, SweepInterrupted
from ..resilience import (
    FailurePolicy,
    PointFailure,
    ResilienceOptions,
    SweepOutcome,
    point_key,
    worker_name,
)
from .envelope import PointResult, SweepPoint

#: A worker function: takes one envelope, returns a picklable payload.
PointFn = Callable[[SweepPoint], Any]

#: ``(index, ok, payload)`` triples shipped back from a worker chunk;
#: payload is the point's return value on success, or the formatted
#: traceback text on failure.
_ChunkItem = Tuple[int, bool, Any]

#: Environment hook for chaos testing: a sweep point whose ``label``
#: equals this variable's value fails every attempt (kind ``chaos``)
#: without executing. The CI chaos job sets it to knock a hole into a
#: salvage run, then resumes with it unset and diffs the merged hash
#: against a clean run.
CHAOS_ENV = "REPRO_CHAOS_FAIL_LABEL"


def _run_chunk(fn: PointFn, points: Sequence[SweepPoint]) -> List[_ChunkItem]:
    """Worker-side body: run a chunk of points, shipping failures as data.

    Stops at the first failing point in the chunk — later points in the
    same chunk would only be discarded by the parent anyway once it
    raises for the failure.
    """
    out: List[_ChunkItem] = []
    for point in points:
        try:
            out.append((point.index, True, fn(point)))
        except Exception as exc:  # noqa: BLE001 - shipped back, re-raised by parent
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            out.append((point.index, False, detail))
            break
    return out


def _run_point_child(fn: PointFn, point: SweepPoint, conn: Connection) -> None:
    """Child-process body for resilient execution: one point, one pipe.

    Ships ``(True, value)`` or ``(False, traceback_text)`` back to the
    parent. If the *value* itself cannot be pickled through the pipe, a
    failure record is shipped instead — the parent must never hang on a
    silent child, so the pipe is closed on every path.
    """
    try:
        payload: Tuple[bool, Any] = (True, fn(point))
    except BaseException as exc:  # noqa: BLE001 - shipped back, judged by parent
        payload = (
            False,
            f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
        )
    try:
        conn.send(payload)
    except Exception as exc:  # result unpicklable: ship the reason instead
        with contextlib.suppress(Exception):
            conn.send(
                (
                    False,
                    f"point result could not be shipped to the parent: "
                    f"{type(exc).__name__}: {exc}",
                )
            )
    finally:
        conn.close()


def _chaos_label() -> Optional[str]:
    """The label forced to fail by the chaos env hook, if set."""
    return os.environ.get(CHAOS_ENV) or None


class SweepExecutor:
    """Map a function over sweep points, optionally across processes.

    Args:
        jobs: worker process count. ``1`` (the default) is the serial
            path — no pool is created and results are bit-identical to
            calling ``fn`` in a plain loop.
        chunk_size: points per submitted task. Defaults to
            ``ceil(len(points) / (jobs * 4))`` so each worker sees ~4
            tasks — small enough to balance uneven point costs, large
            enough to amortize pickling. Ignored by the resilient path,
            which runs one process per point so the watchdog can kill a
            single hung point.
        resilience: journaling/retry/salvage bundle. ``None`` — or a
            bundle with every feature off — selects the exact historical
            execution path.

    Attributes:
        last_fallback: why the most recent :meth:`map` call ran serially
            despite ``jobs > 1`` (``None`` when it actually fanned out).
    """

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        resilience: Optional[ResilienceOptions] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.resilience = resilience
        self.last_fallback: Optional[str] = None

    def map(self, fn: PointFn, points: Sequence[SweepPoint]) -> List[PointResult]:
        """Run ``fn`` over every point; results in original point order.

        With active resilience options this delegates to :meth:`run`; the
        returned list then has explicit holes under
        :attr:`~repro.resilience.FailurePolicy.SALVAGE` (the outcome —
        appended to ``resilience.outcomes`` — says exactly which points
        are missing and why).

        Raises:
            ConfigError: on duplicate point indices.
            SimulationError: when any point fails (after exhausting its
                retry budget) under fail-fast; the message names the
                failed point(s).
            SweepInterrupted: when SIGINT/SIGTERM cancelled the sweep.
        """
        pts = self._validated(points)
        if self.resilience is not None and self.resilience.serve_url is not None:
            return self._map_remote(fn, pts).results
        if self.resilience is not None and self.resilience.active:
            return self.run(fn, pts).results
        self.last_fallback = None
        if self.jobs == 1:
            return self._map_serial(fn, pts)
        if len(pts) < 2:
            self.last_fallback = "fewer than 2 points"
            return self._map_serial(fn, pts)
        unpicklable = self._pickle_check(fn, pts)
        if unpicklable is not None:
            self.last_fallback = unpicklable
            return self._map_parallel_fallback(fn, pts)
        return self._map_parallel(fn, pts)

    def run(self, fn: PointFn, points: Sequence[SweepPoint]) -> SweepOutcome:
        """Resilient execution: journal, retries, watchdog, salvage, drain.

        Always returns a :class:`~repro.resilience.SweepOutcome` (also
        appended to ``resilience.outcomes`` when a bundle is attached) —
        except under fail-fast with an exhausted point, where it raises
        after appending the outcome, and on cancellation, where it raises
        :class:`~repro.errors.SweepInterrupted` carrying the outcome.
        """
        pts = self._validated(points)
        options = self.resilience if self.resilience is not None else ResilienceOptions()
        if options.serve_url is not None:
            return self._map_remote(fn, pts)
        runner = _ResilientRun(self, fn, pts, options)
        return runner.execute()

    def _map_remote(self, fn: PointFn, pts: List[SweepPoint]) -> SweepOutcome:
        """Ship the whole sweep to a ``repro-serve`` daemon.

        The client restores the daemon's repr-transported values, asserts
        the merged hash against the daemon's, and records every point
        into the locally attached journal/catalog (with the usual
        bit-identity asserts) — so a remote run leaves the same resumable
        artifacts behind as a local one.
        """
        # Imported lazily: repro.serve depends on this module, and the
        # client is only needed when a sweep actually goes remote.
        from ..serve.client import ServeClient

        options = self.resilience
        assert options is not None and options.serve_url is not None
        client = ServeClient(options.serve_url)
        return client.submit(fn, pts, options)

    # ------------------------------------------------------------- validation

    @staticmethod
    def _validated(points: Sequence[SweepPoint]) -> List[SweepPoint]:
        pts = list(points)
        seen: Dict[int, str] = {}
        for point in pts:
            if point.index in seen:
                raise ConfigError(
                    f"duplicate sweep point index {point.index}: "
                    f"{seen[point.index]!r} vs {point.label!r}"
                )
            seen[point.index] = point.label
        return pts

    @staticmethod
    def _pickle_check(fn: PointFn, pts: Sequence[SweepPoint]) -> Optional[str]:
        """A reason to fall back to serial, or None when fan-out is safe."""
        try:
            pickle.dumps(fn)
        except Exception:
            return f"worker function {getattr(fn, '__name__', fn)!r} is not picklable"
        try:
            pickle.dumps(pts)
        except Exception:
            return "sweep points are not picklable"
        return None

    # ------------------------------------------------------------ legacy path

    @staticmethod
    def _map_serial(fn: PointFn, pts: Sequence[SweepPoint]) -> List[PointResult]:
        results: List[PointResult] = []
        for point in pts:
            try:
                value = fn(point)
            except SimulationError:
                raise
            except Exception as exc:
                raise SimulationError(
                    f"sweep point {point.index} ({point.label}) failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            results.append(PointResult(point, value))
        return results

    def _map_parallel_fallback(
        self, fn: PointFn, pts: Sequence[SweepPoint]
    ) -> List[PointResult]:
        """Serial execution taken when fan-out is unsafe (kept as a named
        step so ``last_fallback`` consumers can distinguish it in traces)."""
        return self._map_serial(fn, pts)

    def _map_parallel(self, fn: PointFn, pts: Sequence[SweepPoint]) -> List[PointResult]:
        chunk = self.chunk_size or max(1, -(-len(pts) // (self.jobs * 4)))
        chunks = [pts[i : i + chunk] for i in range(0, len(pts), chunk)]
        values: Dict[int, Any] = {}
        failures: Dict[int, str] = {}
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(chunks)))
        try:
            futures = [(c, pool.submit(_run_chunk, fn, c)) for c in chunks]
            for chunk_points, future in futures:
                try:
                    items = future.result()
                except BrokenProcessPool as exc:
                    labels = ", ".join(p.label for p in chunk_points)
                    raise SimulationError(
                        "worker process died while running sweep "
                        f"points [{labels}]"
                    ) from exc
                for index, ok, payload in items:
                    if ok:
                        values[index] = payload
                    else:
                        failures[index] = str(payload)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        if failures:
            order = {point.index: pos for pos, point in enumerate(pts)}
            first = min(failures, key=lambda idx: order[idx])
            label = next(p.label for p in pts if p.index == first)
            raise SimulationError(
                f"sweep point {first} ({label}) failed in worker:\n"
                f"{failures[first]}"
            )
        missing = [p for p in pts if p.index not in values]
        if missing:
            names = ", ".join(p.label for p in missing)
            raise SimulationError(f"sweep lost results for points [{names}]")
        return [PointResult(point, values[point.index]) for point in pts]


class _Running:
    """One in-flight resilient worker: process, pipe, attempt, deadline."""

    __slots__ = ("proc", "conn", "point", "attempt", "deadline")

    def __init__(
        self,
        proc: BaseProcess,
        conn: Connection,
        point: SweepPoint,
        attempt: int,
        deadline: Optional[float],
    ) -> None:
        self.proc = proc
        self.conn = conn
        self.point = point
        self.attempt = attempt
        self.deadline = deadline


class _ResilientRun:
    """State machine for one resilient sweep execution.

    Separated from :class:`SweepExecutor` so the legacy path stays
    textually untouched and every piece of resilient state (queues,
    signal counters, outcome accounting) lives and dies with one run.
    """

    def __init__(
        self,
        executor: SweepExecutor,
        fn: PointFn,
        pts: List[SweepPoint],
        options: ResilienceOptions,
    ) -> None:
        self.executor = executor
        self.fn = fn
        self.pts = pts
        self.options = options
        self.probe = options.probe
        self.journal = options.journal
        self.catalog = options.catalog
        self.fn_name = worker_name(fn)
        self.keys: Dict[int, str] = {
            point.index: point_key(self.fn_name, point) for point in pts
        }
        if self.journal is not None:
            self.sweep_id = self.journal.register_sweep(self.fn_name, pts)
        else:
            self.sweep_id = self.fn_name
        self.outcome = SweepOutcome(
            sweep=self.sweep_id,
            total_points=len(pts),
            journal_path=self.journal.path if self.journal is not None else None,
            catalog_path=self.catalog.path if self.catalog is not None else None,
        )
        self.values: Dict[int, Any] = {}
        self.failures: Dict[int, PointFailure] = {}
        #: points (with attempt number) ready to launch now
        self.runnable: List[Tuple[SweepPoint, int]] = []
        #: retries waiting out their backoff: (monotonic ready time, point, attempt)
        self.delayed: List[Tuple[float, SweepPoint, int]] = []
        self.running: List[_Running] = []
        self.cancel_signals = 0
        self.aborted = False
        self.chaos = _chaos_label()

    # ----------------------------------------------------------------- probes

    def _count(self, name: str, delta: int = 1) -> None:
        if self.probe is not None:
            self.probe.count(name, delta)

    def _event(self, kind: str, **fields: Any) -> None:
        if self.probe is not None and self.probe.trace:
            self.probe.event(kind, 0, **fields)

    # ------------------------------------------------------------- lifecycle

    def execute(self) -> SweepOutcome:
        self._restore_from_journal()
        self._restore_from_catalog()
        pending = [p for p in self.pts if p.index not in self.values]
        self.runnable = [(point, 1) for point in pending]
        handlers = self._install_signal_handlers()
        try:
            if self._serial_reason(pending) is not None:
                self._drain_serial()
            else:
                self._drain_parallel()
        # Not swallowed: _finish() below converts the cancellation into a
        # counted, journaled SweepInterrupted outcome.
        # reprolint: disable=swallowed-without-record
        except KeyboardInterrupt:
            # Second signal (or a plain Ctrl-C raise): stop immediately but
            # still leave a consistent, resumable journal behind.
            self.cancel_signals = max(self.cancel_signals, 1)
            self._terminate_running()
        finally:
            self._restore_signal_handlers(handlers)
        return self._finish()

    def _serial_reason(self, pending: List[SweepPoint]) -> Optional[str]:
        """Why resilient execution runs in-process, or None to fan out."""
        if self.executor.jobs == 1:
            return "jobs=1"
        if len(pending) < 2:
            reason = "fewer than 2 points"
        else:
            reason = SweepExecutor._pickle_check(self.fn, pending)
            if reason is None:
                return None
        self.executor.last_fallback = reason
        if reason != "jobs=1":
            self.outcome.notes.append(f"ran serially: {reason}")
        return reason

    def _install_signal_handlers(self) -> List[Tuple[int, Any]]:
        """First SIGINT/SIGTERM drains; the second force-terminates.

        Draining means: workers already running finish and are journaled,
        nothing new launches, and on the serial path the current
        in-process point completes. The second signal raises
        ``KeyboardInterrupt`` wherever execution is, which the
        :meth:`execute` wrapper turns into an immediate (but still
        journal-consistent) stop.
        """
        if threading.current_thread() is not threading.main_thread():
            return []

        def _handler(signum: int, frame: Any) -> None:
            self.cancel_signals += 1
            self._count("resilience.cancel_signals")
            if self.cancel_signals >= 2:
                raise KeyboardInterrupt

        saved: List[Tuple[int, Any]] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            saved.append((signum, signal.signal(signum, _handler)))
        return saved

    @staticmethod
    def _restore_signal_handlers(saved: List[Tuple[int, Any]]) -> None:
        for signum, handler in saved:
            signal.signal(signum, handler)

    # ---------------------------------------------------------------- restore

    def _restore_from_journal(self) -> None:
        if self.journal is None:
            return
        for point in self.pts:
            ok, value = self.journal.restore(self.keys[point.index])
            if ok:
                self.values[point.index] = value
                self.outcome.resumed += 1
                self._count("resilience.points_resumed")
                self._event(
                    "resilience.resume", point=point.index, label=point.label
                )

    def _restore_from_catalog(self) -> None:
        """Serve already-catalogued points as verified cache hits.

        Runs after the journal restore: a point present in both stores is
        counted as resumed (journal semantics win) but is still pushed
        into the catalog so the durable store catches up with this run.
        A catalogued point missing from the journal is a cache hit — it
        is also journaled, keeping the journal a complete record of the
        sweep for ``journal_hashes`` diffs and future ``--resume`` runs.
        Every hit passed the catalog's bit-identity verification
        (envelope match + integrity hash + repr round-trip) or raised a
        catalog determinism violation instead of being served.
        """
        if self.catalog is None:
            return
        for point in self.pts:
            if point.index in self.values:
                if self.catalog.record(
                    self.fn_name, self.sweep_id, point, self.values[point.index]
                ):
                    self._count("catalog.appends")
                continue
            hit, value = self.catalog.lookup(self.fn_name, point)
            if hit:
                self.values[point.index] = value
                self.outcome.cache_hits += 1
                self._count("catalog.hits")
                self._event("catalog.hit", point=point.index, label=point.label)
                if self.journal is not None:
                    before = self.journal.point_count
                    self.journal.record(
                        self.sweep_id, self.keys[point.index], point, value
                    )
                    if self.journal.point_count > before:
                        self._count("resilience.journal_appends")
            else:
                self._count("catalog.misses")

    # ----------------------------------------------------------------- serial

    def _drain_serial(self) -> None:
        if self.options.retry.point_timeout is not None:
            note = (
                "point_timeout not enforced on the serial path "
                "(points run in-process; use --jobs >= 2 for the watchdog)"
            )
            if note not in self.outcome.notes:
                self.outcome.notes.append(note)
        while self.runnable or self.delayed:
            if self.cancel_signals:
                return
            if not self.runnable:
                ready_at = min(entry[0] for entry in self.delayed)
                delay = ready_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                now = time.monotonic()
                due = [e for e in self.delayed if e[0] <= now]
                self.delayed = [e for e in self.delayed if e[0] > now]
                self.runnable.extend((point, attempt) for _, point, attempt in due)
                continue
            point, attempt = self.runnable.pop(0)
            if self.chaos is not None and point.label == self.chaos:
                self._attempt_failed(
                    point,
                    attempt,
                    "chaos",
                    f"chaos hook: {CHAOS_ENV}={self.chaos!r} matched label",
                )
                continue
            try:
                value = self.fn(point)
            except KeyboardInterrupt:
                self.cancel_signals = max(self.cancel_signals, 1)
                return
            except Exception as exc:  # noqa: BLE001 - judged by the retry policy
                detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                self._attempt_failed(point, attempt, "error", detail)
                continue
            self._point_succeeded(point, attempt, value)

    # --------------------------------------------------------------- parallel

    def _drain_parallel(self) -> None:
        ctx: BaseContext = multiprocessing.get_context()
        while self.runnable or self.delayed or self.running:
            now = time.monotonic()
            if self.cancel_signals == 0:
                due = [e for e in self.delayed if e[0] <= now]
                self.delayed = [e for e in self.delayed if e[0] > now]
                self.runnable.extend((point, attempt) for _, point, attempt in due)
                while self.runnable and len(self.running) < self.executor.jobs:
                    point, attempt = self.runnable.pop(0)
                    self._launch(ctx, point, attempt)
            if not self.running:
                if self.cancel_signals:
                    return  # drained; queued work is intentionally left behind
                if self.delayed:
                    # sleep in short slices so signals stay responsive
                    ready_at = min(entry[0] for entry in self.delayed)
                    time.sleep(min(max(ready_at - time.monotonic(), 0.0), 0.2))
                continue
            timeout = self._wait_timeout(now)
            ready = _connection_wait(
                [entry.conn for entry in self.running], timeout=timeout
            )
            ready_set = set(ready)
            for entry in list(self.running):
                if entry.conn in ready_set:
                    self._reap(entry)
            self._enforce_deadlines()

    def _launch(self, ctx: BaseContext, point: SweepPoint, attempt: int) -> None:
        if self.chaos is not None and point.label == self.chaos:
            self._attempt_failed(
                point,
                attempt,
                "chaos",
                f"chaos hook: {CHAOS_ENV}={self.chaos!r} matched label",
            )
            return
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_run_point_child,
            args=(self.fn, point, child_conn),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline: Optional[float] = None
        if self.options.retry.point_timeout is not None:
            deadline = time.monotonic() + self.options.retry.point_timeout
        self.running.append(_Running(proc, parent_conn, point, attempt, deadline))

    def _wait_timeout(self, now: float) -> float:
        bounds = [0.5]
        for entry in self.running:
            if entry.deadline is not None:
                bounds.append(entry.deadline - now)
        for ready_at, _, _ in self.delayed:
            bounds.append(ready_at - now)
        return min(0.5, max(0.01, min(bounds)))

    def _reap(self, entry: _Running) -> None:
        """A worker's pipe is readable: collect its message or its death."""
        self.running.remove(entry)
        try:
            ok, payload = entry.conn.recv()
        except (EOFError, OSError):
            entry.proc.join(1.0)
            self._attempt_failed(
                entry.point,
                entry.attempt,
                "worker-died",
                f"worker process exited (code {entry.proc.exitcode}) "
                "without reporting a result",
            )
            entry.conn.close()
            return
        entry.conn.close()
        entry.proc.join(5.0)
        if ok:
            self._point_succeeded(entry.point, entry.attempt, payload)
        else:
            self._attempt_failed(entry.point, entry.attempt, "error", str(payload))

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for entry in list(self.running):
            if entry.deadline is None or now < entry.deadline:
                continue
            self.running.remove(entry)
            self._kill(entry.proc)
            entry.conn.close()
            self.outcome.timeouts += 1
            self._count("resilience.timeouts")
            self._event(
                "resilience.timeout",
                point=entry.point.index,
                label=entry.point.label,
                attempt=entry.attempt,
                timeout_s=self.options.retry.point_timeout,
            )
            self._attempt_failed(
                entry.point,
                entry.attempt,
                "timeout",
                f"exceeded point_timeout={self.options.retry.point_timeout}s "
                f"(attempt {entry.attempt})",
            )

    @staticmethod
    def _kill(proc: BaseProcess) -> None:
        proc.terminate()
        proc.join(0.5)
        if proc.is_alive():
            proc.kill()
            proc.join(1.0)

    def _terminate_running(self) -> None:
        for entry in self.running:
            self._kill(entry.proc)
            entry.conn.close()
        self.running = []

    # ------------------------------------------------------------- accounting

    def _point_succeeded(self, point: SweepPoint, attempt: int, value: Any) -> None:
        if self.journal is not None:
            before = self.journal.point_count
            # Raises SimulationError on any bit difference from a previous
            # execution — the resume/retry determinism assertion.
            self.journal.record(self.sweep_id, self.keys[point.index], point, value)
            if self.journal.point_count > before:
                self._count("resilience.journal_appends")
        if self.catalog is not None:
            # Same determinism assert against the durable store; the probe
            # count lands only after the entry is fsync'd (the serve
            # daemon's crash drill relies on that ordering).
            if self.catalog.record(self.fn_name, self.sweep_id, point, value):
                self._count("catalog.appends")
        self.values[point.index] = value
        self._count("resilience.points_completed")
        if attempt > 1:
            self._event(
                "resilience.recovered",
                point=point.index,
                label=point.label,
                attempts=attempt,
            )

    def _attempt_failed(
        self, point: SweepPoint, attempt: int, kind: str, detail: str
    ) -> None:
        policy = self.options.retry
        if attempt <= policy.retries:
            delay = policy.delay_before(point.index, attempt)
            self.outcome.retried += 1
            self._count("resilience.retries")
            self._event(
                "resilience.retry",
                point=point.index,
                label=point.label,
                attempt=attempt,
                failure_kind=kind,
                delay_s=round(delay, 6),
            )
            self.delayed.append((time.monotonic() + delay, point, attempt + 1))
            return
        failure = PointFailure(
            index=point.index,
            label=point.label,
            attempts=attempt,
            kind=kind,
            detail=detail,
        )
        self.failures[point.index] = failure
        self._count("resilience.failures")
        self._event(
            "resilience.failure",
            point=point.index,
            label=point.label,
            attempts=attempt,
            failure_kind=kind,
        )
        if self.options.on_failure is FailurePolicy.FAIL_FAST:
            self.aborted = True
            self._terminate_running()
            self.runnable = []
            self.delayed = []
            self._finish()
            raise SimulationError(
                f"sweep point {point.index} ({point.label}) failed after "
                f"{attempt} attempt(s) [{kind}]:\n{detail}"
            )

    def _finish(self) -> SweepOutcome:
        self.outcome.results = [
            PointResult(point, self.values[point.index])
            for point in self.pts
            if point.index in self.values
        ]
        self.outcome.failures = [
            self.failures[point.index]
            for point in self.pts
            if point.index in self.failures
        ]
        if self.cancel_signals:
            self.outcome.cancelled = True
            self._count("resilience.cancelled")
            self._event("resilience.cancel", sweep=self.sweep_id)
        self.options.outcomes.append(self.outcome)
        if self.cancel_signals:
            raise SweepInterrupted(
                f"sweep {self.sweep_id} cancelled after completing "
                f"{self.outcome.completed}/{self.outcome.total_points} points"
                + (
                    f"; resume with --resume {self.journal.path}"
                    if self.journal is not None
                    else ""
                ),
                outcome=self.outcome,
            )
        # A missing point that is neither a failure, an abort casualty, nor
        # cancellation is an executor bug — surface it like the legacy path.
        holes = [
            p
            for p in self.pts
            if p.index not in self.values and p.index not in self.failures
        ]
        if holes and not self.aborted:
            names = ", ".join(p.label for p in holes)
            raise SimulationError(f"sweep lost results for points [{names}]")
        return self.outcome
