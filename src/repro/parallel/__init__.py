"""Deterministic sweep fan-out.

The only sanctioned home for process-based parallelism in this repository
(lint rule RL009 flags ``multiprocessing``/``concurrent.futures`` imports
anywhere else). See ``docs/PARALLELISM.md`` for the executor contract,
the seed-derivation scheme, and the determinism guarantees.
"""

from .envelope import PointResult, SweepPoint, result_hash, spawn_seeds
from .executor import CHAOS_ENV, PointFn, SweepExecutor

__all__ = [
    "CHAOS_ENV",
    "PointFn",
    "PointResult",
    "SweepExecutor",
    "SweepPoint",
    "result_hash",
    "spawn_seeds",
]
