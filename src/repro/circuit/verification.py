"""Equivalence checking of the wire-level model (paper Section 4.1).

"We tested this program with all input combinations of thermometer code
vectors and valid LRG states. The arbitration decision of the [wire] level
model was compared to the arbitration decision of a true (non-coarse
grained) auxVC value comparison to verify that each decision was correct."

The *reference* decision implemented here is what the coarse hardware is
specified to compute: the smallest thermometer level wins; ties resolve by
LRG; any eligible GL request pre-empts all GB requests and GL-vs-GL
resolves by LRG. The checkers sweep level assignments × LRG orders ×
request subsets (exhaustively for small radix, randomized for larger) and
raise on the first disagreement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.lrg import LRGState
from ..core.thermometer import ThermometerCode
from ..errors import ConfigError, VerificationError
from .fabric import ArbitrationFabric, FabricRequest


def reference_decision(
    levels: Sequence[Optional[int]],
    gl_flags: Sequence[bool],
    requesters: Sequence[int],
    lrg_order: Sequence[int],
) -> int:
    """The specified arbitration outcome, computed directly.

    Args:
        levels: per-input thermometer level (None for GL-only requesters).
        gl_flags: per-input GL request flag.
        requesters: inputs requesting this cycle.
        lrg_order: LRG priority order, highest first.

    Returns:
        The winning input index.
    """
    rank = {port: r for r, port in enumerate(lrg_order)}
    gl = [p for p in requesters if gl_flags[p]]
    if gl:
        return min(gl, key=rank.__getitem__)
    resolved: Dict[int, int] = {}
    for p in requesters:
        level = levels[p]
        if level is None:
            raise VerificationError(
                f"GB requester {p} has no thermometer level (levels={levels})"
            )
        resolved[p] = level
    best = min(resolved.values())
    tied = [p for p in requesters if resolved[p] == best]
    return min(tied, key=rank.__getitem__)


@dataclass
class VerificationReport:
    """Outcome of a verification sweep.

    Attributes:
        trials: decisions checked.
        radix: fabric radix.
        levels: thermometer positions swept.
    """

    trials: int
    radix: int
    levels: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.trials} arbitration decisions verified "
            f"(radix {self.radix}, {self.levels} levels)"
        )


def _check_case(
    radix: int,
    num_levels: int,
    levels: Tuple[int, ...],
    gl_flags: Tuple[bool, ...],
    requesters: Tuple[int, ...],
    lrg_order: Tuple[int, ...],
) -> None:
    fabric = ArbitrationFabric(radix, num_levels, lrg=LRGState(radix, lrg_order))
    requests = [
        FabricRequest(
            input_port=p,
            thermometer=(
                None
                if gl_flags[p]
                else ThermometerCode(positions=num_levels, level=levels[p])
            ),
            is_gl=gl_flags[p],
        )
        for p in requesters
    ]
    wire_winner = fabric.arbitrate(requests)
    expected = reference_decision(levels, gl_flags, requesters, lrg_order)
    if wire_winner != expected:
        raise VerificationError(
            f"wire model chose input {wire_winner}, reference chose {expected} "
            f"(levels={levels}, gl={gl_flags}, requesters={requesters}, "
            f"lrg={lrg_order})"
        )


def verify_exhaustive(radix: int = 4, num_levels: int = 4, include_gl: bool = True) -> VerificationReport:
    """Sweep *all* level combinations, LRG orders, and request subsets.

    Cost grows as ``num_levels**radix * radix! * 2**radix``; radix 4 with 4
    levels (~92k decisions) runs in a couple of seconds and radix 5 is
    still tractable. Use :func:`verify_random` beyond that.

    Raises:
        VerificationError: on the first mismatching decision.
    """
    trials = 0
    ports = list(range(radix))
    subsets = [
        tuple(s)
        for k in range(1, radix + 1)
        for s in itertools.combinations(ports, k)
    ]
    gl_options: List[Tuple[bool, ...]]
    if include_gl:
        # One GL requester (or none) is enough to exercise the override in
        # the exhaustive sweep; multi-GL cases are covered randomly.
        gl_options = [tuple(False for _ in ports)] + [
            tuple(i == g for i in ports) for g in ports
        ]
    else:
        gl_options = [tuple(False for _ in ports)]
    for levels in itertools.product(range(num_levels), repeat=radix):
        for lrg_order in itertools.permutations(ports):
            for requesters in subsets:
                for gl_flags in gl_options:
                    if any(gl_flags[p] for p in ports if p not in requesters):
                        continue  # GL flag on a non-requester is meaningless
                    _check_case(radix, num_levels, levels, gl_flags, requesters, lrg_order)
                    trials += 1
    return VerificationReport(trials=trials, radix=radix, levels=num_levels)


def verify_random(
    radix: int = 8,
    num_levels: int = 8,
    trials: int = 2000,
    seed: Optional[int] = None,
    gl_probability: float = 0.15,
    rng: Optional[np.random.Generator] = None,
) -> VerificationReport:
    """Randomized sweep for radices where exhaustion is infeasible.

    The sweep (including the ``gl_probability`` coin flips that decide
    which requesters are GL) draws every sample from one explicitly
    seeded generator: pass either ``seed`` or an already-seeded ``rng``.
    There is deliberately no fallback to ambient/global randomness — a
    failure report that cannot name its seed cannot be replayed.

    Raises:
        VerificationError: on the first mismatching decision.
        ConfigError: if neither ``seed`` nor ``rng`` is supplied.
    """
    if rng is None:
        if seed is None:
            raise ConfigError(
                "verify_random requires an explicit seed (or a seeded rng); "
                "an unseeded sweep cannot be replayed"
            )
        rng = np.random.default_rng(seed)
    ports = list(range(radix))
    for _ in range(trials):
        levels = tuple(int(v) for v in rng.integers(0, num_levels, size=radix))
        lrg_order = tuple(int(v) for v in rng.permutation(radix))
        k = int(rng.integers(1, radix + 1))
        requesters = tuple(int(v) for v in rng.choice(radix, size=k, replace=False))
        gl_flags = tuple(
            bool(p in requesters and rng.random() < gl_probability) for p in ports
        )
        _check_case(radix, num_levels, levels, gl_flags, requesters, lrg_order)
    return VerificationReport(trials=trials, radix=radix, levels=num_levels)
