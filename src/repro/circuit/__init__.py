"""Wire-level model of the Swizzle Switch's inhibit-based arbitration.

The paper validates SSVC by modelling "the behavior of each wire,
multiplexer, and sense amp in a C++ program" and testing it against a true
auxVC comparison (Section 4.1). This package is that model in Python:

* :mod:`repro.circuit.bitline` — precharged bitlines grouped into lanes.
* :mod:`repro.circuit.discharge` — the two-thermometer-bit discharge
  decision circuit of Fig. 1(b) and its GL override of Fig. 3.
* :mod:`repro.circuit.crosspoint` — register-accurate crosspoint state:
  the finite auxVC counter, thermometer code, Vtick register, and the
  replicated LRG row.
* :mod:`repro.circuit.fabric` — one output's full arbitration: precharge,
  per-crosspoint discharge, sense, single-winner detection.
* :mod:`repro.circuit.verification` — exhaustive/randomized equivalence
  checking against the reference (min level, LRG tie-break) decision.
"""

from .bitline import Bitline, Lane
from .crosspoint import CrosspointCircuit
from .discharge import discharge_decision, gl_discharge_decision
from .fabric import ArbitrationFabric, FabricRequest
from .sense_amp import SenseAmpMux
from .verification import verify_exhaustive, verify_random

__all__ = [
    "ArbitrationFabric",
    "Bitline",
    "CrosspointCircuit",
    "FabricRequest",
    "Lane",
    "SenseAmpMux",
    "discharge_decision",
    "gl_discharge_decision",
    "verify_exhaustive",
    "verify_random",
]
