"""The per-lane discharge decision circuit (paper Fig. 1(b) and Fig. 3).

For every lane ``i`` the circuit combines two *adjacent* thermometer code
bits ``T[i]`` and ``T[i+1]`` of the requesting input with its LRG row:

* ``T[i] == 0``  — the input's level is *below* this lane, so it beats
  everyone sensing here: discharge **all** bitlines of the lane;
* ``T[i] == 1 and T[i+1] == 0`` — the input's level is exactly this lane:
  discharge only the **LRG row** bits (inputs it beats in a tie);
* ``T[i+1] == 1`` — the input's level is *above* this lane: discharge
  **nothing** (it loses to anyone sensing here).

The bit beyond the last thermometer position is implicitly 0.

Fig. 3 adds the GL override: a GL request discharges every bitline of every
GB lane outright and competes by LRG inside the dedicated GL lane.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import CircuitError


def _check_vector(bits: Sequence[int], name: str) -> None:
    if any(b not in (0, 1) for b in bits):
        raise CircuitError(f"{name} must contain only 0/1 bits, got {list(bits)}")


def discharge_decision(
    lane_index: int,
    therm_bits: Sequence[int],
    lrg_row: Sequence[int],
) -> List[int]:
    """Discharge bits one input drives onto one GB lane.

    Args:
        lane_index: which lane the decision is for.
        therm_bits: the input's thermometer code ``(T0, ..., T(n-1))``.
        lrg_row: the input's LRG priority row (1 where it beats that input).

    Returns:
        A bit vector as wide as ``lrg_row``: 1 = pull the wire down.
    """
    _check_vector(therm_bits, "therm_bits")
    _check_vector(lrg_row, "lrg_row")
    if not 0 <= lane_index < len(therm_bits):
        raise CircuitError(
            f"lane_index {lane_index} out of range [0, {len(therm_bits)})"
        )
    t_i = therm_bits[lane_index]
    t_next = therm_bits[lane_index + 1] if lane_index + 1 < len(therm_bits) else 0
    if t_i == 0:
        return [1] * len(lrg_row)  # my level is lower: inhibit the whole lane
    if t_next == 0:
        return list(lrg_row)  # my level: tie-break by LRG
    return [0] * len(lrg_row)  # my level is higher: I lose here


def gl_discharge_decision(
    gl_request: bool,
    gb_decision: Sequence[int],
) -> List[int]:
    """Fig. 3's modified decision for a GB lane.

    "In the presence of a GL request, all bitlines in GB class lanes will
    be discharged" — the input's own GL request forces all-ones onto every
    GB lane, overriding whatever the GB circuit decided.
    """
    _check_vector(gb_decision, "gb_decision")
    if gl_request:
        return [1] * len(gb_decision)
    return list(gb_decision)
