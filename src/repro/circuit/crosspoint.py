"""Register-accurate crosspoint state (paper Section 3.1, Fig. 2).

Each crosspoint ``(In_n, Out_m)`` added for QoS holds:

* a finite **auxVC counter** of ``sig_bits + frac_bits`` bits,
* the **thermometer code register** mirroring the counter's MSBs,
* the **Vtick increment register** (an integer, ``vtick_bits`` wide),
* a replica of the **LRG arbitration row**.

This class implements the *hardware* update rules — integer saturating
arithmetic, carry-driven thermometer shifts, the quantum-granular
real-time wrap — so tests can check it against the behavioral float model
in :class:`repro.core.ssvc.SSVCCore`.
"""

from __future__ import annotations

from ..config import QoSConfig
from ..errors import CircuitError
from ..core.thermometer import ThermometerCode
from ..types import CounterMode


class CrosspointCircuit:
    """One (input, output) crosspoint's QoS registers.

    Args:
        input_port: the input this crosspoint serves.
        qos: register widths and counter management policy.
        vtick: integer Vtick value; must fit in ``qos.vtick_bits`` bits.
    """

    def __init__(self, input_port: int, qos: QoSConfig, vtick: int) -> None:
        if input_port < 0:
            raise CircuitError(f"input_port must be >= 0, got {input_port}")
        if vtick <= 0:
            raise CircuitError(f"vtick must be positive, got {vtick}")
        if vtick >= (1 << qos.vtick_bits) * qos.quantum:
            raise CircuitError(
                f"vtick {vtick} does not fit: the {qos.vtick_bits}-bit register "
                f"holds at most {(1 << qos.vtick_bits) - 1} quantum-scaled units"
            )
        self.input_port = input_port
        self.qos = qos
        self.vtick = vtick
        self._counter = 0  # integer cycles, in [0, qos.saturation]
        self.thermometer = ThermometerCode(positions=qos.levels, level=0)
        self.saturated_flag = False

    # ----------------------------------------------------------------- state

    @property
    def counter(self) -> int:
        """Current auxVC register value (integer cycles)."""
        return self._counter

    @property
    def level(self) -> int:
        """MSB value of the counter == thermometer level."""
        return self.thermometer.level

    def _sync_thermometer(self) -> None:
        level = min(self._counter // self.qos.quantum, self.qos.levels - 1)
        self.thermometer.level = level

    # --------------------------------------------------------------- updates

    def on_transmit(self) -> bool:
        """Add Vtick to the counter (saturating); returns True on saturate.

        The thermometer register shifts up once per MSB carry; when the
        counter would exceed its range it saturates and the flag asks the
        owner to run the configured management policy across *all*
        crosspoints of the output.
        """
        self._counter += self.vtick
        if self._counter >= self.qos.saturation:
            self._counter = self.qos.saturation
            self.saturated_flag = True
        self._sync_thermometer()
        return self.saturated_flag

    def real_time_wrap(self) -> None:
        """The shared real-time counter saturated (SUBTRACT mode).

        "We subtract 1 from the most significant bits value and shift down
        all thermometer codes by 1 position."
        """
        if self.qos.counter_mode is not CounterMode.SUBTRACT:
            raise CircuitError(
                f"real_time_wrap only applies in SUBTRACT mode, "
                f"configured {self.qos.counter_mode}"
            )
        self._counter = max(self._counter - self.qos.quantum, 0)
        self.saturated_flag = False
        self._sync_thermometer()

    def halve(self) -> None:
        """Divide the counter by two (HALVE mode management event)."""
        self._counter //= 2
        self.saturated_flag = False
        self._sync_thermometer()

    def reset(self) -> None:
        """Clear the counter (RESET mode management event)."""
        self._counter = 0
        self.saturated_flag = False
        self._sync_thermometer()
