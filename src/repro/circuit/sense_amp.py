"""The lane-select multiplexer before the sense amp (paper Fig. 2).

"The most significant bits of the auxVC counter [have] two purposes: 1) to
determine the thermometer code bits and 2) to select the wire to be sensed
by the sense amp." For input ``n`` of a radix-``R`` switch, the candidate
wires are positions ``n, n + R, n + 2R, ...`` — one per lane — and the
counter's MSB value picks among them through a tree of 2:1 muxes. This mux
is the component that extends the switch's critical path, producing the
Table 2 slowdown; its depth here is the same ``ceil(log2(num_lanes))``
the timing model charges.
"""

from __future__ import annotations

import math
from typing import List

from ..errors import CircuitError


class SenseAmpMux:
    """Lane-select mux for one input's sense amp.

    Args:
        input_port: the input whose wire positions this mux serves.
        radix: bitlines per lane (== number of inputs).
        num_lanes: selectable lanes (GB levels, plus optionally the GL
            lane when ``gl_lane`` is True — hardware needs "additional
            modifications to the sense amp circuit" for it, modeled as one
            extra mux input).
    """

    def __init__(
        self,
        input_port: int,
        radix: int,
        num_lanes: int,
        gl_lane: bool = False,
    ) -> None:
        if radix < 1:
            raise CircuitError(f"radix must be >= 1, got {radix}")
        if not 0 <= input_port < radix:
            raise CircuitError(f"input_port {input_port} out of range [0, {radix})")
        if num_lanes < 1:
            raise CircuitError(f"num_lanes must be >= 1, got {num_lanes}")
        self.input_port = input_port
        self.radix = radix
        self.num_lanes = num_lanes
        self.gl_lane = gl_lane

    @property
    def selectable_inputs(self) -> int:
        """Wires the mux chooses among (GB lanes + optional GL lane)."""
        return self.num_lanes + (1 if self.gl_lane else 0)

    @property
    def depth(self) -> int:
        """2:1 mux stages on the sense path — the Table 2 delay driver."""
        if self.selectable_inputs <= 1:
            return 0
        return int(math.ceil(math.log2(self.selectable_inputs)))

    def candidate_wires(self) -> List[int]:
        """Bus wire indices this input can sense, lane by lane.

        Matches the paper's example: "If N = 2, the sense amp will sense
        wires 2, 10, 18, 26, 34, 42, 50, and 58" on a radix-8, 64-bit bus.
        """
        wires = [lane * self.radix + self.input_port for lane in range(self.num_lanes)]
        if self.gl_lane:
            wires.append(self.num_lanes * self.radix + self.input_port)
        return wires

    def select(self, level: int, gl_request: bool = False) -> int:
        """Bus wire index sensed for the given counter MSB value.

        Args:
            level: the auxVC MSB value (thermometer level).
            gl_request: sense the dedicated GL lane instead (Fig. 3's
                "additional modifications").

        Raises:
            CircuitError: if the GL lane is requested but not fitted, or
                the level exceeds the fitted lanes.
        """
        if gl_request:
            if not self.gl_lane:
                raise CircuitError("this sense amp has no GL lane input")
            return self.num_lanes * self.radix + self.input_port
        if not 0 <= level < self.num_lanes:
            raise CircuitError(
                f"level {level} out of range [0, {self.num_lanes})"
            )
        return level * self.radix + self.input_port
