"""One output's complete wire-level arbitration (paper Fig. 1(c)).

The fabric owns the repurposed bus bitlines for one output: ``levels`` GB
lanes (one per thermometer position) plus one dedicated GL lane. An
arbitration cycle proceeds exactly as in hardware:

1. precharge all lanes;
2. every requesting input drives its discharge decisions — all-ones on GB
   lanes below it, its LRG row on its own lane, nothing above it; GL
   requesters force all-ones onto every GB lane and their LRG row onto the
   GL lane (Fig. 3);
3. every requester senses the single wire at (its lane, its position);
   exactly one wire remains charged — its owner wins.

The bus must be wide enough: ``(levels + 1) * radix`` bitlines. Section 4.4
derives the same constraint as ``num_lanes = output bus width / radix``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.lrg import LRGState
from ..core.thermometer import ThermometerCode
from ..errors import ArbitrationError, CircuitError
from ..faults import FaultInjector, FaultKind, FaultPlan, resolve_injector
from .bitline import Lane
from .discharge import discharge_decision, gl_discharge_decision
from .sense_amp import SenseAmpMux

#: Fault kinds the wire-level model can host; behavioral kinds (stalls,
#: drops, ...) belong to the kernels in :mod:`repro.switch`.
_CIRCUIT_FAULT_KINDS = (
    FaultKind.BITLINE_STUCK,
    FaultKind.BITLINE_LEAK,
    FaultKind.SENSE_FLAKY,
)


def _checked_circuit_injector(
    plan: Optional[FaultPlan], radix: int, levels: int
) -> Optional[FaultInjector]:
    """Resolve a fault plan against this fabric's geometry, failing fast."""
    injector = resolve_injector(plan)
    if injector is None:
        return None
    for spec in injector.plan.faults:
        if spec.kind not in _CIRCUIT_FAULT_KINDS:
            raise CircuitError(
                f"{spec.kind.value} is a behavioral fault; inject it into a "
                f"repro.switch kernel, not the arbitration fabric"
            )
        if spec.kind is FaultKind.SENSE_FLAKY:
            assert spec.input_port is not None
            if not 0 <= spec.input_port < radix:
                raise CircuitError(
                    f"sense-flaky fault targets input {spec.input_port} "
                    f"outside radix {radix}"
                )
        else:
            assert spec.lane is not None and spec.position is not None
            if not 0 <= spec.lane <= levels:
                raise CircuitError(
                    f"bitline fault targets lane {spec.lane} outside "
                    f"[0, {levels}] (the GL lane is {levels})"
                )
            if not 0 <= spec.position < radix:
                raise CircuitError(
                    f"bitline fault targets position {spec.position} "
                    f"outside radix {radix}"
                )
    return injector


@dataclass(frozen=True)
class FabricRequest:
    """One input's request presented to the fabric.

    Attributes:
        input_port: the requesting input.
        thermometer: its crosspoint's thermometer code register (ignored
            for GL requests, which use the dedicated lane).
        is_gl: True when the head packet is Guaranteed Latency class.
    """

    input_port: int
    thermometer: Optional[ThermometerCode] = None
    is_gl: bool = False

    def __post_init__(self) -> None:
        if self.input_port < 0:
            raise CircuitError(f"input_port must be >= 0, got {self.input_port}")
        if not self.is_gl and self.thermometer is None:
            raise CircuitError("GB requests must carry a thermometer code")

    @property
    def gb_thermometer(self) -> ThermometerCode:
        """The thermometer code of a GB request, narrowed to non-None.

        ``__post_init__`` guarantees GB requests carry one; asking a GL
        request for its (nonexistent) code is a modelling bug.
        """
        if self.thermometer is None:
            raise CircuitError("GL requests have no thermometer code")
        return self.thermometer


class ArbitrationFabric:
    """Wire-level single-cycle arbitration for one output.

    Args:
        radix: number of inputs (bitlines per lane).
        levels: number of GB thermometer levels (GB lanes).
        lrg: the output's LRG state; its priority rows are replicated into
            every crosspoint, exactly as in hardware.
        fault_plan: optional :class:`~repro.faults.FaultPlan` of circuit
            faults (stuck/leaky bitlines, flaky sense amps). Such faults
            break the one-charged-wire invariant, so their declared
            contract is ``raise``: arbitration surfaces them as
            :class:`~repro.errors.ArbitrationError`. Behavioral fault
            kinds are rejected here.
    """

    def __init__(
        self,
        radix: int,
        levels: int,
        lrg: Optional[LRGState] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if radix < 1:
            raise CircuitError(f"radix must be >= 1, got {radix}")
        if levels < 1:
            raise CircuitError(f"levels must be >= 1, got {levels}")
        self.radix = radix
        self.levels = levels
        self._fault_injector = _checked_circuit_injector(fault_plan, radix, levels)
        self.lrg = lrg if lrg is not None else LRGState(radix)
        self.gb_lanes: List[Lane] = [Lane(i, radix) for i in range(levels)]
        self.gl_lane = Lane(levels, radix)
        self.sense_muxes: List[SenseAmpMux] = [
            SenseAmpMux(input_port=p, radix=radix, num_lanes=levels, gl_lane=True)
            for p in range(radix)
        ]
        #: bitline pull-downs in the most recent arbitration (an energy
        #: activity proxy — each discharge is one C*V^2 event).
        self.last_discharge_count = 0
        #: cumulative pull-downs across all arbitrations.
        self.total_discharge_count = 0
        #: cumulative precharge events (every precharged wire must be
        #: recharged after a discharged cycle).
        self.total_arbitrations = 0
        #: wires pulled down by injected faults (kept out of the energy
        #: proxies above — a defect's leakage is not request activity).
        self.fault_forced_discharges = 0
        #: sense-amp misreads injected so far.
        self.fault_sense_flips = 0

    @property
    def bus_bits_required(self) -> int:
        """Bitlines this fabric occupies on the output bus."""
        return (self.levels + 1) * self.radix

    # ------------------------------------------------------------ arbitration

    def arbitrate(self, requests: Sequence[FabricRequest]) -> int:
        """Run one arbitration cycle; returns the winning input.

        Raises:
            ArbitrationError: on an empty request set, duplicates, or —
                indicating a modelling bug — zero/multiple charged sense
                wires.
        """
        if not requests:
            raise ArbitrationError("fabric arbitration requires at least one request")
        ports = [r.input_port for r in requests]
        if len(set(ports)) != len(ports):
            raise ArbitrationError(f"duplicate requesting ports: {sorted(ports)}")
        for request in requests:
            if request.input_port >= self.radix:
                raise ArbitrationError(
                    f"input {request.input_port} out of range [0, {self.radix})"
                )
            if (
                request.thermometer is not None
                and request.thermometer.positions != self.levels
            ):
                raise ArbitrationError(
                    f"thermometer has {request.thermometer.positions} positions, "
                    f"fabric has {self.levels} GB lanes"
                )

        # 1. Precharge.
        for lane in self.gb_lanes:
            lane.precharge()
        self.gl_lane.precharge()

        # 1b. Fault injection: stuck bitlines read discharged every cycle;
        #     leaky ones lose their precharge on keyed per-arbitration
        #     draws. The sentinel -1 marks a pull-down no input performed.
        injector = self._fault_injector
        arb_index = self.total_arbitrations
        if injector is not None:
            forced = injector.stuck_bitlines() + injector.leaky_discharges(arb_index)
            for lane_index, position in forced:
                lane = (
                    self.gl_lane
                    if lane_index == self.levels
                    else self.gb_lanes[lane_index]
                )
                lane.bitlines[position].discharge(-1)
                self.fault_forced_discharges += 1

        # 2. Discharge.
        discharges = 0
        for request in requests:
            port = request.input_port
            lrg_row = self.lrg.priority_row(port)
            if request.is_gl:
                for lane in self.gb_lanes:
                    lane.apply_discharge([1] * self.radix, port)
                    discharges += self.radix
                self.gl_lane.apply_discharge(lrg_row, port)
                discharges += sum(lrg_row)
                continue
            therm_bits = list(request.gb_thermometer.bits)
            for lane in self.gb_lanes:
                bits = discharge_decision(lane.lane_index, therm_bits, lrg_row)
                bits = gl_discharge_decision(False, bits)
                lane.apply_discharge(bits, port)
                discharges += sum(bits)
        self.last_discharge_count = discharges
        self.total_discharge_count += discharges
        self.total_arbitrations += 1

        # 3. Sense: each input reads one wire.
        winners: Dict[int, FabricRequest] = {}
        for request in requests:
            port = request.input_port
            # The mux before the sense amp (Fig. 2) selects the wire from
            # the counter's MSBs — or the GL lane for GL requests; with a
            # GL request present a GB input's wire was force-discharged
            # and it reads a loss.
            level = 0 if request.is_gl else request.gb_thermometer.level
            wire = self.sense_muxes[port].select(level, gl_request=request.is_gl)
            lane_index, position = divmod(wire, self.radix)
            lane = self.gl_lane if lane_index == self.levels else self.gb_lanes[lane_index]
            charged = lane.sense(position, port)
            if injector is not None and injector.sense_flip(port, arb_index):
                # A flaky sense amp inverts this read; the winner check
                # below then sees zero or multiple charged wires and
                # raises, per the fault kind's "raise" contract.
                charged = not charged
                self.fault_sense_flips += 1
            if charged:
                winners[port] = request
        if len(winners) != 1:
            raise ArbitrationError(
                f"inhibit arbitration must leave exactly one charged sense wire, "
                f"got {sorted(winners)}"
            )
        return next(iter(winners))

    def arbitrate_and_grant(self, requests: Sequence[FabricRequest]) -> int:
        """Arbitrate and update the LRG state with the winner."""
        winner = self.arbitrate(requests)
        self.lrg.grant(winner)
        return winner
