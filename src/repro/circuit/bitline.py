"""Bitlines and lanes of the repurposed output data bus.

During arbitration a subset of the output bus bitlines is precharged;
requesting inputs then *discharge* the wires of inputs they beat, and each
input finally senses exactly one wire — the position matching its own index
within the lane matching its priority level. A wire that was discharged by
someone else means "you lost".

A *lane* is a group of ``radix`` bitlines — "exactly the number of bitlines
required to perform LRG arbitration" (paper footnote 2).
"""

from __future__ import annotations

from typing import List, Set

from ..errors import CircuitError


class Bitline:
    """One precharged arbitration wire.

    Tracks *who* discharged it so the model can enforce the hardware
    invariant that no input ever discharges the wire it senses.
    """

    def __init__(self, index: int) -> None:
        if index < 0:
            raise CircuitError(f"bitline index must be >= 0, got {index}")
        self.index = index
        self._precharged = False
        self._discharged_by: Set[int] = set()

    @property
    def precharged(self) -> bool:
        """True after :meth:`precharge` until the next arbitration."""
        return self._precharged

    @property
    def discharged_by(self) -> Set[int]:
        """Inputs that pulled this wire down in this arbitration (a copy)."""
        return set(self._discharged_by)

    def precharge(self) -> None:
        """Charge the wire at the start of an arbitration cycle."""
        self._precharged = True
        self._discharged_by.clear()

    def discharge(self, by_input: int) -> None:
        """Pull the wire down.

        Raises:
            CircuitError: if the wire was never precharged (a sequencing
                bug in the caller).
        """
        if not self._precharged:
            raise CircuitError(f"discharge of bitline {self.index} before precharge")
        self._discharged_by.add(by_input)

    def sense(self, by_input: int) -> bool:
        """Read the wire: ``True`` when still charged.

        Raises:
            CircuitError: if sensed before precharge, or if the sensing
                input itself discharged the wire — hardware never routes an
                input's pull-down onto its own sense wire, so that state
                indicates a modelling bug.
        """
        if not self._precharged:
            raise CircuitError(f"sense of bitline {self.index} before precharge")
        if by_input in self._discharged_by:
            raise CircuitError(
                f"input {by_input} sensed bitline {self.index} it discharged itself"
            )
        return not self._discharged_by


class Lane:
    """A group of ``radix`` bitlines — one LRG vector wide.

    Args:
        lane_index: position of the lane on the bus.
        radix: number of inputs (bitlines per lane).
    """

    def __init__(self, lane_index: int, radix: int) -> None:
        if lane_index < 0:
            raise CircuitError(f"lane_index must be >= 0, got {lane_index}")
        if radix < 1:
            raise CircuitError(f"radix must be >= 1, got {radix}")
        self.lane_index = lane_index
        self.radix = radix
        self.bitlines: List[Bitline] = [
            Bitline(lane_index * radix + position) for position in range(radix)
        ]

    def precharge(self) -> None:
        """Precharge every bitline in the lane."""
        for bitline in self.bitlines:
            bitline.precharge()

    def apply_discharge(self, bits: List[int], by_input: int) -> None:
        """Pull down the positions where ``bits`` has a 1.

        Raises:
            CircuitError: if ``bits`` is not one LRG vector wide.
        """
        if len(bits) != self.radix:
            raise CircuitError(
                f"discharge vector has {len(bits)} bits, lane is {self.radix} wide"
            )
        for position, bit in enumerate(bits):
            if bit:
                self.bitlines[position].discharge(by_input)

    def sense(self, position: int, by_input: int) -> bool:
        """Sense one position; ``True`` when still charged."""
        if not 0 <= position < self.radix:
            raise CircuitError(f"position {position} out of range [0, {self.radix})")
        return self.bitlines[position].sense(by_input)
