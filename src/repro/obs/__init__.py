"""Run observability: probes, run reports, and structured traces.

The simulation kernels (:mod:`repro.switch.simulator`,
:mod:`repro.switch.flit_kernel`, :mod:`repro.multiswitch.simulator`) accept
an optional :class:`Probe` and feed it counters at their wake, arbitration,
grant, chain, and throttle points. Passing no probe keeps the hot path
untouched (each hook is a single ``is not None`` check — the bench report's
``probe_overhead`` section quantifies it); passing a
:class:`CountingProbe` collects per-run kernel counters; passing an
:class:`NDJSONTraceProbe` additionally streams structured grant/delivery
events to a file instead of accumulating them in memory.

:class:`RunReport` bundles the kernel counters with the existing per-flow
statistics into one JSON document (schema in ``docs/OBSERVABILITY.md``) so
every run can leave a machine-readable artifact behind.
"""

from .probe import CountingProbe, Probe
from .report import RunReport
from .trace import NDJSONTraceProbe

__all__ = [
    "CountingProbe",
    "NDJSONTraceProbe",
    "Probe",
    "RunReport",
]
