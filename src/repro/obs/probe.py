"""The probe interface: counter, timer, and trace hooks.

Kernels hold ``probe: Optional[Probe]`` and guard every hook call with a
single ``if probe is not None`` check, so a run without a probe pays one
pointer comparison per instrumentation point and nothing else. Event
(trace) hooks are doubly guarded — kernels also check :attr:`Probe.trace`
before building the event payload — so counter-only probes never pay for
string formatting either.

Counter names are dotted, lowercase, and stable; the kernel counters are
documented in ``docs/OBSERVABILITY.md``. Probes are observation-only by
contract: a probe must never influence simulation behaviour (determinism
tests run with and without probes attached and expect identical schedules).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Union

#: Values allowed in trace-event payload fields.
EventValue = Union[int, float, str, bool, None]


class Probe:
    """Base probe: every hook is a no-op.

    Subclass and override whichever hooks you need. The base class doubles
    as a null probe for callers that prefer an unconditional ``probe.x()``
    call style over ``Optional[Probe]`` guards.
    """

    #: When True, kernels build and emit ``event()`` payloads (structured
    #: tracing); when False they skip the payload construction entirely.
    trace: bool = False

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to counter ``name``."""

    def gauge(self, name: str, value: int) -> None:
        """Record an instantaneous level; the probe keeps the maximum."""

    def event(self, kind: str, cycle: int, **fields: EventValue) -> None:
        """Record one structured trace event at simulated ``cycle``."""

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time spent inside the ``with`` body.

        Timers are for harness code (benches, CLIs) — simulator kernels
        never call them, keeping wall-clock reads out of the
        determinism-guarded packages.
        """
        yield


#: Bound hook signatures as stored on :class:`ProbeHooks`.
CountHook = Callable[..., None]
GaugeHook = Callable[[str, int], None]
EventHook = Callable[..., None]


@dataclass(frozen=True)
class ProbeHooks:
    """Pre-resolved probe hooks for kernel hot loops.

    Each field is either the probe's bound method or ``None`` when the
    probe never overrode that hook — so a kernel checks one local slot
    (``if count is not None``) instead of paying a dynamic attribute
    lookup and a no-op call per instrumentation point. Resolve once per
    run with :func:`resolve_hooks`; hook resolution must never happen
    inside the per-wake loop.
    """

    count: Optional[CountHook]
    gauge: Optional[GaugeHook]
    event: Optional[EventHook]


#: Hooks for the no-probe case: every slot is None.
NO_HOOKS = ProbeHooks(count=None, gauge=None, event=None)


def resolve_hooks(probe: Optional[Probe]) -> ProbeHooks:
    """Resolve a probe's overridden hooks to bound methods, once.

    A hook slot is non-``None`` only when the probe's class actually
    overrides it — a probe inheriting the base no-op costs the kernel
    nothing. The ``event`` slot additionally requires ``probe.trace`` to
    be set, folding the old double guard (``probe is not None and
    probe.trace``) into a single slot check.
    """
    if probe is None:
        return NO_HOOKS
    cls = type(probe)
    count = probe.count if cls.count is not Probe.count else None
    gauge = probe.gauge if cls.gauge is not Probe.gauge else None
    event: Optional[EventHook] = None
    if probe.trace and cls.event is not Probe.event:
        event = probe.event
    return ProbeHooks(count=count, gauge=gauge, event=event)


class CountingProbe(Probe):
    """In-memory probe: counters, high-water gauges, and wall timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._maxima: Dict[str, int] = {}
        self._timings: Dict[str, float] = {}

    def count(self, name: str, delta: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: int) -> None:
        current = self._maxima.get(name)
        if current is None or value > current:
            self._maxima[name] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._timings[name] = self._timings.get(name, 0.0) + elapsed

    # ----------------------------------------------------------------- views

    @property
    def counters(self) -> Dict[str, int]:
        """Counter name -> accumulated value (copy)."""
        return dict(self._counters)

    @property
    def maxima(self) -> Dict[str, int]:
        """Gauge name -> highest value seen (copy)."""
        return dict(self._maxima)

    @property
    def timings(self) -> Dict[str, float]:
        """Timer name -> accumulated wall seconds (copy)."""
        return dict(self._timings)

    def value(self, name: str) -> int:
        """Counter value, 0 when never incremented."""
        return self._counters.get(name, 0)
