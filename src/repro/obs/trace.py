"""NDJSON structured event trace.

An opt-in alternative to the kernels' in-memory ``events`` list: each
grant/delivery/throttle event is written as one JSON object per line the
moment it happens, so trace size is bounded by disk, not RAM, and a
crashed run still leaves a readable prefix. Lines look like::

    {"kind": "grant", "cycle": 41, "output": 2, "input": 0, ...}

The probe also inherits :class:`~repro.obs.probe.CountingProbe`, so a
traced run gets kernel counters for free.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import TracebackType
from typing import IO, Optional, Type, Union

from .probe import CountingProbe, EventValue


class NDJSONTraceProbe(CountingProbe):
    """Streams trace events to a file as newline-delimited JSON.

    Args:
        destination: path (opened for writing, truncated) or an already
            open text stream (caller keeps ownership).

    Use as a context manager, or call :meth:`close` explicitly when a path
    was given.
    """

    trace = True

    def __init__(self, destination: Union[str, Path, IO[str]]) -> None:
        super().__init__()
        if isinstance(destination, (str, Path)):
            self._stream: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False
        self.events_written = 0

    def event(self, kind: str, cycle: int, **fields: EventValue) -> None:
        record = {"kind": kind, "cycle": cycle}
        record.update(fields)
        self._stream.write(json.dumps(record) + "\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the stream (only if this probe opened it)."""
        if self._owns_stream and not self._stream.closed:
            self._stream.close()
        else:
            self._stream.flush()

    def __enter__(self) -> "NDJSONTraceProbe":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()
