"""NDJSON structured event trace.

An opt-in alternative to the kernels' in-memory ``events`` list: each
grant/delivery/throttle event is written as one JSON object per line the
moment it happens, so trace size is bounded by disk, not RAM. Lines look
like::

    {"kind": "grant", "cycle": 41, "output": 2, "input": 0, ...}

When given a *path*, the probe streams into a temporary sibling file and
renames it over the destination on :meth:`close` — re-tracing over a
previous run's file either fully replaces it or (on a crash mid-run)
leaves it intact, with the partial trace still readable at the temp name
for post-mortems. Stream destinations are written directly (the caller
owns the stream's durability).

The probe also inherits :class:`~repro.obs.probe.CountingProbe`, so a
traced run gets kernel counters for free.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from types import TracebackType
from typing import IO, Optional, Type, Union

from ..resilience.atomic import _fsync_directory
from .probe import CountingProbe, EventValue


class NDJSONTraceProbe(CountingProbe):
    """Streams trace events to a file as newline-delimited JSON.

    Args:
        destination: path (written atomically: temp file + rename on
            :meth:`close`) or an already open text stream (caller keeps
            ownership; written directly).

    Use as a context manager, or call :meth:`close` explicitly when a path
    was given — an unclosed path trace never replaces the destination.
    """

    trace = True

    def __init__(self, destination: Union[str, Path, IO[str]]) -> None:
        super().__init__()
        self._final_path: Optional[Path] = None
        self._temp_path: Optional[Path] = None
        if isinstance(destination, (str, Path)):
            self._final_path = Path(destination)
            self._temp_path = self._final_path.with_name(
                f"{self._final_path.name}.tmp-{os.getpid()}"
            )
            self._stream: IO[str] = open(self._temp_path, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False
        self.events_written = 0

    def event(self, kind: str, cycle: int, **fields: EventValue) -> None:
        record = {"kind": kind, "cycle": cycle}
        record.update(fields)
        self._stream.write(json.dumps(record) + "\n")
        self.events_written += 1

    def close(self) -> None:
        """Finalize the trace.

        Path destinations are fsynced and renamed into place (the atomic
        commit point); stream destinations are just flushed.
        """
        if not self._owns_stream:
            self._stream.flush()
            return
        if self._stream.closed:
            return
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self._stream.close()
        assert self._temp_path is not None and self._final_path is not None
        os.replace(self._temp_path, self._final_path)
        _fsync_directory(self._final_path.parent)

    def __enter__(self) -> "NDJSONTraceProbe":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()
