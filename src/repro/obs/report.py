"""Per-run report: kernel counters + flow statistics as one JSON document.

A :class:`RunReport` is built from a finished
:class:`~repro.switch.simulator.SimulationResult` (either kernel produces
one) and, optionally, the :class:`~repro.obs.probe.CountingProbe` that was
attached to the run. Serialization of the flow statistics lives in
:mod:`repro.serialization` next to the config/workload codecs, so the whole
experiment — inputs and outputs — round-trips through the same module.

Schema (see ``docs/OBSERVABILITY.md`` for field-by-field docs)::

    {"schema_version": 1, "kernel": "event", "workload": "...",
     "horizon": 50000, "warmup_cycles": 5000,
     "grants": 123, "chained_grants": 0,
     "counters": {"kernel.wakes": ...}, "maxima": {...}, "timings": {...},
     "gl_throttle_events": {"0": 17, ...},
     "output_utilization": {"0": 0.88, ...},
     "config": {...}, "flows": [{...}, ...]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..resilience import atomic_write_text
from ..serialization import JSONDict, config_to_dict, stats_collector_to_dict
from .probe import CountingProbe

if False:  # TYPE_CHECKING — keep kernel imports out of the runtime graph
    from ..switch.simulator import SimulationResult

#: Bumped when the report layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass
class RunReport:
    """Everything measured about one simulation run, JSON-ready.

    Attributes:
        kernel: which engine produced the run (``event``/``flit``).
        workload: workload label.
        horizon: simulated cycles.
        warmup_cycles: cycles excluded from measurement.
        grants: total arbitration grants.
        chained_grants: grants that skipped the arbitration bubble.
        counters: probe counters (empty when no probe was attached).
        maxima: probe high-water gauges.
        timings: probe wall-clock timers (harness-side only).
        gl_throttle_events: per-output count of (cycle, input) denial
            decisions where GL priority was withheld from a pending GL
            request.
        output_utilization: delivered flits/cycle per output.
        config: the switch configuration (serialized).
        flows: per-flow statistics (serialized).
        resilience: sweep-outcome dicts (journal/retry/salvage accounting)
            when the run used ``repro.resilience``; empty — and omitted
            from the JSON — otherwise, so pre-resilience reports are
            byte-identical.
    """

    kernel: str
    workload: str
    horizon: int
    warmup_cycles: int
    grants: int
    chained_grants: int
    counters: Dict[str, int] = field(default_factory=dict)
    maxima: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    gl_throttle_events: Dict[int, int] = field(default_factory=dict)
    output_utilization: Dict[int, float] = field(default_factory=dict)
    config: JSONDict = field(default_factory=dict)
    flows: List[JSONDict] = field(default_factory=list)
    resilience: List[JSONDict] = field(default_factory=list)

    @classmethod
    def from_result(
        cls,
        result: "SimulationResult",
        probe: Optional[CountingProbe] = None,
    ) -> "RunReport":
        """Assemble a report from a finished run and its optional probe."""
        return cls(
            kernel=result.kernel,
            workload=result.workload_name,
            horizon=result.horizon,
            warmup_cycles=result.warmup_cycles,
            grants=result.grants,
            chained_grants=result.chained_grants,
            counters=probe.counters if probe is not None else {},
            maxima=probe.maxima if probe is not None else {},
            timings=probe.timings if probe is not None else {},
            gl_throttle_events=dict(result.gl_throttle_events),
            output_utilization=dict(result.output_utilization),
            config=config_to_dict(result.config),
            flows=stats_collector_to_dict(result.stats),
        )

    def to_dict(self) -> JSONDict:
        """Plain JSON-compatible dict (int keys become strings)."""
        document: JSONDict = {
            "schema_version": SCHEMA_VERSION,
            "kernel": self.kernel,
            "workload": self.workload,
            "horizon": self.horizon,
            "warmup_cycles": self.warmup_cycles,
            "grants": self.grants,
            "chained_grants": self.chained_grants,
            "counters": dict(self.counters),
            "maxima": dict(self.maxima),
            "timings": dict(self.timings),
            "gl_throttle_events": {
                str(o): n for o, n in sorted(self.gl_throttle_events.items())
            },
            "output_utilization": {
                str(o): u for o, u in sorted(self.output_utilization.items())
            },
            "config": self.config,
            "flows": self.flows,
        }
        if self.resilience:
            document["resilience"] = list(self.resilience)
        return document

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: Union[str, Path]) -> None:
        """Write the report to ``path`` as JSON, atomically.

        The file is written to a temp name and renamed into place, so a
        crash mid-write never tears an existing report (``--report`` over
        a previous run's file either fully replaces it or leaves it
        intact).
        """
        atomic_write_text(Path(path), self.to_json() + "\n")
