"""repro — reproduction of *Quality-of-Service for a High-Radix Switch*
(Abeyratne et al., DAC 2014).

The paper adds three traffic classes to the Swizzle Switch, a single-stage
high-radix crossbar: Best-Effort (LRG arbitration), Guaranteed Bandwidth
(SSVC — a single-cycle, thermometer-coded hardware adaptation of the
Virtual Clock algorithm), and Guaranteed Latency (a dedicated top-priority
lane with a closed-form waiting-time bound).

Quick start::

    from repro import (
        SwitchConfig, Simulation, fig4_workload, ARBITER_PRESETS,
    )

    config = SwitchConfig(radix=8, channel_bits=128)
    workload = fig4_workload(inject_rate=None)   # saturating sources
    sim = Simulation(config, workload, arbiter_factory=ARBITER_PRESETS["ssvc"])
    result = sim.run(50_000)
    print(result.stats.output_throughput(0))

Package map:

* :mod:`repro.core` — the QoS algorithms (auxVC counters, thermometer
  codes, LRG, SSVC, bandwidth admission, GL bound math).
* :mod:`repro.circuit` — the wire-level arbitration model and its
  verification against the reference decision (paper Section 4.1).
* :mod:`repro.qos` — output arbiters: the paper's stack plus WRR, DWRR,
  WFQ, TDM, GSF, and the DAC'12 fixed-priority baseline.
* :mod:`repro.switch` — the cycle-accurate crossbar simulator.
* :mod:`repro.traffic` — workloads: flows, injection processes, patterns,
  trace record/replay.
* :mod:`repro.metrics` — throughput/latency statistics and report tables.
* :mod:`repro.hw` — storage/area/timing/lane cost models (Tables 1-2).
* :mod:`repro.experiments` — one harness module per paper table/figure;
  also the ``repro-exp`` CLI.
"""

from .config import FIG4_CONFIG, TABLE1_CONFIG, GLPolicerConfig, QoSConfig, SwitchConfig
from .core import (
    BandwidthAllocator,
    LRGState,
    Request,
    SSVCCore,
    ThermometerCode,
    VirtualClockCounter,
    burst_budgets,
    compute_vtick,
    gl_latency_bound,
)
from .errors import (
    AdmissionError,
    ArbitrationError,
    CircuitError,
    ConfigError,
    ReproError,
    SimulationError,
    TrafficError,
    VerificationError,
)
from .experiments import ARBITER_PRESETS, make_arbiter_factory, run_simulation
from .serialization import load_experiment, save_experiment
from .qos import (
    DWRRArbiter,
    FixedPriorityArbiter,
    GSFArbiter,
    LRGArbiter,
    OutputArbiter,
    SSVCArbiter,
    TDMArbiter,
    ThreeClassArbiter,
    VirtualClockArbiter,
    WFQArbiter,
    WRRArbiter,
)
from .switch import Packet, Simulation, SimulationResult, SwizzleSwitch
from .traffic import (
    BernoulliInjection,
    BurstyInjection,
    FlowSpec,
    SaturatingInjection,
    Workload,
    be_flow,
    fig4_workload,
    gb_flow,
    gl_flow,
    hotspot_workload,
    permutation_workload,
    single_output_workload,
    uniform_random_workload,
)
from .types import CounterMode, FlowId, TrafficClass

__version__ = "1.0.0"

__all__ = [
    "ARBITER_PRESETS",
    "AdmissionError",
    "ArbitrationError",
    "BandwidthAllocator",
    "BernoulliInjection",
    "BurstyInjection",
    "CircuitError",
    "ConfigError",
    "CounterMode",
    "DWRRArbiter",
    "FIG4_CONFIG",
    "FixedPriorityArbiter",
    "FlowId",
    "FlowSpec",
    "GLPolicerConfig",
    "GSFArbiter",
    "LRGArbiter",
    "LRGState",
    "OutputArbiter",
    "Packet",
    "QoSConfig",
    "ReproError",
    "Request",
    "SSVCArbiter",
    "SSVCCore",
    "SaturatingInjection",
    "Simulation",
    "SimulationError",
    "SimulationResult",
    "SwitchConfig",
    "SwizzleSwitch",
    "TABLE1_CONFIG",
    "TDMArbiter",
    "ThermometerCode",
    "ThreeClassArbiter",
    "TrafficClass",
    "TrafficError",
    "VerificationError",
    "VirtualClockArbiter",
    "VirtualClockCounter",
    "WFQArbiter",
    "WRRArbiter",
    "Workload",
    "be_flow",
    "burst_budgets",
    "compute_vtick",
    "fig4_workload",
    "gb_flow",
    "gl_flow",
    "gl_latency_bound",
    "hotspot_workload",
    "load_experiment",
    "make_arbiter_factory",
    "permutation_workload",
    "save_experiment",
    "run_simulation",
    "single_output_workload",
    "uniform_random_workload",
]
