"""JSON (de)serialization for configurations and workloads.

Experiments become reproducible artifacts: a switch configuration and a
workload round-trip through plain JSON, so a run can be described in a
file, checked into a repo, and replayed bit-identically (processes carry
their parameters; the simulation seed is supplied at run time).

Example document::

    {
      "config": {"radix": 8, "channel_bits": 128,
                 "qos": {"sig_bits": 4, "counter_mode": "subtract"},
                 "gl_policer": {"reserved_rate": 0.0}},
      "workload": {"name": "mine", "flows": [
          {"src": 0, "dst": 0, "class": "GB", "rate": 0.4,
           "packet_length": 8, "process": {"kind": "saturating"}}
      ]}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from .config import GLPolicerConfig, QoSConfig, SwitchConfig
from .errors import ConfigError
from .traffic.flows import FlowSpec, Workload

if TYPE_CHECKING:  # type-only: repro.metrics imports the switch package,
    # which must stay importable without this module (no cycle at runtime)
    from .metrics.counters import FlowStats, StatsCollector
    from .metrics.latency import LatencyStats
from .traffic.generators import (
    BernoulliInjection,
    BurstyInjection,
    InjectionProcess,
    SaturatingInjection,
    TraceInjection,
)
from .types import CounterMode, FlowId, TrafficClass

#: The JSON object boundary. ``Any`` is irreducible here — ``json.load``
#: returns untyped data by construction, and every consumer immediately
#: funnels it through the validating constructors below (``SwitchConfig``
#: et al. validate in ``__post_init__``), so the untyped surface is exactly
#: this module. This is the one sanctioned ``Any`` in the package; new code
#: should accept/return ``JSONDict`` rather than spelling ``Any`` again.
JSONDict = Dict[str, Any]

# --------------------------------------------------------------------- config


def config_to_dict(config: SwitchConfig) -> JSONDict:
    """SwitchConfig -> plain dict (JSON-ready)."""
    return {
        "radix": config.radix,
        "channel_bits": config.channel_bits,
        "flit_bytes": config.flit_bytes,
        "be_buffer_flits": config.be_buffer_flits,
        "gb_buffer_flits": config.gb_buffer_flits,
        "gl_buffer_flits": config.gl_buffer_flits,
        "arbitration_cycles": config.arbitration_cycles,
        "packet_chaining": config.packet_chaining,
        "max_chain_length": config.max_chain_length,
        "qos": {
            "sig_bits": config.qos.sig_bits,
            "frac_bits": config.qos.frac_bits,
            "vtick_bits": config.qos.vtick_bits,
            "counter_mode": config.qos.counter_mode.value,
        },
        "gl_policer": {
            "reserved_rate": config.gl_policer.reserved_rate,
            "burst_window": config.gl_policer.burst_window,
        },
    }


def config_from_dict(data: JSONDict) -> SwitchConfig:
    """Plain dict -> SwitchConfig (validation via the dataclasses).

    Unknown keys are rejected so typos fail loudly.
    """
    data = dict(data)
    qos_data = dict(data.pop("qos", {}))
    policer_data = dict(data.pop("gl_policer", {}))
    if "counter_mode" in qos_data:
        qos_data["counter_mode"] = CounterMode.from_name(qos_data["counter_mode"])
    known = {
        "radix", "channel_bits", "flit_bytes", "be_buffer_flits",
        "gb_buffer_flits", "gl_buffer_flits", "arbitration_cycles",
        "packet_chaining", "max_chain_length",
    }
    unknown = set(data) - known
    if unknown:
        raise ConfigError(f"unknown SwitchConfig keys: {sorted(unknown)}")
    return SwitchConfig(
        qos=QoSConfig(**qos_data),
        gl_policer=GLPolicerConfig(**policer_data),
        **data,
    )


# ------------------------------------------------------------------ processes


def process_to_dict(process: Optional[InjectionProcess]) -> Optional[JSONDict]:
    """Injection process -> tagged dict; None passes through."""
    if process is None:
        return None
    if isinstance(process, BernoulliInjection):
        return {"kind": "bernoulli", "rate_flits": process.rate_flits}
    if isinstance(process, BurstyInjection):
        return {
            "kind": "bursty",
            "rate_flits": process.rate_flits,
            "burst_packets": process.burst_packets,
            "on_rate_flits": process.on_rate_flits,
        }
    if isinstance(process, SaturatingInjection):
        return {"kind": "saturating"}
    if isinstance(process, TraceInjection):
        return {"kind": "trace", "times": [int(t) for t in process.times]}
    raise ConfigError(f"cannot serialize process type {type(process).__name__}")


def process_from_dict(data: Optional[JSONDict]) -> Optional[InjectionProcess]:
    """Tagged dict -> injection process."""
    if data is None:
        return None
    kind = data.get("kind")
    if kind == "bernoulli":
        return BernoulliInjection(data["rate_flits"])
    if kind == "bursty":
        return BurstyInjection(
            data["rate_flits"],
            burst_packets=data.get("burst_packets", 4.0),
            on_rate_flits=data.get("on_rate_flits", 1.0),
        )
    if kind == "saturating":
        return SaturatingInjection()
    if kind == "trace":
        return TraceInjection(data["times"])
    raise ConfigError(f"unknown process kind {kind!r}")


# ------------------------------------------------------------------- workload


def workload_to_dict(workload: Workload) -> JSONDict:
    """Workload -> plain dict."""
    flows = []
    for spec in workload:
        length = spec.packet_length
        flows.append(
            {
                "src": spec.flow.src,
                "dst": spec.flow.dst,
                "class": spec.flow.traffic_class.short_name,
                "rate": spec.reserved_rate,
                "packet_length": list(length) if isinstance(length, tuple) else length,
                "process": process_to_dict(spec.process),
                "priority_level": spec.priority_level,
            }
        )
    return {"name": workload.name, "flows": flows}


def workload_from_dict(data: JSONDict) -> Workload:
    """Plain dict -> Workload (flow-level validation via FlowSpec)."""
    workload = Workload(name=data.get("name", "workload"))
    for raw in data.get("flows", []):
        length = raw.get("packet_length", 8)
        if isinstance(length, list):
            length = tuple(length)
        workload.add(
            FlowSpec(
                flow=FlowId(
                    raw["src"], raw["dst"], TrafficClass[raw.get("class", "GB")]
                ),
                packet_length=length,
                process=process_from_dict(raw.get("process")),
                reserved_rate=raw.get("rate"),
                priority_level=raw.get("priority_level", 0),
            )
        )
    return workload


# ----------------------------------------------------------------- run stats


def latency_stats_to_dict(stats: "LatencyStats") -> JSONDict:
    """LatencyStats -> summary dict (count/mean/min/max/percentiles)."""
    if stats.count == 0:
        return {"count": 0}
    return {
        "count": stats.count,
        "mean": stats.mean,
        "min": stats.minimum,
        "max": stats.maximum,
        "p50": stats.p50,
        "p95": stats.p95,
        "p99": stats.p99,
    }


def flow_stats_to_dict(stats: "FlowStats", measured_cycles: Optional[int]) -> JSONDict:
    """One flow's statistics -> plain dict (JSON-ready).

    ``measured_cycles`` (from ``StatsCollector.measured_cycles``) converts
    the flit totals into rates; pass ``None`` for an unfinished collector.
    """
    flow = stats.flow
    doc: JSONDict = {
        "src": flow.src,
        "dst": flow.dst,
        "class": flow.traffic_class.short_name,
        "offered_packets": stats.offered_packets,
        "offered_flits": stats.offered_flits,
        "delivered_packets": stats.delivered_packets,
        "delivered_flits": stats.delivered_flits,
        "latency": latency_stats_to_dict(stats.latency),
        "waiting": latency_stats_to_dict(stats.waiting),
    }
    if measured_cycles:
        doc["offered_rate"] = stats.offered_rate(measured_cycles)
        doc["accepted_rate"] = stats.accepted_rate(measured_cycles)
    return doc


def stats_collector_to_dict(collector: "StatsCollector") -> "list[JSONDict]":
    """All per-flow statistics of a run, sorted by flow identity."""
    measured = collector.measured_cycles if collector.horizon is not None else None
    return [
        flow_stats_to_dict(stats, measured)
        for _, stats in sorted(collector.flows.items(), key=lambda kv: str(kv[0]))
    ]


# --------------------------------------------------------------------- files


def save_experiment(
    path: Union[str, Path], config: SwitchConfig, workload: Workload
) -> None:
    """Write a config + workload document to a JSON file."""
    document = {
        "config": config_to_dict(config),
        "workload": workload_to_dict(workload),
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def load_experiment(path: Union[str, Path]) -> "tuple[SwitchConfig, Workload]":
    """Read a config + workload document from a JSON file."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"malformed experiment file {path}: {exc}") from exc
    if "config" not in document or "workload" not in document:
        raise ConfigError(
            f"experiment file {path} needs 'config' and 'workload' sections"
        )
    return (
        config_from_dict(document["config"]),
        workload_from_dict(document["workload"]),
    )
