"""Command-line entry point: ``repro-exp <experiment> [--fast]``.

Runs any of the paper's experiments and prints its report::

    repro-exp fig4          # Fig. 4 (a) and (b)
    repro-exp fig5          # Fig. 5, steady and bursty
    repro-exp table1        # storage breakdown
    repro-exp table2        # frequency model
    repro-exp rate-adherence
    repro-exp gl-bound
    repro-exp gl-burst
    repro-exp scalability
    repro-exp circuit
    repro-exp baselines
    repro-exp composition   # Section 4.4 multi-switch study (extension)
    repro-exp faults        # QoS resilience under injected faults
    repro-exp tournament    # classic SSVC vs iterative VOQ schedulers
    repro-exp all           # everything (slow)
    repro-exp custom --config exp.json   # run a serialized experiment
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from ..errors import ConfigError, SweepInterrupted
from ..resilience import (
    FailurePolicy,
    ResilienceOptions,
    RetryPolicy,
    RunJournal,
)
from . import (
    baseline_comparison,
    circuit_verification,
    composition,
    faults_resilience,
    fig4_bandwidth,
    fig5_latency_fairness,
    gl_burst,
    gl_latency_bound,
    rate_adherence,
    scalability,
    table1_storage,
    table2_frequency,
    tournament,
)
from .common import ARBITER_PRESETS, KERNELS

#: Experiment name -> its ``main(fast) -> str`` function.
EXPERIMENTS: Dict[str, Callable[[bool], str]] = {
    "fig4": fig4_bandwidth.main,
    "fig5": fig5_latency_fairness.main,
    "table1": table1_storage.main,
    "table2": table2_frequency.main,
    "rate-adherence": rate_adherence.main,
    "gl-bound": gl_latency_bound.main,
    "gl-burst": gl_burst.main,
    "scalability": scalability.main,
    "circuit": circuit_verification.main,
    "baselines": baseline_comparison.main,
    "composition": composition.main,
    "faults": faults_resilience.main,
    "tournament": tournament.main,
}

#: Experiments whose ``main`` additionally accepts ``jobs=`` (sweeps that
#: fan out through repro.parallel); --jobs is a no-op for the others.
PARALLEL_EXPERIMENTS = frozenset(
    {"fig4", "fig5", "rate-adherence", "scalability", "circuit",
     "composition", "faults", "tournament"}
)


def _run_custom(
    config_path: str,
    arbiter: str,
    horizon: int,
    seed: int,
    report_path: "str | None" = None,
    trace_path: "str | None" = None,
    kernel: str = "event",
) -> str:
    """Run a JSON-described experiment and return its summary table."""
    from ..obs.probe import CountingProbe, Probe
    from ..obs.report import RunReport
    from ..obs.trace import NDJSONTraceProbe
    from ..serialization import load_experiment
    from .common import run_simulation
    from typing import Optional

    config, workload = load_experiment(config_path)
    probe: Optional[Probe] = None
    if trace_path:
        probe = NDJSONTraceProbe(trace_path)
    elif report_path:
        probe = CountingProbe()
    try:
        result = run_simulation(
            config, workload, arbiter=arbiter, horizon=horizon, seed=seed,
            probe=probe, kernel=kernel,
        )
    finally:
        if isinstance(probe, NDJSONTraceProbe):
            probe.close()
    if report_path:
        RunReport.from_result(result, probe=probe).save(report_path)
    return result.summary_table()


def main(argv: "list[str] | None" = None) -> int:
    """Parse arguments, run the experiment(s), print the report."""
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description=(
            "Reproduce the evaluation of 'Quality-of-Service for a "
            "High-Radix Switch' (DAC 2014)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "custom"],
        help="which table/figure to regenerate ('custom' runs a JSON "
        "experiment file, see --config)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="shorter horizons / fewer cases (for smoke testing)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep experiments (default: 1 = serial; "
        "results are bit-identical at any value, see docs/PARALLELISM.md)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also append the report(s) to FILE",
    )
    parser.add_argument(
        "--config",
        metavar="FILE",
        help="JSON experiment file for 'custom' (config + workload)",
    )
    parser.add_argument(
        "--arbiter",
        choices=sorted(ARBITER_PRESETS),
        default="three-class",
        metavar="PRESET",
        help="arbiter preset for 'custom' (default: three-class; one of: "
        + ", ".join(sorted(ARBITER_PRESETS)) + ")",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=50_000,
        help="cycles to simulate for 'custom' (default: 50000)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="simulation seed for 'custom' (default: 0)",
    )
    parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="event",
        help="simulation backend for 'custom' (default: event; all three "
        "produce bit-identical results, see docs/KERNELS.md)",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        help="for 'custom': write a RunReport JSON (kernel counters + flow "
        "stats) to FILE after the run",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="for 'custom': stream an NDJSON event trace to FILE during the "
        "run (implies counter collection)",
    )
    resilience_group = parser.add_argument_group(
        "resilience",
        "checkpointing, retries, and salvage for sweep experiments "
        "(see docs/PARALLELISM.md)",
    )
    resilience_group.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-attempts per failed/timed-out sweep point, with "
        "deterministic seeded-jitter backoff (default: 0)",
    )
    resilience_group.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog: kill a sweep point's worker after this many wall "
        "seconds (needs --jobs >= 2; counts as a retryable failure)",
    )
    resilience_group.add_argument(
        "--on-failure",
        choices=[policy.value for policy in FailurePolicy],
        default=FailurePolicy.FAIL_FAST.value,
        help="what an exhausted retry budget means: 'fail-fast' aborts the "
        "sweep (default, historical behavior); 'salvage' records the "
        "failure and returns partial results with explicit holes",
    )
    resilience_group.add_argument(
        "--journal",
        metavar="FILE",
        help="checkpoint every completed sweep point to FILE (atomic "
        "write-temp + fsync + rename); a killed run resumes with --resume",
    )
    resilience_group.add_argument(
        "--resume",
        metavar="FILE",
        help="resume from an existing journal: journaled points are "
        "restored, only missing points are recomputed, and every "
        "re-executed point is asserted bit-identical",
    )
    resilience_group.add_argument(
        "--catalog",
        metavar="FILE",
        help="durable cross-invocation result cache: already-catalogued "
        "sweep points are served as verified cache hits, newly computed "
        "points are catalogued for future runs (see docs/SERVICE.md)",
    )
    resilience_group.add_argument(
        "--serve-url",
        metavar="HOST:PORT",
        help="ship sweep execution to a running repro-serve daemon instead "
        "of executing locally; local --journal/--catalog still record the "
        "verified results (see docs/SERVICE.md)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.journal and args.resume:
        parser.error("--journal starts a fresh journal; use --resume alone "
                     "to continue an existing one")
    resilience_requested = bool(
        args.retries or args.point_timeout is not None or args.journal
        or args.resume or args.on_failure != FailurePolicy.FAIL_FAST.value
        or args.catalog or args.serve_url
    )
    if resilience_requested and args.experiment == "custom":
        parser.error("resilience flags apply to sweep experiments, not "
                     "'custom' single runs")
    if resilience_requested and args.experiment != "all" \
            and args.experiment not in PARALLEL_EXPERIMENTS:
        parser.error(
            f"'{args.experiment}' is not a sweep experiment; resilience "
            f"flags apply to: {', '.join(sorted(PARALLEL_EXPERIMENTS))}"
        )

    if args.kernel != "event" and args.experiment != "custom":
        parser.error("--kernel applies to 'custom' runs; the named "
                     "experiments always use the event kernel")

    if args.experiment == "custom":
        if not args.config:
            parser.error("'custom' requires --config FILE")
        report = _run_custom(
            args.config, args.arbiter, args.horizon, args.seed,
            report_path=args.report, trace_path=args.trace,
            kernel=args.kernel,
        )
        print(report)
        if args.output:
            with open(args.output, "a", encoding="utf-8") as fh:
                fh.write(report + "\n")
        return 0

    resilience: Optional[ResilienceOptions] = None
    if resilience_requested:
        try:
            journal: Optional[RunJournal] = None
            if args.resume:
                journal = RunJournal(args.resume, resume=True)
            elif args.journal:
                journal = RunJournal(args.journal)
            catalog = None
            if args.catalog:
                from ..catalog import RunCatalog

                catalog = RunCatalog(args.catalog)
            resilience = ResilienceOptions(
                retry=RetryPolicy(
                    retries=args.retries, point_timeout=args.point_timeout
                ),
                on_failure=FailurePolicy(args.on_failure),
                journal=journal,
                catalog=catalog,
                serve_url=args.serve_url,
            )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    sections = []
    interrupted = False
    try:
        for name in names:
            if name in PARALLEL_EXPERIMENTS:
                report = EXPERIMENTS[name](
                    args.fast, jobs=args.jobs, resilience=resilience
                )
            else:
                report = EXPERIMENTS[name](args.fast)
            sections.append(f"=== {name} ===\n{report}\n")
            print(sections[-1])
    except SweepInterrupted as exc:
        interrupted = True
        sections.append(f"=== interrupted ===\n{exc}\n")
        print(sections[-1], file=sys.stderr)
    if resilience is not None and resilience.outcomes:
        sections.append(
            "=== resilience ===\n" + "\n".join(resilience.summary_lines()) + "\n"
        )
        print(sections[-1])
    if args.output:
        with open(args.output, "a", encoding="utf-8") as fh:
            fh.write("\n".join(sections) + "\n")
    if interrupted:
        return 130
    if resilience is not None and resilience.failed:
        return 3  # salvage completed, but with explicit holes
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
