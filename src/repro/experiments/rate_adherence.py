"""Section 4.2 — SSVC adheres to reserved rates across random mixes.

"We simulated 20 combinations of reserved rates and a variety of packet
sizes and verified that in each case SSVC is able to give flows their
requested rates." This experiment draws random feasible reservation
vectors (scaled under the L/(L+1) arbitration ceiling so every rate is
physically achievable), saturates all sources, and checks each flow's
accepted rate against its reservation. Section 4.3 adds that all three
counter-management methods deliver rates "on average within 2 % of their
reserved rates" — the tolerance used here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.report import format_table
from ..parallel import SweepExecutor, SweepPoint
from ..resilience import ResilienceOptions
from ..traffic.patterns import single_output_workload
from ..types import CounterMode, FlowId, TrafficClass
from .common import gb_only_config, run_simulation

#: Relative shortfall tolerance from the paper (Section 4.3).
RATE_TOLERANCE = 0.02


@dataclass
class AdherenceCase:
    """One random reservation mix and its outcome.

    Attributes:
        rates: reserved fractions per input.
        packet_flits: packet size used.
        accepted: measured flits/cycle per input.
        worst_shortfall: max over flows of (reserved - accepted)/reserved,
            clamped at 0 (over-delivery is not a shortfall).
    """

    rates: Tuple[float, ...]
    packet_flits: int
    accepted: Tuple[float, ...]

    @property
    def worst_shortfall(self) -> float:
        shortfalls = [
            max(0.0, (r - a) / r) for r, a in zip(self.rates, self.accepted)
        ]
        return max(shortfalls)

    @property
    def ok(self) -> bool:
        """Did every flow get its reservation within tolerance?"""
        return self.worst_shortfall <= RATE_TOLERANCE


@dataclass
class AdherenceResult:
    """All cases for one counter mode."""

    counter_mode: CounterMode
    cases: List[AdherenceCase] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        """True when every case met every reservation within tolerance."""
        return all(case.ok for case in self.cases)

    @property
    def worst_shortfall(self) -> float:
        """Worst relative shortfall across all cases."""
        return max(case.worst_shortfall for case in self.cases)

    def format(self) -> str:
        rows = [
            (
                i,
                case.packet_flits,
                " ".join(f"{r:.2f}" for r in case.rates),
                100.0 * case.worst_shortfall,
                "ok" if case.ok else "FAIL",
            )
            for i, case in enumerate(self.cases)
        ]
        return format_table(
            ["case", "pkt flits", "reserved rates", "worst shortfall %", "status"],
            rows,
            title=(
                f"Section 4.2 rate adherence — SSVC/{self.counter_mode.value}, "
                f"tolerance {100 * RATE_TOLERANCE:.0f}%"
            ),
            float_format=".2f",
        )


def random_feasible_rates(
    num_inputs: int,
    packet_flits: int,
    rng: np.random.Generator,
    min_rate: float = 0.02,
) -> List[float]:
    """Draw a reservation vector achievable under the L/(L+1) ceiling."""
    raw = rng.dirichlet(np.ones(num_inputs) * 0.8)
    ceiling = packet_flits / (packet_flits + 1)
    headroom = 0.97  # leave slack so quantization noise cannot fail a case
    rates = np.maximum(raw * ceiling * headroom, min_rate)
    # Re-normalize in case the min_rate floor pushed the sum over budget.
    total = rates.sum()
    budget = ceiling * headroom
    if total > budget:
        rates = rates * (budget / total)
    return [float(r) for r in rates]


def _adherence_point(point: SweepPoint) -> Tuple[float, ...]:
    """Worker: simulate one pre-drawn reservation mix to saturation."""
    counter_mode = CounterMode(point.param("counter_mode"))
    config = gb_only_config(radix=8, sig_bits=4, counter_mode=counter_mode)
    rates = list(point.param("rates"))
    num_inputs = len(rates)
    workload = single_output_workload(
        num_inputs=num_inputs,
        output=0,
        reserved_rates=rates,
        packet_length=point.param("packet_flits"),
        inject_rate=None,  # saturate
    )
    sim_result = run_simulation(
        config,
        workload,
        arbiter="ssvc",
        horizon=point.param("horizon"),
        seed=point.seed,
    )
    return tuple(
        sim_result.accepted_rate(FlowId(src, 0, TrafficClass.GB))
        for src in range(num_inputs)
    )


def run_rate_adherence(
    num_cases: int = 20,
    num_inputs: int = 8,
    packet_sizes: Sequence[int] = (1, 4, 8, 16),
    counter_mode: CounterMode = CounterMode.SUBTRACT,
    horizon: int = 120_000,
    seed: int = 5,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> AdherenceResult:
    """Run the Section 4.2 sweep: ``num_cases`` random mixes.

    Packet sizes rotate through ``packet_sizes`` ("a variety of packet
    sizes"); all sources saturate so congestion is permanent. All
    reservation vectors are drawn up-front from one seeded stream (the
    simulations never touch it), so the draws — and every simulation,
    which pins ``seed + case_index`` — are identical at any ``jobs``.
    """
    rng = np.random.default_rng(seed)
    result = AdherenceResult(counter_mode=counter_mode)
    points = []
    for case_index in range(num_cases):
        packet_flits = packet_sizes[case_index % len(packet_sizes)]
        rates = random_feasible_rates(num_inputs, packet_flits, rng)
        points.append(
            SweepPoint.make(
                case_index,
                f"adherence:{counter_mode.value}#{case_index}",
                seed=seed + case_index,
                rates=tuple(rates),
                packet_flits=packet_flits,
                counter_mode=counter_mode.value,
                horizon=horizon,
            )
        )
    executor = SweepExecutor(jobs=jobs, resilience=resilience)
    for point_result in executor.map(_adherence_point, points):
        point = point_result.point
        result.cases.append(
            AdherenceCase(
                rates=point.param("rates"),
                packet_flits=point.param("packet_flits"),
                accepted=point_result.value,
            )
        )
    return result


def main(
    fast: bool = False,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> str:
    """CLI entry: all three counter modes."""
    cases = 6 if fast else 20
    horizon = 40_000 if fast else 120_000
    reports = []
    for mode in CounterMode:
        result = run_rate_adherence(
            num_cases=cases,
            counter_mode=mode,
            horizon=horizon,
            jobs=jobs,
            resilience=resilience,
        )
        reports.append(result.format())
    return "\n\n".join(reports)
