"""Fig. 5 — packet latency vs. bandwidth allocation, four schemes.

Setup (paper Section 4.3): flows with a spread of reserved rates share one
output; each injects at (a configurable fraction of) its reserved rate so
the channel is loaded but feasible. The figure plots each flow's average
packet latency against its allocation for:

* **Original Virtual Clock** — exact auxVC comparison: latency is coupled
  to rate, so low-allocation flows (< 10 %) suffer very high latency;
* **SSVC / subtract-real-clock** — the coarse comparison plus LRG
  tie-breaking "greatly reduces the latency for smaller allocations";
* **SSVC / divide-by-2** and **SSVC / reset** — further decoupling,
  especially under bursty injection; reset shows the least variance.

All schemes must still deliver every flow's reserved rate within ~2 %
(Section 4.3's closing claim) — the result records adherence too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..metrics.report import format_table
from ..parallel import SweepExecutor, SweepPoint
from ..resilience import ResilienceOptions
from ..traffic.flows import Workload, gb_flow
from ..traffic.generators import BernoulliInjection, BurstyInjection
from ..types import FlowId, TrafficClass
from .common import gb_only_config, run_simulation

#: The four Fig. 5 curves, as arbiter presets.
FIG5_SCHEMES = ("virtual-clock", "ssvc-subtract", "ssvc-halve", "ssvc-reset")

#: Allocation mix spanning the paper's 1-40 % x-axis (sums to 0.86).
DEFAULT_ALLOCATIONS = (0.40, 0.20, 0.10, 0.05, 0.04, 0.03, 0.02, 0.02)


@dataclass
class Fig5Result:
    """Latency-vs-allocation curves for all schemes.

    Attributes:
        allocations: per-input reserved fractions.
        mean_latency: ``mean_latency[scheme][input]`` in cycles.
        accepted_ratio: ``accepted_ratio[scheme][input]`` — delivered rate
            over offered rate (the rate-adherence check).
        latency_stddev_across_flows: spread of per-flow mean latencies per
            scheme; the paper's "reset has the least variance" claim.
    """

    allocations: Tuple[float, ...]
    bursty: bool
    mean_latency: Dict[str, List[float]] = field(default_factory=dict)
    accepted_ratio: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def latency_stddev_across_flows(self) -> Dict[str, float]:
        """Standard deviation of mean latency across allocations."""
        return {
            scheme: float(np.std(np.asarray(lat)))
            for scheme, lat in self.mean_latency.items()
        }

    def format(self) -> str:
        """Fig. 5 as an ASCII table (rows = allocations)."""
        headers = ["alloc %"] + list(self.mean_latency)
        rows = []
        for i, alloc in enumerate(self.allocations):
            rows.append(
                [100.0 * alloc] + [self.mean_latency[s][i] for s in self.mean_latency]
            )
        spread = self.latency_stddev_across_flows
        rows.append(["stddev"] + [spread[s] for s in self.mean_latency])
        regime = "bursty" if self.bursty else "steady"
        return format_table(
            headers,
            rows,
            title=f"Fig.5 mean packet latency (cycles) vs allocation — {regime} injection",
            float_format=".1f",
        )

    def chart(self) -> str:
        """The figure's latency/allocation curves as an ASCII chart."""
        from ..metrics.ascii_plot import line_chart

        regime = "bursty" if self.bursty else "steady"
        return line_chart(
            dict(self.mean_latency),
            [f"{100 * a:g}%" for a in self.allocations],
            title=(
                f"Fig.5 shape — {regime} (x: allocation, y: mean latency)"
            ),
            y_label="cycles",
        )


def build_fig5_workload(
    allocations: Sequence[float],
    packet_flits: int = 8,
    load_fraction: float = 1.0,
    bursty: bool = False,
) -> Workload:
    """Flows injecting at ``load_fraction`` of their reserved rate."""
    workload = Workload(name="fig5")
    for src, alloc in enumerate(allocations):
        rate = alloc * load_fraction
        process = (
            BurstyInjection(rate, burst_packets=4.0)
            if bursty
            else BernoulliInjection(rate)
        )
        workload.add(gb_flow(src, 0, alloc, packet_length=packet_flits, process=process))
    return workload


def _fig5_point(point: SweepPoint) -> Tuple[List[float], List[float]]:
    """One Fig. 5 scheme run (module-level so worker processes can pickle).

    Returns ``(mean latencies, accepted ratios)`` per allocation.

    Raises:
        SimulationError: if any flow delivered zero packets inside the
            measurement window — its mean latency is undefined, and
            silently plotting 0.0 cycles (the former behavior) reads as a
            perfect result instead of a broken run.
    """
    allocations: Tuple[float, ...] = point.param("allocations")
    config = gb_only_config(
        radix=8, channel_bits=128, sig_bits=point.param("sig_bits")
    )
    workload = build_fig5_workload(
        allocations,
        point.param("packet_flits"),
        point.param("load_fraction"),
        point.param("bursty"),
    )
    sim_result = run_simulation(
        config,
        workload,
        arbiter=point.param("scheme"),
        horizon=point.param("horizon"),
        seed=point.seed,
    )
    latencies, ratios = [], []
    for src in range(len(allocations)):
        flow = FlowId(src, 0, TrafficClass.GB)
        stats = sim_result.stats.flow_stats(flow)
        if stats.delivered_packets == 0:
            raise SimulationError(
                f"fig5 flow {flow} delivered no packets in "
                f"{point.param('horizon')} cycles ({point.label}); "
                f"mean latency undefined — lengthen the horizon"
            )
        latencies.append(stats.latency.mean)
        offered = stats.offered_rate(sim_result.stats.measured_cycles)
        accepted = stats.accepted_rate(sim_result.stats.measured_cycles)
        ratios.append(accepted / offered if offered > 0 else 1.0)
    return latencies, ratios


def run_fig5(
    allocations: Sequence[float] = DEFAULT_ALLOCATIONS,
    schemes: Sequence[str] = FIG5_SCHEMES,
    horizon: int = 300_000,
    packet_flits: int = 8,
    load_fraction: float = 0.95,
    bursty: bool = False,
    sig_bits: int = 4,
    seed: int = 23,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> Fig5Result:
    """Run the Fig. 5 comparison.

    Args:
        allocations: reserved fraction per input (one flow each, one
            output). Must be feasible (sum < 8/9 with the bubble).
        schemes: arbiter presets to compare.
        horizon: cycles per scheme.
        packet_flits: packet size.
        load_fraction: injection rate as a fraction of the reservation.
            The 0.95 default keeps each flow's queue stable (injecting at
            exactly the guaranteed service rate is critically loaded and
            drowns the scheme differences in queueing noise).
        bursty: use on/off bursts (Section 4.3's bursty regime).
        sig_bits: SSVC quantization (4 in the paper's runs).
        seed: RNG seed (same across schemes so offered traffic matches).
        jobs: worker processes for the per-scheme fan-out (results are
            identical at any value; see docs/PARALLELISM.md).
        resilience: journaling/retry/salvage bundle threaded into the
            executor; under salvage a failed scheme is simply absent from
            the result's dicts (the outcome records why).
    """
    result = Fig5Result(allocations=tuple(allocations), bursty=bursty)
    points = [
        SweepPoint.make(
            i,
            f"fig5:{scheme}{':bursty' if bursty else ''}",
            seed=seed,  # shared across schemes so offered traffic matches
            scheme=scheme,
            allocations=tuple(allocations),
            horizon=horizon,
            packet_flits=packet_flits,
            load_fraction=load_fraction,
            bursty=bursty,
            sig_bits=sig_bits,
        )
        for i, scheme in enumerate(schemes)
    ]
    executor = SweepExecutor(jobs=jobs, resilience=resilience)
    for point_result in executor.map(_fig5_point, points):
        latencies, ratios = point_result.value
        scheme = point_result.point.param("scheme")
        result.mean_latency[scheme] = latencies
        result.accepted_ratio[scheme] = ratios
    return result


def main(
    fast: bool = False,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> str:
    """CLI entry: steady and bursty panels."""
    horizon = 60_000 if fast else 300_000
    steady = run_fig5(horizon=horizon, bursty=False, jobs=jobs, resilience=resilience)
    burst = run_fig5(horizon=horizon, bursty=True, jobs=jobs, resilience=resilience)
    return "\n\n".join(
        [steady.format(), steady.chart(), burst.format(), burst.chart()]
    )
