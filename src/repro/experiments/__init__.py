"""Experiment harness: one module per paper table/figure.

| Module | Paper result |
|---|---|
| :mod:`repro.experiments.fig4_bandwidth` | Fig. 4 (a/b): accepted throughput vs. injection rate, LRG vs. SSVC |
| :mod:`repro.experiments.fig5_latency_fairness` | Fig. 5: latency vs. bandwidth allocation for VC / subtract / halve / reset |
| :mod:`repro.experiments.table1_storage` | Table 1: SSVC storage requirements |
| :mod:`repro.experiments.table2_frequency` | Table 2: frequency with/without SSVC |
| :mod:`repro.experiments.rate_adherence` | Section 4.2: random reserved-rate combinations all met |
| :mod:`repro.experiments.gl_latency_bound` | Section 3.4 Eq. 1: GL waiting-time bound |
| :mod:`repro.experiments.gl_burst` | Section 3.4 Eqs. 2-3: burst budgets |
| :mod:`repro.experiments.scalability` | Section 4.4: lanes, and accuracy vs. significant bits |
| :mod:`repro.experiments.circuit_verification` | Section 4.1: wire model equivalence |
| :mod:`repro.experiments.baseline_comparison` | Section 2.2: WRR/TDM underutilization ablation |
| :mod:`repro.experiments.composition` | Section 4.4 extension: multi-switch composition |
| :mod:`repro.experiments.faults_resilience` | Extension: QoS guarantee survival under injected faults |
| :mod:`repro.experiments.tournament` | Extension: classic SSVC vs iterative VOQ schedulers (docs/SCHEDULERS.md) |

Run any of them via ``repro-exp <name>`` (see :mod:`repro.experiments.cli`).
"""

from .common import ARBITER_PRESETS, make_arbiter_factory, run_simulation

__all__ = ["ARBITER_PRESETS", "make_arbiter_factory", "run_simulation"]
