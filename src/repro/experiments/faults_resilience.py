"""QoS resilience under injected faults (`repro-exp faults`).

Every fault kind in :mod:`repro.faults` carries a declared degradation
contract: either the model *raises* (circuit faults that break the
one-charged-wire invariant) or it *degrades*, voiding a declared subset of
the paper's QoS guarantees. This experiment drives the behavioral fault
kinds through a fixed three-class workload and reports, per scenario,
which guarantees actually survived:

``reserved_rate``
    every GB flow's accepted rate stays within tolerance of its
    reservation (Section 4.2's adherence check, with a looser tolerance
    because faults are allowed to shave throughput they did not void);
``gl_bound``
    the compliant GL flow's worst waiting time stays within Eq. 1;
``policer_containment``
    the abusive saturating GL source stays policed near its reservation
    (Section 3.4's safeguard).

The testable contract-honouring property: the set of guarantees a
scenario violates must be a subset of the union of ``voids`` declared by
its fault kinds — and the fault-free baseline must hold all three.

The scenario sweep runs through :class:`~repro.parallel.SweepExecutor`
(fault plans are frozen and picklable, so they ride inside the
:class:`~repro.parallel.SweepPoint` envelope) and is bit-identical at any
``--jobs`` count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import GLPolicerConfig, QoSConfig, SwitchConfig
from ..core.gl_bound import gl_latency_bound
from ..errors import SimulationError
from ..faults import (
    FaultPlan,
    crosspoint_dead,
    counter_bitflip,
    input_stall,
    packet_drop,
    packet_dup,
)
from ..metrics.report import format_table
from ..parallel import SweepExecutor, SweepPoint
from ..resilience import ResilienceOptions
from ..traffic.flows import Workload, gb_flow, gl_flow
from ..traffic.generators import BernoulliInjection
from ..types import FlowId, TrafficClass
from .common import run_simulation

#: Relative GB shortfall a *non-voided* scenario may still show. Looser
#: than Section 4.3's 2 % because the congested two-output workload runs
#: shorter horizons than the adherence sweep.
FAULT_RATE_TOLERANCE = 0.05

#: Flits/cycle the policed abuser may take before containment is "lost"
#: (reservation 0.05 plus burst allowance plus demoted-BE leftovers).
CONTAINMENT_CAP = 0.15

#: Geometry shared by every scenario (radix-8, Fig. 1 parameters).
_RADIX = 8
_GB_PACKET_FLITS = 8
_GL_BUFFER_FLITS = 8
_GL_L_MIN = 1
_GL_L_MAX = 2

#: GB reservations: inputs 0-5 hold 0.1 each at output 0 (the observed
#: output); inputs 1-6 hold 0.13 each at output 1 so the abuser's output
#: is nearly fully reserved and leftovers cannot mask a broken policer.
_OUT0_GB_INPUTS = tuple(range(6))
_OUT0_GB_SHARE = 0.1
_OUT1_GB_INPUTS = tuple(range(1, 7))
_OUT1_GB_SHARE = 0.13
_GL_COMPLIANT_INPUT = 6  # infrequent GL packets to output 0
_GL_COMPLIANT_RATE = 0.01
_GL_ABUSER_INPUT = 7  # saturating GL source to output 1


def _resilience_config() -> SwitchConfig:
    return SwitchConfig(
        radix=_RADIX,
        channel_bits=128,
        gb_buffer_flits=16,
        gl_buffer_flits=_GL_BUFFER_FLITS,
        qos=QoSConfig(sig_bits=4, frac_bits=8),
        gl_policer=GLPolicerConfig(reserved_rate=0.05, burst_window=2048),
    )


def _resilience_workload() -> Workload:
    workload = Workload(name="faults-resilience")
    for src in _OUT0_GB_INPUTS:
        workload.add(
            gb_flow(
                src, 0, _OUT0_GB_SHARE,
                packet_length=_GB_PACKET_FLITS, inject_rate=None,
            )
        )
    for src in _OUT1_GB_INPUTS:
        workload.add(
            gb_flow(
                src, 1, _OUT1_GB_SHARE,
                packet_length=_GB_PACKET_FLITS, inject_rate=None,
            )
        )
    workload.add(
        gl_flow(
            _GL_COMPLIANT_INPUT,
            0,
            packet_length=(_GL_L_MIN, _GL_L_MAX),
            process=BernoulliInjection(_GL_COMPLIANT_RATE),
        )
    )
    workload.add(
        gl_flow(_GL_ABUSER_INPUT, 1, packet_length=4, inject_rate=None)
    )
    return workload


def scenario_plans(horizon: int, seed: int) -> "Dict[str, FaultPlan]":
    """The named fault scenarios, one plan each (``none`` is empty).

    Each degrade-mode fault kind appears exactly once, aimed at the
    observed output 0 so its declared ``voids`` are actually exercised.
    """
    return {
        "none": FaultPlan(seed=seed),
        "input-stall": FaultPlan(
            seed=seed,
            faults=(
                input_stall(0, start=horizon // 4, duration=horizon // 4),
            ),
        ),
        "dead-crosspoint": FaultPlan(
            seed=seed, faults=(crosspoint_dead(1, 0),)
        ),
        "counter-bitflip": FaultPlan(
            seed=seed,
            faults=(counter_bitflip(2, 0, bit=11, at_cycle=horizon // 2),),
        ),
        "packet-drop": FaultPlan(
            seed=seed, faults=(packet_drop(0.1, output=0),)
        ),
        "packet-dup": FaultPlan(
            seed=seed, faults=(packet_dup(0.1, output=0),)
        ),
    }


def _resilience_point(point: SweepPoint) -> Tuple[float, int, int, float]:
    """Worker: run one scenario, return its raw measurements.

    Returns ``(worst_gb_shortfall, gl_max_waiting, gl_packets,
    abuser_rate)``; the parent folds these against the bound and the
    tolerances so every threshold lives in exactly one place.
    """
    plan: FaultPlan = point.param("plan")
    horizon: int = point.param("horizon")
    result = run_simulation(
        _resilience_config(),
        _resilience_workload(),
        arbiter="three-class",
        horizon=horizon,
        seed=point.seed,
        fault_plan=plan,
    )
    stats = result.stats
    shortfalls = [0.0]
    for src in _OUT0_GB_INPUTS:
        rate = stats.accepted_rate(FlowId(src, 0, TrafficClass.GB))
        shortfalls.append((_OUT0_GB_SHARE - rate) / _OUT0_GB_SHARE)
    for src in _OUT1_GB_INPUTS:
        rate = stats.accepted_rate(FlowId(src, 1, TrafficClass.GB))
        shortfalls.append((_OUT1_GB_SHARE - rate) / _OUT1_GB_SHARE)
    gl_stats = stats.flow_stats(
        FlowId(_GL_COMPLIANT_INPUT, 0, TrafficClass.GL)
    )
    abuser_rate = stats.accepted_rate(
        FlowId(_GL_ABUSER_INPUT, 1, TrafficClass.GL)
    )
    return (
        max(shortfalls),
        int(gl_stats.waiting.maximum) if gl_stats.waiting.count else 0,
        int(gl_stats.waiting.count),
        abuser_rate,
    )


@dataclass
class ScenarioOutcome:
    """One fault scenario's measurements and guarantee verdicts.

    Attributes:
        name: scenario name (``none`` is the fault-free baseline).
        plan: the injected fault plan.
        worst_gb_shortfall: max over GB flows of
            ``(reserved - accepted) / reserved``.
        gl_max_waiting: worst measured wait of the compliant GL flow.
        gl_packets: compliant GL packets measured.
        abuser_rate: the policed abuser's accepted flits/cycle.
        gl_bound_value: the Eq. 1 bound the waiting is judged against.
    """

    name: str
    plan: FaultPlan
    worst_gb_shortfall: float
    gl_max_waiting: int
    gl_packets: int
    abuser_rate: float
    gl_bound_value: float

    @property
    def reserved_rate_ok(self) -> bool:
        return self.worst_gb_shortfall <= FAULT_RATE_TOLERANCE

    @property
    def gl_bound_ok(self) -> bool:
        if self.gl_packets == 0:
            return False  # the guarantee is vacuous only if packets flow
        return self.gl_max_waiting <= self.gl_bound_value

    @property
    def policer_containment_ok(self) -> bool:
        return self.abuser_rate <= CONTAINMENT_CAP

    @property
    def violated(self) -> Tuple[str, ...]:
        """Guarantees this scenario failed, in canonical order."""
        out = []
        if not self.reserved_rate_ok:
            out.append("reserved_rate")
        if not self.gl_bound_ok:
            out.append("gl_bound")
        if not self.policer_containment_ok:
            out.append("policer_containment")
        return tuple(out)

    @property
    def declared_voids(self) -> Tuple[str, ...]:
        """Union of the plan's declared voidable guarantees."""
        voids: List[str] = []
        for spec in self.plan.faults:
            for name in spec.contract.voids:
                if name not in voids:
                    voids.append(name)
        return tuple(voids)

    @property
    def honors_contract(self) -> bool:
        """Did the model only lose guarantees its faults declared?"""
        return set(self.violated) <= set(self.declared_voids)


@dataclass
class ResilienceResult:
    """The full scenario sweep."""

    horizon: int
    seed: int
    outcomes: List[ScenarioOutcome]

    @property
    def baseline(self) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.name == "none":
                return outcome
        raise SimulationError("resilience sweep lost its baseline scenario")

    @property
    def all_contracts_honored(self) -> bool:
        """Every scenario violated only what its faults declared."""
        return all(o.honors_contract for o in self.outcomes)

    def format(self) -> str:
        def mark(ok: bool) -> str:
            return "ok" if ok else "LOST"

        rows = []
        for o in self.outcomes:
            rows.append(
                (
                    o.name,
                    mark(o.reserved_rate_ok),
                    mark(o.gl_bound_ok),
                    mark(o.policer_containment_ok),
                    ",".join(o.declared_voids) or "-",
                    "yes" if o.honors_contract else "NO",
                )
            )
        return format_table(
            [
                "scenario",
                "reserved_rate",
                "gl_bound",
                "policer_containment",
                "declared voids",
                "honored",
            ],
            rows,
            title=(
                f"QoS guarantee survival under injected faults "
                f"(horizon={self.horizon}, seed={self.seed})"
            ),
        )


def run_faults_resilience(
    horizon: int = 60_000,
    seed: int = 23,
    jobs: int = 1,
    scenarios: Optional[Sequence[str]] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> ResilienceResult:
    """Sweep the behavioral fault scenarios and judge each guarantee.

    Args:
        horizon: cycles per scenario.
        seed: shared simulation seed (also each plan's draw seed), so the
            only difference between scenarios is the injected fault.
        jobs: worker processes for the sweep (bit-identical at any count).
        scenarios: optional subset of scenario names to run.
    """
    plans = scenario_plans(horizon, seed)
    if scenarios is not None:
        unknown = sorted(set(scenarios) - set(plans))
        if unknown:
            raise SimulationError(
                f"unknown fault scenarios {unknown}; know {sorted(plans)}"
            )
        plans = {name: plans[name] for name in plans if name in scenarios}
    points = [
        SweepPoint.make(
            i, f"faults:{name}", seed=seed, name=name, plan=plan, horizon=horizon
        )
        for i, (name, plan) in enumerate(plans.items())
    ]
    executor = SweepExecutor(jobs=jobs, resilience=resilience)
    results = executor.map(_resilience_point, points)
    bound = gl_latency_bound(
        l_max=_GB_PACKET_FLITS,
        l_min=_GL_L_MIN,
        n_gl=1,
        buffer_flits=_GL_BUFFER_FLITS,
    )
    outcomes = []
    for point_result in results:
        shortfall, max_wait, gl_packets, abuser = point_result.value
        outcomes.append(
            ScenarioOutcome(
                name=point_result.point.param("name"),
                plan=point_result.point.param("plan"),
                worst_gb_shortfall=shortfall,
                gl_max_waiting=max_wait,
                gl_packets=gl_packets,
                abuser_rate=abuser,
                gl_bound_value=bound,
            )
        )
    return ResilienceResult(horizon=horizon, seed=seed, outcomes=outcomes)


def main(
    fast: bool = False,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> str:
    """CLI entry: the guarantee-survival matrix."""
    horizon = 20_000 if fast else 60_000
    result = run_faults_resilience(horizon=horizon, jobs=jobs, resilience=resilience)
    lines = [result.format(), ""]
    baseline = result.baseline
    lines.append(
        f"baseline holds all guarantees: "
        f"{'yes' if not baseline.violated else 'NO ' + str(baseline.violated)}"
    )
    lines.append(
        "all scenarios honor their declared contracts: "
        f"{'yes' if result.all_contracts_honored else 'NO'}"
    )
    return "\n".join(lines)
