"""Section 4.4 extension — measuring why one switch beats a composition.

The paper stops at radix 64 because "composing multiple switches ...
makes the QoS technique more complex": crosspoints get shared by several
flows (aggregate, not per-flow, reservations) and input buffers lose flow
separation. This experiment quantifies both effects by running the *same*
set of end-to-end GB flows through

1. a single Swizzle Switch of radix = host count (per-flow crosspoints,
   per-output VOQs), and
2. the two-stage Clos composition of small switches
   (:mod:`repro.multiswitch`),

with one **victim** flow holding a reservation and one **aggressor** flow
that shares the victim's ingress aggregate (same source host, different
destination host in the same destination group) bursting as hard as it can.
In the single switch the two are distinct crosspoints, so the victim is
untouched; in the composition they share one auxVC counter and one egress
FIFO, so the aggressor eats into the victim's service and inflates its
latency — plus the shared downlink FIFO adds head-of-line blocking across
*unrelated* outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import GLPolicerConfig, QoSConfig, SwitchConfig
from ..errors import SimulationError
from ..metrics.report import format_table
from ..multiswitch.simulator import ComposedFlow, MultiStageSimulation
from ..multiswitch.storage import composed_storage_overhead
from ..multiswitch.topology import ClosTopology
from ..parallel import SweepExecutor, SweepPoint
from ..resilience import ResilienceOptions
from ..traffic.flows import Workload, gb_flow
from ..types import FlowId, TrafficClass
from .common import run_simulation

#: Default shape: 4 groups x 4 hosts = 16 nodes either way.
DEFAULT_TOPOLOGY = ClosTopology(groups=4, hosts_per_group=4, link_latency=2)

VICTIM = (0, 4)  # host 0 (group 0) -> host 4 (group 1)
AGGRESSOR = (0, 5)  # same source host, same destination group: shares the
#                     ingress crosspoint aggregate with the victim
VICTIM_RATE = 0.30
AGGRESSOR_RATE = 0.30


@dataclass
class CompositionResult:
    """Victim-flow outcomes in both networks.

    Attributes:
        single_rate / composed_rate: victim accepted flits/cycle.
        single_latency / composed_latency: victim mean latency (cycles).
        hol_blocked_cycles: egress HoL-blocking events in the composition.
        isolation_premium: state multiplier to restore per-flow
            isolation within the composition (storage model).
    """

    single_rate: float
    composed_rate: float
    single_latency: float
    composed_latency: float
    hol_blocked_cycles: int
    isolation_premium: float

    @property
    def rate_degradation(self) -> float:
        """Fraction of the victim's single-switch rate lost in composition."""
        return max(0.0, 1.0 - self.composed_rate / self.single_rate)

    def format(self) -> str:
        rows = [
            ("victim accepted rate", self.single_rate, self.composed_rate),
            ("victim mean latency", self.single_latency, self.composed_latency),
        ]
        table = format_table(
            ["quantity", "single switch", "2-stage composition"],
            rows,
            title=(
                "Section 4.4 composition study: victim reserves "
                f"{VICTIM_RATE:.0%}, aggressor shares its aggregate"
            ),
        )
        extras = (
            f"victim rate degradation in composition: {100 * self.rate_degradation:.1f}%\n"
            f"egress HoL-blocking events: {self.hol_blocked_cycles}\n"
            f"state overhead to restore per-flow isolation: "
            f"{self.isolation_premium:.2f}x the aggregate design"
        )
        return table + "\n" + extras


#: A third party from group 2 contending the aggressor's destination, so
#: the aggressor's head packets stall in the shared downlink FIFO directly
#: in front of the victim's (head-of-line conflict).
CONTENDER = (8, 5)
CONTENDER_RATE = 0.50


def _composed_flows(
    topology: ClosTopology, background_rate: float
) -> List[ComposedFlow]:
    flows = [
        ComposedFlow(*VICTIM, rate=VICTIM_RATE, inject_rate=VICTIM_RATE * 0.95),
        ComposedFlow(*AGGRESSOR, rate=AGGRESSOR_RATE, inject_rate=None),  # bursts
        ComposedFlow(*CONTENDER, rate=CONTENDER_RATE, inject_rate=None),
    ]
    # Background: each remaining host in group 0 sends to its counterpart
    # in group 1, keeping the shared uplink busy.
    for local in range(1, topology.hosts_per_group):
        src = local
        dst = topology.hosts_per_group + local
        flows.append(
            ComposedFlow(src, dst, rate=background_rate, inject_rate=background_rate)
        )
    return flows


def _single_switch_workload(
    topology: ClosTopology, background_rate: float
) -> Workload:
    workload = Workload(name="composition-reference")
    workload.add(
        gb_flow(*VICTIM, reserved_rate=VICTIM_RATE, packet_length=8,
                inject_rate=VICTIM_RATE * 0.95)
    )
    workload.add(
        gb_flow(*AGGRESSOR, reserved_rate=AGGRESSOR_RATE, packet_length=8,
                inject_rate=None)
    )
    workload.add(
        gb_flow(*CONTENDER, reserved_rate=CONTENDER_RATE, packet_length=8,
                inject_rate=None)
    )
    for local in range(1, topology.hosts_per_group):
        src = local
        dst = topology.hosts_per_group + local
        workload.add(
            gb_flow(src, dst, reserved_rate=background_rate, packet_length=8,
                    inject_rate=background_rate)
        )
    return workload


def _composition_point(point: SweepPoint) -> Tuple[float, float, int]:
    """Worker: one leg of the study (``single`` or ``composed``).

    Returns ``(victim_rate, victim_mean_latency, hol_blocked_cycles)``;
    the single-switch reference has no shared downlink FIFO, so its HoL
    count is always zero.
    """
    topology = ClosTopology(
        groups=point.param("groups"),
        hosts_per_group=point.param("hosts_per_group"),
        link_latency=point.param("link_latency"),
    )
    horizon: int = point.param("horizon")
    background_rate: float = point.param("background_rate")
    if point.param("leg") == "single":
        config = SwitchConfig(
            radix=topology.num_hosts,
            channel_bits=16 * topology.num_hosts,
            gb_buffer_flits=32,
            qos=QoSConfig(sig_bits=4, frac_bits=8),
            gl_policer=GLPolicerConfig(reserved_rate=0.0),
        )
        single = run_simulation(
            config,
            _single_switch_workload(topology, background_rate),
            arbiter="ssvc",
            horizon=horizon,
            seed=point.seed,
        )
        victim_flow = FlowId(*VICTIM, TrafficClass.GB)
        return (
            single.accepted_rate(victim_flow),
            single.stats.flow_stats(victim_flow).latency.mean,
            0,
        )
    composed = MultiStageSimulation(
        topology,
        _composed_flows(topology, background_rate),
        qos=QoSConfig(sig_bits=4, frac_bits=8),
        seed=point.seed,
    ).run(horizon)
    return (
        composed.accepted_rate(*VICTIM),
        composed.mean_latency(*VICTIM),
        composed.hol_blocked_cycles,
    )


def run_composition(
    topology: ClosTopology = DEFAULT_TOPOLOGY,
    horizon: int = 80_000,
    background_rate: float = 0.10,
    seed: int = 3,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CompositionResult:
    """Run the victim/aggressor study on both networks.

    The two legs are independent simulations, so they dispatch through
    :class:`~repro.parallel.SweepExecutor` (``jobs=2`` overlaps them;
    results are bit-identical at any job count).
    """
    shared = dict(
        groups=topology.groups,
        hosts_per_group=topology.hosts_per_group,
        link_latency=topology.link_latency,
        horizon=horizon,
        background_rate=background_rate,
    )
    points = [
        SweepPoint.make(0, "composition:single", seed=seed, leg="single", **shared),
        SweepPoint.make(1, "composition:composed", seed=seed, leg="composed", **shared),
    ]
    executor = SweepExecutor(jobs=jobs, resilience=resilience)
    results = executor.map(_composition_point, points)
    # Look legs up by point index — under salvage a leg can be missing, and
    # this study is meaningless with only one of its two legs.
    by_index = {r.point.index: r for r in results}
    missing = [p.label for p in points if p.index not in by_index]
    if missing:
        raise SimulationError(
            "composition study needs both legs; missing after salvage: "
            + ", ".join(missing)
        )
    single_rate, single_latency, _ = by_index[0].value
    composed_rate, composed_latency, hol_blocked = by_index[1].value

    storage = composed_storage_overhead(topology)
    return CompositionResult(
        single_rate=single_rate,
        composed_rate=composed_rate,
        single_latency=single_latency,
        composed_latency=composed_latency,
        hol_blocked_cycles=hol_blocked,
        isolation_premium=storage.isolation_premium,
    )


def main(
    fast: bool = False,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> str:
    """CLI entry."""
    horizon = 25_000 if fast else 80_000
    return run_composition(horizon=horizon, jobs=jobs, resilience=resilience).format()
