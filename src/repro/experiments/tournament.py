"""Scheduler tournament — classic SSVC vs iterative VOQ matching.

The paper's Swizzle Switch arbitrates each output independently (SSVC,
Section 3); the input-queued switching literature instead computes one
switch-wide matching per cycle over per-input per-output VOQs (iSLIP,
QPS-r, SW-QPS — see docs/SCHEDULERS.md). This experiment races the two
families on the same traffic:

* **uniform** — uniform random best-effort traffic, the canonical VOQ
  benchmark: classic mode funnels each input's BE packets through one
  FIFO, so head-of-line blocking caps it near 58.6 % while the iterative
  schedulers approach 100 % of the channel;
* **hotspot** — half of every input's load targets one output (the
  memory-controller scenario from the paper's introduction);
* **bursty** — the uniform pattern injected through the Section 4.3
  two-state on/off process;
* **faulted** — uniform traffic with an input stall, a dead crosspoint,
  and lossy delivery injected (:mod:`repro.faults`); VOQ isolates the
  dead crosspoint to one queue where classic mode blocks the whole input.

Every (policy, scenario, rate) cell runs through the resilient
:class:`~repro.parallel.SweepExecutor`, so `--jobs N` fans the tournament
out bit-identically and `--retries/--journal/--resume` apply. The report
ends with a throughput/delay frontier at saturation plus the qualitative
claims gate: iSLIP delivers ~100 % uniform throughput, SW-QPS >= QPS-r,
and every VOQ scheduler beats the HOL-limited classic baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..faults import FaultPlan, crosspoint_dead, input_stall, packet_drop
from ..metrics.report import format_table
from ..parallel import SweepExecutor, SweepPoint, result_hash
from ..resilience import ResilienceOptions
from .common import run_simulation, voq_config

#: Arbitration policies raced against each other. ``ssvc`` runs the
#: paper's per-output scheme on a classic partially-queued port; the
#: other three are switch-wide iterative matchers on full VOQs.
POLICIES: Tuple[str, ...] = ("ssvc", "islip", "qps-r", "sw-qps")

#: Policy -> arbiter preset. The ``ssvc`` column uses the paper's full
#: three-class arbiter (the SSVC GB plane plus the LRG BE plane), because
#: the bare ``ssvc`` preset arbitrates reservations only and the
#: tournament's BE scenarios would have nothing to schedule.
POLICY_ARBITERS: Dict[str, str] = {
    "ssvc": "three-class",
    "islip": "islip",
    "qps-r": "qps-r",
    "sw-qps": "sw-qps",
}

#: Policies that need ``SwitchConfig.voq`` (the rest run classic mode).
VOQ_POLICIES = frozenset({"islip", "qps-r", "sw-qps"})

#: Traffic scenarios (see the module docstring).
SCENARIOS: Tuple[str, ...] = ("uniform", "hotspot", "bursty", "faulted")

#: Offered flits/input/cycle swept along the x-axis.
DEFAULT_RATES: Tuple[float, ...] = (0.6, 0.8, 0.9, 0.95, 0.99)

_RADIX = 8
_PACKET_FLITS = 8
_BUFFER_FLITS = 32


def tournament_config(policy: str) -> "object":
    """The switch for one policy: full-VOQ for the iterative matchers,
    the same geometry with classic partially-queued ports for SSVC.

    Both share zero arbitration bubble and 32-flit buffers so the only
    variable is the queueing discipline plus the scheduler itself.
    """
    config = voq_config(
        radix=_RADIX, buffer_flits=_BUFFER_FLITS, arbitration_cycles=0
    )
    if policy not in VOQ_POLICIES:
        config = replace(config, voq=False)
    return config


def _fault_plan(seed: int, horizon: int) -> FaultPlan:
    """The ``faulted`` scenario's injections (no counter faults: the
    iterative schedulers carry no auxVC counters to flip)."""
    return FaultPlan(
        seed=seed,
        faults=(
            input_stall(0, start=horizon // 4, duration=horizon // 8),
            crosspoint_dead(1, 0),
            packet_drop(0.05, output=_RADIX - 1),
        ),
    )


def _tournament_workload(scenario: str, rate: float) -> "object":
    from ..traffic.patterns import (
        bursty_uniform_workload,
        hotspot_workload,
        uniform_be_workload,
    )

    if scenario in ("uniform", "faulted"):
        return uniform_be_workload(_RADIX, rate, packet_length=_PACKET_FLITS)
    if scenario == "bursty":
        return bursty_uniform_workload(_RADIX, rate, packet_length=_PACKET_FLITS)
    if scenario == "hotspot":
        return hotspot_workload(
            _RADIX, hotspot=0, inject_rate=rate, packet_length=_PACKET_FLITS
        )
    raise ConfigError(f"unknown tournament scenario {scenario!r}; valid: {list(SCENARIOS)}")


def _tournament_point(point: SweepPoint) -> Tuple[float, float, int]:
    """Worker: one (policy, scenario, rate) cell.

    Module-level and rebuilt entirely from the envelope so the executor
    can pickle it into worker processes. Returns
    ``(throughput, mean_delay, grants)`` where throughput is delivered
    flits/cycle averaged over the ports and mean_delay is the
    delivered-packet-weighted mean creation-to-delivery latency.
    """
    policy: str = point.param("policy")
    scenario: str = point.param("scenario")
    rate: float = point.param("rate")
    horizon: int = point.param("horizon")
    plan = _fault_plan(point.seed, horizon) if scenario == "faulted" else None
    result = run_simulation(
        tournament_config(policy),
        _tournament_workload(scenario, rate),
        arbiter=POLICY_ARBITERS.get(policy, policy),
        horizon=horizon,
        seed=point.seed,
        fault_plan=plan,
    )
    stats = result.stats
    throughput = (
        sum(stats.output_throughput(o) for o in range(_RADIX)) / _RADIX
    )
    delivered = 0
    delay_sum = 0.0
    for flow in stats.flows:
        latency = stats.flow_stats(flow).latency
        if latency.count:
            delivered += latency.count
            delay_sum += latency.mean * latency.count
    mean_delay = delay_sum / delivered if delivered else 0.0
    return throughput, mean_delay, result.grants


@dataclass
class TournamentResult:
    """The full policy x scenario x rate grid.

    Attributes:
        rates: swept offered loads (flits/input/cycle).
        policies: raced policy presets, in tournament order.
        scenarios: traffic scenarios run.
        throughput: ``(scenario, policy, rate) ->`` flits/cycle/port.
        delay: ``(scenario, policy, rate) ->`` mean packet latency.
        point_values: raw worker payloads in sweep-index order, kept so
            :meth:`hash` digests exactly what the executor merged (the
            serial-vs-parallel determinism checks compare these digests).
    """

    rates: Tuple[float, ...]
    policies: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    throughput: Dict[Tuple[str, str, float], float] = field(default_factory=dict)
    delay: Dict[Tuple[str, str, float], float] = field(default_factory=dict)
    point_values: List[Tuple[float, float, int]] = field(default_factory=list)

    def hash(self) -> str:
        """Digest of the merged sweep payloads (jobs-independent)."""
        return result_hash(self.point_values)

    @property
    def saturation_rate(self) -> float:
        return self.rates[-1]

    def _cell(self, table: Dict[Tuple[str, str, float], float],
              scenario: str, policy: str, rate: float) -> Optional[float]:
        return table.get((scenario, policy, rate))

    def scenario_table(self, scenario: str) -> str:
        """Throughput (and delay) per rate, one column pair per policy."""
        headers = ["offered"] + [
            f"{p} thr" for p in self.policies
        ] + [f"{p} delay" for p in self.policies]
        rows = []
        for rate in self.rates:
            row: List[object] = [rate]
            row += [self._cell(self.throughput, scenario, p, rate)
                    for p in self.policies]
            row += [self._cell(self.delay, scenario, p, rate)
                    for p in self.policies]
            if any(v is not None for v in row[1:]):
                rows.append(row)
        return format_table(
            headers, rows,
            title=f"tournament — {scenario} (flits/cycle/port, cycles)",
        )

    def frontier(self, scenario: Optional[str] = None) -> str:
        """The throughput/delay frontier at the saturation rate point."""
        if scenario is None:
            scenario = (
                "uniform" if "uniform" in self.scenarios else self.scenarios[0]
            )
        top = self.saturation_rate
        rows = []
        for policy in self.policies:
            thr = self._cell(self.throughput, scenario, policy, top)
            dly = self._cell(self.delay, scenario, policy, top)
            if thr is None:
                continue
            mode = "voq" if policy in VOQ_POLICIES else "classic"
            rows.append((policy, mode, thr, dly))
        return format_table(
            ["policy", "queueing", "throughput", "mean delay"],
            rows,
            title=(
                f"throughput/delay frontier — {scenario} @ offered {top:g}"
            ),
        )

    def claims(self) -> "List[Tuple[str, bool, str]]":
        """The qualitative claims gate: ``(claim, holds, evidence)``.

        Judged on the uniform scenario at the saturation rate, where each
        source algorithm states its headline property:

        * iSLIP achieves ~100 % throughput under uniform traffic
          (McKeown 1999) — accepted >= 95 % of offered;
        * SW-QPS matches or beats QPS-r from the same per-cycle proposal
          budget (arXiv:2010.08620);
        * every VOQ matcher clears the classic port's head-of-line
          ceiling (Karol's 58.6 % limit applies as offered -> 1).
        """
        top = self.saturation_rate
        scenario = "uniform"
        out: List[Tuple[str, bool, str]] = []

        def thr(policy: str) -> Optional[float]:
            return self._cell(self.throughput, scenario, policy, top)

        islip = thr("islip")
        if islip is not None:
            target = 0.95 * min(top, 1.0)
            out.append((
                "islip ~100% uniform throughput",
                islip >= target,
                f"accepted {islip:.4f} vs floor {target:.4f} "
                f"(offered {top:g})",
            ))
        sw_qps, qps_r = thr("sw-qps"), thr("qps-r")
        if sw_qps is not None and qps_r is not None:
            out.append((
                "sw-qps >= qps-r at saturation",
                sw_qps >= qps_r - 1e-12,
                f"sw-qps {sw_qps:.4f} vs qps-r {qps_r:.4f}",
            ))
        ssvc = thr("ssvc")
        voq_thrs = [t for t in (thr(p) for p in self.policies
                                if p in VOQ_POLICIES) if t is not None]
        if ssvc is not None and voq_thrs:
            out.append((
                "every VOQ matcher beats the classic HOL baseline",
                min(voq_thrs) > ssvc,
                f"worst voq {min(voq_thrs):.4f} vs classic {ssvc:.4f}",
            ))
        return out

    def format(self) -> str:
        sections = [self.scenario_table(s) for s in self.scenarios]
        sections.append(self.frontier())
        claim_rows = [
            (claim, "yes" if holds else "NO", evidence)
            for claim, holds, evidence in self.claims()
        ]
        if claim_rows:
            sections.append(format_table(
                ["claim", "holds", "evidence"], claim_rows,
                title="qualitative claims (uniform @ saturation)",
            ))
        return "\n\n".join(sections)


def run_tournament(
    rates: Sequence[float] = DEFAULT_RATES,
    scenarios: Sequence[str] = SCENARIOS,
    policies: Sequence[str] = POLICIES,
    horizon: int = 20_000,
    seed: int = 42,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> TournamentResult:
    """Run the tournament grid through the resilient sweep executor.

    Args:
        rates: offered flits/input/cycle per point.
        scenarios: subset of :data:`SCENARIOS` to run.
        policies: subset of :data:`POLICIES` to race.
        horizon: cycles per point.
        seed: simulation seed, pinned per point so the grid's results are
            independent of its composition and of ``jobs``.
        jobs: sweep worker processes (bit-identical at any count).
        resilience: retry/journal/salvage options; under salvage the grid
            may have holes, which the tables and claims simply skip.
    """
    unknown = sorted(set(scenarios) - set(SCENARIOS))
    if unknown:
        raise ConfigError(
            f"unknown tournament scenarios {unknown}; valid: {list(SCENARIOS)}"
        )
    result = TournamentResult(
        rates=tuple(rates),
        policies=tuple(policies),
        scenarios=tuple(scenarios),
    )
    points = []
    for scenario in scenarios:
        for policy in policies:
            for rate in rates:
                points.append(SweepPoint.make(
                    len(points),
                    f"tournament:{scenario}:{policy}@{rate:g}",
                    seed=seed,
                    policy=policy,
                    scenario=scenario,
                    rate=rate,
                    horizon=horizon,
                ))
    executor = SweepExecutor(jobs=jobs, resilience=resilience)
    for point_result in executor.map(_tournament_point, points):
        scenario = point_result.point.param("scenario")
        policy = point_result.point.param("policy")
        rate = point_result.point.param("rate")
        throughput, delay, _grants = point_result.value
        result.throughput[(scenario, policy, rate)] = throughput
        result.delay[(scenario, policy, rate)] = delay
        result.point_values.append(point_result.value)
    return result


def main(
    fast: bool = False,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> str:
    """CLI entry: the scenario tables, the frontier, and the claims gate."""
    if fast:
        result = run_tournament(
            rates=(0.99,), scenarios=("uniform",), horizon=10_000,
            jobs=jobs, resilience=resilience,
        )
    else:
        result = run_tournament(jobs=jobs, resilience=resilience)
    lines = [result.format(), ""]
    verdicts = result.claims()
    holds = all(ok for _, ok, _ in verdicts)
    lines.append(
        f"all qualitative claims hold: {'yes' if holds else 'NO'}"
    )
    lines.append(f"sweep hash: {result.hash()}")
    return "\n".join(lines)
