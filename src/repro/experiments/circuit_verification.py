"""Section 4.1 — wire-level model verification.

"To verify the correctness of SSVC, we further modeled the behavior of each
wire, multiplexer, and sense amp ... We tested this program with all input
combinations of thermometer code vectors and valid LRG states" and compared
against a true comparison of the values the coarse hardware is specified to
compute. This harness runs the exhaustive sweep at radix 4 (every level
assignment x every LRG order x every request subset x single-GL cases) and
a large randomized sweep at radix 8 and 16 (including multi-GL requests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..circuit.verification import VerificationReport, verify_exhaustive, verify_random
from ..metrics.report import format_table


@dataclass
class CircuitVerificationResult:
    """All sweep reports (any mismatch raises before this is built)."""

    reports: List[VerificationReport]

    @property
    def total_trials(self) -> int:
        """Total arbitration decisions checked."""
        return sum(r.trials for r in self.reports)

    def format(self) -> str:
        rows = [(r.radix, r.levels, r.trials) for r in self.reports]
        table = format_table(
            ["radix", "levels", "decisions verified"],
            rows,
            title="Section 4.1 wire-model verification (0 mismatches)",
        )
        return table + f"\ntotal: {self.total_trials} decisions"


def run_circuit_verification(fast: bool = False) -> CircuitVerificationResult:
    """Exhaustive small-radix sweep plus randomized larger-radix sweeps.

    Raises:
        VerificationError: on the first disagreement between the wire
            model and the reference decision (none are expected).
    """
    reports = [verify_exhaustive(radix=3, num_levels=3)]
    if not fast:
        reports.append(verify_exhaustive(radix=4, num_levels=4))
    reports.append(verify_random(radix=8, num_levels=8, trials=300 if fast else 3000, seed=8))
    reports.append(verify_random(radix=16, num_levels=16, trials=100 if fast else 1000, seed=16))
    return CircuitVerificationResult(reports=reports)


def main(fast: bool = False) -> str:
    """CLI entry."""
    return run_circuit_verification(fast=fast).format()
