"""Section 4.1 — wire-level model verification.

"To verify the correctness of SSVC, we further modeled the behavior of each
wire, multiplexer, and sense amp ... We tested this program with all input
combinations of thermometer code vectors and valid LRG states" and compared
against a true comparison of the values the coarse hardware is specified to
compute. This harness runs the exhaustive sweep at radix 4 (every level
assignment x every LRG order x every request subset x single-GL cases) and
a large randomized sweep at radix 8 and 16 (including multi-GL requests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..circuit.verification import VerificationReport, verify_exhaustive, verify_random
from ..metrics.report import format_table
from ..parallel import SweepExecutor, SweepPoint
from ..resilience import ResilienceOptions


@dataclass
class CircuitVerificationResult:
    """All sweep reports (any mismatch raises before this is built)."""

    reports: List[VerificationReport]

    @property
    def total_trials(self) -> int:
        """Total arbitration decisions checked."""
        return sum(r.trials for r in self.reports)

    def format(self) -> str:
        rows = [(r.radix, r.levels, r.trials) for r in self.reports]
        table = format_table(
            ["radix", "levels", "decisions verified"],
            rows,
            title="Section 4.1 wire-model verification (0 mismatches)",
        )
        return table + f"\ntotal: {self.total_trials} decisions"


def _verification_point(point: SweepPoint) -> VerificationReport:
    """Worker: one sweep (exhaustive or randomized), fully point-driven."""
    if point.param("kind") == "exhaustive":
        return verify_exhaustive(
            radix=point.param("radix"), num_levels=point.param("num_levels")
        )
    return verify_random(
        radix=point.param("radix"),
        num_levels=point.param("num_levels"),
        trials=point.param("trials"),
        seed=point.seed,
    )


def run_circuit_verification(
    fast: bool = False,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CircuitVerificationResult:
    """Exhaustive small-radix sweep plus randomized larger-radix sweeps.

    Raises:
        SimulationError: wrapping the first :class:`VerificationError`
            disagreement between the wire model and the reference decision
            (none are expected), naming the sweep that failed.
    """
    specs = [("exhaustive", 3, 3, 0, 0)]
    if not fast:
        specs.append(("exhaustive", 4, 4, 0, 0))
    specs.append(("random", 8, 8, 300 if fast else 3000, 8))
    specs.append(("random", 16, 16, 100 if fast else 1000, 16))
    points = [
        SweepPoint.make(
            i,
            f"verify:{kind}:r{radix}",
            seed=seed,
            kind=kind,
            radix=radix,
            num_levels=num_levels,
            trials=trials,
        )
        for i, (kind, radix, num_levels, trials, seed) in enumerate(specs)
    ]
    executor = SweepExecutor(jobs=jobs, resilience=resilience)
    results = executor.map(_verification_point, points)
    return CircuitVerificationResult(reports=[r.value for r in results])


def main(
    fast: bool = False,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> str:
    """CLI entry."""
    return run_circuit_verification(
        fast=fast, jobs=jobs, resilience=resilience
    ).format()
