"""Table 1 — SSVC storage requirements.

The paper's worst case: a 64x64 switch with 512-bit output buses, 64-byte
flits, 4-flit BE/GL buffers and 4-flit-per-output GB virtual output queues,
an 11-bit auxVC (3 significant + 8 fractional), an 8-bit thermometer code,
an 8-bit Vtick, and a 63-bit LRG row per crosspoint. Expected: 1,056 KB of
buffering + 45 KB of crosspoint state = 1,101 KB (~1.1 MB) total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..config import SwitchConfig, TABLE1_CONFIG
from ..hw.storage import StorageBreakdown, storage_breakdown
from ..metrics.report import format_table

#: Paper's Table 1 anchor values in KB, for the EXPERIMENTS.md comparison.
PAPER_BUFFERING_KB = 1056.0
PAPER_CROSSPOINT_KB = 45.0
PAPER_TOTAL_KB = 1101.0


@dataclass
class Table1Result:
    """Computed breakdown plus paper-anchor deltas."""

    breakdown: StorageBreakdown

    @property
    def buffering_kb(self) -> float:
        """Total input buffering in KB."""
        return self.breakdown.total_buffering / 1024.0

    @property
    def crosspoint_kb(self) -> float:
        """Total crosspoint QoS state in KB."""
        return self.breakdown.total_crosspoint_state / 1024.0

    @property
    def total_kb(self) -> float:
        """Total switch storage in KB."""
        return self.breakdown.total / 1024.0

    def paper_deltas(self) -> List[Tuple[str, float, float]]:
        """(quantity, ours KB, paper KB) rows."""
        return [
            ("input buffering", self.buffering_kb, PAPER_BUFFERING_KB),
            ("crosspoint state", self.crosspoint_kb, PAPER_CROSSPOINT_KB),
            ("total", self.total_kb, PAPER_TOTAL_KB),
        ]

    def format(self) -> str:
        """Table 1 as ASCII."""
        rows = [(item, value) for item, value in self.breakdown.rows()]
        detail = format_table(
            ["item", "bytes"],
            rows,
            title="Table 1: SSVC storage (64x64 switch, 512-bit buses)",
            float_format=".1f",
        )
        compare = format_table(
            ["quantity", "ours (KB)", "paper (KB)"],
            self.paper_deltas(),
            title="Paper comparison",
            float_format=".1f",
        )
        return detail + "\n\n" + compare


def run_table1(config: SwitchConfig = TABLE1_CONFIG) -> Table1Result:
    """Compute the Table 1 breakdown (any config; paper's by default)."""
    return Table1Result(breakdown=storage_breakdown(config))


def main(fast: bool = False) -> str:
    """CLI entry."""
    return run_table1().format()
