"""Section 3.4, Eqs. 2-3 — GL burst budgets honour latency constraints.

Given GL inputs with latency constraints ``L_1 <= ... <= L_N``, the paper
derives per-input burst budgets ``sigma_n`` (in packets) such that if every
input bursts within its budget, every input still meets its constraint.
This experiment makes all inputs burst *simultaneously* (worst-case
alignment) at exactly ``floor(sigma_n)`` packets and checks each input's
worst observed waiting time against its ``L_n``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from ..config import GLPolicerConfig, QoSConfig, SwitchConfig
from ..core.gl_bound import burst_budgets
from ..metrics.report import format_table
from ..traffic.flows import Workload, gb_flow, gl_flow
from ..traffic.generators import TraceInjection
from ..types import FlowId, TrafficClass
from .common import run_simulation


@dataclass
class BurstCaseResult:
    """One input's budget vs. its measured worst wait.

    Attributes:
        latency_bound: the input's constraint L_n in cycles.
        budget_packets: sigma_n (fractional, as derived).
        burst_packets: the integer burst actually injected.
        max_waiting: worst measured injection-to-grant wait.
    """

    input_port: int
    latency_bound: float
    budget_packets: float
    burst_packets: int
    max_waiting: int

    @property
    def holds(self) -> bool:
        """Did the input meet its latency constraint?"""
        return self.max_waiting <= self.latency_bound


@dataclass
class GLBurstResult:
    """All inputs' outcomes for one burst experiment."""

    l_max: int
    cases: List[BurstCaseResult] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        """True when every input met its constraint."""
        return all(case.holds for case in self.cases)

    def format(self) -> str:
        rows = [
            (
                c.input_port,
                c.latency_bound,
                c.budget_packets,
                c.burst_packets,
                c.max_waiting,
                "yes" if c.holds else "NO",
            )
            for c in self.cases
        ]
        return format_table(
            ["input", "L_n (cycles)", "sigma_n (pkts)", "burst", "max wait", "met"],
            rows,
            title=f"GL burst budgets (Eqs. 2-3), l_max={self.l_max}",
            float_format=".2f",
        )


def run_gl_burst(
    latency_bounds: Sequence[float] = (120.0, 200.0, 320.0),
    gl_packet_flits: int = 2,
    gb_packet_flits: int = 8,
    repeats: int = 20,
    seed: int = 31,
) -> GLBurstResult:
    """Inject simultaneous budget-sized GL bursts and check every bound.

    Args:
        latency_bounds: one constraint per GL input, any order.
        gl_packet_flits: length of each GL packet (must be <= l_max).
        gb_packet_flits: the congesting GB packet length; the channel-
            release term of the budgets uses this as ``l_max``.
        repeats: how many aligned burst rounds to run (more rounds, more
            adversarial LRG phasings).
        seed: RNG seed for the background traffic.
    """
    bounds = sorted(float(b) for b in latency_bounds)
    n_gl = len(bounds)
    budgets = burst_budgets(bounds, l_max=gb_packet_flits)
    bursts = [max(int(math.floor(b)), 0) for b in budgets]
    # Space rounds far enough apart that one round fully drains first.
    round_period = int(4 * (bounds[-1] + gb_packet_flits))
    # GL buffers must hold a whole burst so waiting is measured in-switch.
    buffer_flits = max(max(bursts, default=1), 1) * gl_packet_flits

    config = SwitchConfig(
        radix=8,
        channel_bits=128,
        gb_buffer_flits=16,
        gl_buffer_flits=max(buffer_flits, 4),
        qos=QoSConfig(sig_bits=4, frac_bits=8),
        gl_policer=GLPolicerConfig(reserved_rate=0.10, burst_window=None),
    )
    workload = Workload(name="gl-burst")
    for src in range(config.radix):
        workload.add(
            gb_flow(src, 0, 0.85 / config.radix, packet_length=gb_packet_flits, inject_rate=None)
        )
    for src in range(n_gl):
        if bursts[src] == 0:
            continue
        times = [
            round_index * round_period  # whole burst arrives at once
            for round_index in range(1, repeats + 1)
            for _ in range(bursts[src])
        ]
        workload.add(
            gl_flow(
                src,
                0,
                packet_length=gl_packet_flits,
                process=TraceInjection(sorted(times)),
            )
        )
    horizon = (repeats + 2) * round_period
    sim_result = run_simulation(
        config, workload, arbiter="three-class", horizon=horizon, seed=seed,
        warmup_cycles=0,
    )
    result = GLBurstResult(l_max=gb_packet_flits)
    for src in range(n_gl):
        if bursts[src] == 0:
            result.cases.append(
                BurstCaseResult(src, bounds[src], budgets[src], 0, 0)
            )
            continue
        stats = sim_result.stats.flow_stats(FlowId(src, 0, TrafficClass.GL))
        max_wait = stats.waiting.maximum if stats.waiting.count else 0
        result.cases.append(
            BurstCaseResult(
                input_port=src,
                latency_bound=bounds[src],
                budget_packets=budgets[src],
                burst_packets=bursts[src],
                max_waiting=max_wait,
            )
        )
    return result


def main(fast: bool = False) -> str:
    """CLI entry."""
    repeats = 5 if fast else 20
    return run_gl_burst(repeats=repeats).format()
