"""Section 3.4, Eq. 1 — the Guaranteed Latency waiting-time bound.

``tau_GL <= l_max + N_GL,o * (b + b/l_min)``: a buffered GL packet waits at
most one maximum-length channel occupancy (a GB/BE packet already holding
the output) plus the transmit and arbitration latency of every GL flit that
can possibly be buffered ahead of it across all GL inputs.

The experiment drives the bound adversarially: ``n_gl`` inputs inject GL
packets (lengths spanning [l_min, l_max_gl]) while every other input
saturates the same output with maximum-length GB traffic and the policer is
disabled (the bound presumes GL priority is always honoured; the *policing
ablation* is exactly what :func:`run_policing_ablation` measures — an
unpoliced saturating GL source starves the GB class, which is why the
paper adds the safeguard).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..config import GLPolicerConfig, QoSConfig, SwitchConfig
from ..core.gl_bound import gl_latency_bound
from ..errors import SimulationError
from ..metrics.report import format_table
from ..traffic.flows import Workload, gb_flow, gl_flow
from ..traffic.generators import BernoulliInjection
from ..types import FlowId, TrafficClass
from .common import run_simulation


def _gl_config(
    gl_buffer_flits: int,
    gl_reserved: float,
    burst_window: "int | None",
) -> SwitchConfig:
    return SwitchConfig(
        radix=8,
        channel_bits=128,
        gb_buffer_flits=16,
        gl_buffer_flits=gl_buffer_flits,
        qos=QoSConfig(sig_bits=4, frac_bits=8),
        gl_policer=GLPolicerConfig(reserved_rate=gl_reserved, burst_window=burst_window),
    )


@dataclass
class GLBoundResult:
    """Measured GL waiting times against Eq. 1.

    Attributes:
        bound: the Eq. 1 value in cycles.
        max_waiting: worst measured injection-to-grant wait of a GL packet.
        mean_waiting: average GL wait.
        gl_packets: GL packets measured.
        params: (l_max, l_min, n_gl, buffer_flits) used by the bound.
    """

    bound: float
    max_waiting: int
    mean_waiting: float
    gl_packets: int
    params: Tuple[int, int, int, int]

    @property
    def holds(self) -> bool:
        """Did every measured wait stay within the bound?"""
        return self.max_waiting <= self.bound

    def format(self) -> str:
        l_max, l_min, n_gl, b = self.params
        rows = [
            ("Eq.1 bound (cycles)", self.bound),
            ("measured max waiting", self.max_waiting),
            ("measured mean waiting", self.mean_waiting),
            ("GL packets measured", self.gl_packets),
            ("bound holds", "yes" if self.holds else "NO"),
        ]
        return format_table(
            ["quantity", "value"],
            rows,
            title=(
                f"GL latency bound: l_max={l_max}, l_min={l_min}, "
                f"N_GL={n_gl}, b={b}"
            ),
            float_format=".1f",
        )


def run_gl_bound(
    n_gl: int = 3,
    gl_buffer_flits: int = 4,
    l_min: int = 1,
    l_max_gl: int = 2,
    gb_packet_flits: int = 8,
    gl_rate: float = 0.01,
    horizon: int = 120_000,
    seed: int = 17,
) -> GLBoundResult:
    """Measure GL waiting under adversarial GB congestion.

    Args:
        n_gl: inputs injecting GL traffic to output 0.
        gl_buffer_flits: GL buffer depth ``b``.
        l_min: minimum GL packet length.
        l_max_gl: maximum GL packet length (GL packets draw uniformly from
            [l_min, l_max_gl]; the bound's ``l_max`` is the *system-wide*
            maximum, i.e. the GB packet length).
        gb_packet_flits: length of the congesting GB packets (= l_max).
        gl_rate: per-input GL offered load in flits/cycle ("infrequent,
            time-critical messages").
        horizon: cycles.
        seed: RNG seed.
    """
    config = _gl_config(gl_buffer_flits, gl_reserved=0.05, burst_window=None)
    workload = Workload(name="gl-bound")
    gb_share = 0.9 / config.radix
    for src in range(config.radix):
        # Everyone congests the output with max-length GB packets.
        workload.add(
            gb_flow(src, 0, gb_share, packet_length=gb_packet_flits, inject_rate=None)
        )
        if src < n_gl:
            workload.add(
                gl_flow(
                    src,
                    0,
                    packet_length=(l_min, l_max_gl),
                    process=BernoulliInjection(gl_rate),
                )
            )
    sim_result = run_simulation(
        config, workload, arbiter="three-class", horizon=horizon, seed=seed
    )
    bound = gl_latency_bound(
        l_max=gb_packet_flits, l_min=l_min, n_gl=n_gl, buffer_flits=gl_buffer_flits
    )
    waits = []
    packets = 0
    for src in range(n_gl):
        stats = sim_result.stats.flow_stats(FlowId(src, 0, TrafficClass.GL))
        if stats.waiting.count:
            waits.append(stats.waiting)
            packets += stats.waiting.count
    if not waits:
        raise SimulationError("no GL packets delivered; increase horizon or gl_rate")
    max_wait = max(w.maximum for w in waits)
    mean_wait = sum(w.mean * w.count for w in waits) / packets
    return GLBoundResult(
        bound=bound,
        max_waiting=max_wait,
        mean_waiting=mean_wait,
        gl_packets=packets,
        params=(gb_packet_flits, l_min, n_gl, gl_buffer_flits),
    )


@dataclass
class PolicingAblation:
    """GB throughput with a saturating (abusive) GL source, +/- policing.

    Attributes:
        gb_throughput_policed: GB flits/cycle with the safeguard on.
        gb_throughput_unpoliced: GB flits/cycle with it off.
        gl_throughput_policed / gl_throughput_unpoliced: the abuser's take.
    """

    gb_throughput_policed: float
    gb_throughput_unpoliced: float
    gl_throughput_policed: float
    gl_throughput_unpoliced: float

    def format(self) -> str:
        rows = [
            ("GB", self.gb_throughput_policed, self.gb_throughput_unpoliced),
            ("GL (abuser)", self.gl_throughput_policed, self.gl_throughput_unpoliced),
        ]
        return format_table(
            ["class", "policed", "unpoliced"],
            rows,
            title="GL policing ablation (flits/cycle at the contested output)",
        )


def run_policing_ablation(horizon: int = 60_000, seed: int = 9) -> PolicingAblation:
    """A saturating GL source with and without the Section 3.4 safeguard."""
    results = {}
    for label, window in (("policed", 2048), ("unpoliced", None)):
        config = _gl_config(gl_buffer_flits=8, gl_reserved=0.05, burst_window=window)
        workload = Workload(name=f"gl-abuse-{label}")
        for src in range(1, config.radix):
            workload.add(gb_flow(src, 0, 0.9 / config.radix, inject_rate=None))
        workload.add(gl_flow(0, 0, packet_length=4, inject_rate=None))  # abuser
        sim_result = run_simulation(
            config, workload, arbiter="three-class", horizon=horizon, seed=seed
        )
        results[label] = (
            sim_result.stats.class_throughput(TrafficClass.GB),
            sim_result.stats.class_throughput(TrafficClass.GL),
        )
    return PolicingAblation(
        gb_throughput_policed=results["policed"][0],
        gb_throughput_unpoliced=results["unpoliced"][0],
        gl_throughput_policed=results["policed"][1],
        gl_throughput_unpoliced=results["unpoliced"][1],
    )


def main(fast: bool = False) -> str:
    """CLI entry: bound validation plus the policing ablation."""
    horizon = 40_000 if fast else 120_000
    bound = run_gl_bound(horizon=horizon)
    ablation = run_policing_ablation(horizon=max(horizon // 2, 20_000))
    return bound.format() + "\n\n" + ablation.format()
