"""Section 2.2 ablation — why Virtual Clock beats static reservations.

"WRR and DWRR lead to network underutilization as they do not distribute
leftover bandwidth ... In a true TDM system ... that time slot is wasted."
The scenario: one input reserves a large share of the output but sits
*idle*; the remaining inputs are backlogged. A work-conserving clock-based
scheduler (SSVC, WFQ, original VC) hands the idle share to the backlogged
flows; TDM and strict WRR waste it.

A second scenario reproduces the fixed-priority critique (Section 2.2's
three differences from the DAC'12 design): under the 4-level scheme a
high-priority input starves everyone below it, and its two arbitration
cycles cost throughput even in the uncontended case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..metrics.report import format_table
from ..traffic.flows import FlowSpec, Workload, gb_flow
from ..types import FlowId, TrafficClass
from .common import gb_only_config, run_simulation

#: Policies compared in the idle-reservation scenario.
IDLE_SCENARIO_POLICIES = ("ssvc", "virtual-clock", "wfq", "dwrr", "wrr-strict", "tdm")


@dataclass
class IdleReservationResult:
    """Total and per-flow throughput when a reserved flow goes idle.

    Attributes:
        idle_share: the reservation held by the idle input.
        totals: output throughput (flits/cycle) per policy.
        backlogged: combined throughput of the active flows per policy.
    """

    idle_share: float
    totals: Dict[str, float] = field(default_factory=dict)
    backlogged: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        rows = [
            (policy, self.totals[policy], self.backlogged[policy])
            for policy in self.totals
        ]
        return format_table(
            ["policy", "output total", "backlogged flows"],
            rows,
            title=(
                f"Idle-reservation ablation: input 0 reserves "
                f"{100 * self.idle_share:.0f}% but sends nothing (flits/cycle)"
            ),
        )


def run_idle_reservation(
    idle_share: float = 0.5,
    policies: Sequence[str] = IDLE_SCENARIO_POLICIES,
    horizon: int = 60_000,
    packet_flits: int = 8,
    seed: int = 41,
) -> IdleReservationResult:
    """One idle reserved flow + backlogged others, across policies."""
    config = gb_only_config(radix=8, sig_bits=4)
    num_active = 4
    active_share = (0.95 - idle_share) / num_active
    result = IdleReservationResult(idle_share=idle_share)
    for policy in policies:
        workload = Workload(name=f"idle-reservation-{policy}")
        workload.add(
            FlowSpec(
                flow=FlowId(0, 0, TrafficClass.GB),
                packet_length=packet_flits,
                process=None,  # reservation held, no traffic ever
                reserved_rate=idle_share,
            )
        )
        for src in range(1, 1 + num_active):
            workload.add(
                gb_flow(src, 0, active_share, packet_length=packet_flits, inject_rate=None)
            )
        sim_result = run_simulation(
            config, workload, arbiter=policy, horizon=horizon, seed=seed
        )
        result.totals[policy] = sim_result.stats.output_throughput(0)
        result.backlogged[policy] = sum(
            sim_result.accepted_rate(FlowId(src, 0, TrafficClass.GB))
            for src in range(1, 1 + num_active)
        )
    return result


@dataclass
class FixedPriorityResult:
    """Starvation and arbitration-cost comparison vs. SSVC.

    Attributes:
        low_priority_rate: accepted rate of the lowest-priority input under
            the 4-level scheme (starved) and under SSVC (guaranteed).
        totals: output throughput per policy (2-cycle arbitration shows).
    """

    low_priority_rate: Dict[str, float] = field(default_factory=dict)
    totals: Dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        rows = [
            (policy, self.low_priority_rate[policy], self.totals[policy])
            for policy in self.low_priority_rate
        ]
        return format_table(
            ["policy", "low-priority flow rate", "output total"],
            rows,
            title="Fixed-priority (DAC'12) vs SSVC: starvation and arbitration cost",
        )


def run_fixed_priority_comparison(
    horizon: int = 60_000,
    packet_flits: int = 8,
    seed: int = 43,
) -> FixedPriorityResult:
    """Two saturating inputs, one at priority 3, one at priority 0."""
    config = gb_only_config(radix=8, sig_bits=4)
    result = FixedPriorityResult()
    for policy in ("fixed-priority", "ssvc"):
        workload = Workload(name=f"fixed-priority-{policy}")
        high = gb_flow(0, 0, 0.5, packet_length=packet_flits, inject_rate=None)
        low = gb_flow(1, 0, 0.45, packet_length=packet_flits, inject_rate=None)
        workload.add(FlowSpec(**{**high.__dict__, "priority_level": 3}))
        workload.add(FlowSpec(**{**low.__dict__, "priority_level": 0}))
        sim_result = run_simulation(
            config, workload, arbiter=policy, horizon=horizon, seed=seed
        )
        result.low_priority_rate[policy] = sim_result.accepted_rate(
            FlowId(1, 0, TrafficClass.GB)
        )
        result.totals[policy] = sim_result.stats.output_throughput(0)
    return result


def main(fast: bool = False) -> str:
    """CLI entry: both scenarios."""
    horizon = 20_000 if fast else 60_000
    idle = run_idle_reservation(horizon=horizon)
    fixed = run_fixed_priority_comparison(horizon=horizon)
    return idle.format() + "\n\n" + fixed.format()
