"""Multi-seed replication for simulation experiments.

Single-seed results can be noisy (Fig. 5's per-flow latencies especially);
this utility reruns an experiment across seeds and reports mean, standard
deviation, and a normal-approximation 95 % confidence interval per metric,
so EXPERIMENTS.md claims can be backed by intervals instead of point
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..parallel import SweepExecutor, SweepPoint
from ..resilience import ResilienceOptions
from ..resilience.journal import worker_name

#: An experiment run: seed in, named scalar metrics out.
MetricFn = Callable[[int], Mapping[str, float]]


class _MetricPointFn:
    """Adapter: run a :data:`MetricFn` from a sweep-point envelope.

    A class (not a closure) so the adapter pickles whenever the wrapped
    function does; an unpicklable ``fn`` (a lambda, a local closure) makes
    the executor fall back to its serial path automatically.

    The instance takes on the wrapped function's dotted name (``__module__``
    / ``__qualname__``): ``worker_name`` keys journal and catalog entries by
    it, and without the forwarding every replicated experiment would share
    the class's own name — two different experiments replicated through one
    journal (or a shared catalog) would collide on identical ``seed:<n>``
    envelopes and the second would be refused as a determinism violation.
    """

    def __init__(self, fn: MetricFn) -> None:
        self.fn = fn
        base = worker_name(fn)
        self.__module__, _, self.__qualname__ = base.rpartition(".")

    def __call__(self, point: SweepPoint) -> Dict[str, float]:
        return {name: float(v) for name, v in dict(self.fn(point.seed)).items()}


@dataclass(frozen=True)
class MetricSummary:
    """Replication statistics for one metric.

    Attributes:
        mean/std: sample mean and standard deviation across seeds.
        ci95_half_width: half-width of the normal-approximation 95 % CI.
        samples: the per-seed values, in seed order.
    """

    name: str
    mean: float
    std: float
    ci95_half_width: float
    samples: tuple

    @property
    def ci95(self) -> "tuple[float, float]":
        """The 95 % confidence interval (lower, upper)."""
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.mean:.3f} ± {self.ci95_half_width:.3f} (95% CI)"


def replicate(
    fn: MetricFn,
    seeds: Sequence[int],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> Dict[str, MetricSummary]:
    """Run ``fn`` once per seed and summarize every metric it returns.

    Args:
        fn: maps a seed to a dict of scalar metrics. Every run must return
            the same metric names.
        seeds: at least two seeds.
        jobs: worker processes for the per-seed runs; an unpicklable
            ``fn`` silently degrades to the serial path.

    Returns:
        One :class:`MetricSummary` per metric name.

    Raises:
        ConfigError: on fewer than two seeds or inconsistent metric names.
    """
    if len(seeds) < 2:
        raise ConfigError(f"replication needs >= 2 seeds, got {len(seeds)}")
    points = [
        SweepPoint.make(i, f"seed:{seed}", seed=seed)
        for i, seed in enumerate(seeds)
    ]
    executor = SweepExecutor(jobs=jobs, resilience=resilience)
    results = executor.map(_MetricPointFn(fn), points)
    per_metric: Dict[str, List[float]] = {}
    names = None
    for point_result in results:
        metrics = point_result.value
        seed = point_result.point.seed
        if names is None:
            names = set(metrics)
        elif set(metrics) != names:
            raise ConfigError(
                f"seed {seed} returned metrics {sorted(metrics)}, expected {sorted(names)}"
            )
        for name, value in metrics.items():
            per_metric.setdefault(name, []).append(float(value))
    summaries = {}
    for name, values in per_metric.items():
        arr = np.asarray(values)
        std = float(arr.std(ddof=1))
        summaries[name] = MetricSummary(
            name=name,
            mean=float(arr.mean()),
            std=std,
            ci95_half_width=1.96 * std / np.sqrt(len(arr)),
            samples=tuple(values),
        )
    return summaries
