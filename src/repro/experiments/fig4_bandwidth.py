"""Fig. 4 — bandwidth received by flows without and with QoS.

Setup (paper Section 4.2): 8 inputs, 1 output, 128-bit output channel,
8-flit packets, 16-flit buffers, GB traffic only, 4 significant auxVC bits.
Each input reserves a fraction of the output's bandwidth
(40/20/10/10/5/5/5/5 %); the injection rate per input sweeps from light
load to saturation.

Expected shapes:

* **(a) LRG, no QoS** — every flow's accepted throughput tracks its offered
  load until congestion, then all flows collapse to an *equal* share; the
  output tops out at 8/9 = 0.889 flits/cycle (one re-arbitration cycle per
  8-flit packet).
* **(b) SSVC** — during congestion flows keep at least their reserved
  rates (the residual capacity shortfall lands on the largest flow, since
  0.40+0.20+... = 100 % of the channel but only 88.9 % is achievable).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.report import format_table
from ..parallel import SweepExecutor, SweepPoint
from ..resilience import ResilienceOptions
from ..traffic.patterns import FIG4_RESERVED_RATES
from ..types import FlowId, TrafficClass
from .common import gb_only_config, run_simulation

#: Injection rates (flits/input/cycle) swept along Fig. 4's x-axis.
DEFAULT_SWEEP = (0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.40, 0.60, 0.80, 1.0)


@dataclass
class Fig4Result:
    """Accepted-throughput curves for one arbitration policy.

    Attributes:
        arbiter: preset name ("lrg" or "ssvc").
        reserved_rates: per-input reserved fractions.
        injection_rates: swept x-axis values (1.0 == saturating sources).
        accepted: ``accepted[inject_rate][input] ->`` flits/cycle.
        total_throughput: output throughput per injection rate.
        grants: arbitration grants performed per injection rate (lets the
            bench suite report grants/sec for a whole sweep).
    """

    arbiter: str
    reserved_rates: Tuple[float, ...]
    injection_rates: Tuple[float, ...]
    accepted: Dict[float, List[float]] = field(default_factory=dict)
    total_throughput: Dict[float, float] = field(default_factory=dict)
    grants: Dict[float, int] = field(default_factory=dict)

    @property
    def completed_rates(self) -> Tuple[float, ...]:
        """Injection rates that actually have results.

        Equal to :attr:`injection_rates` on a complete run; shorter when a
        salvage run left explicit holes (see docs/PARALLELISM.md).
        """
        return tuple(r for r in self.injection_rates if r in self.accepted)

    @property
    def saturation_shares(self) -> List[float]:
        """Per-flow accepted rates at the highest injection point."""
        top = self.injection_rates[-1]
        if top not in self.accepted:
            missing = [r for r in self.injection_rates if r not in self.accepted]
            raise KeyError(
                f"fig4 {self.arbiter}: saturation point {top:g} has no result "
                f"(salvaged holes at rates {missing})"
            )
        return self.accepted[top]

    def format(self) -> str:
        """Fig. 4 as an ASCII table (rows = injection rates)."""
        headers = ["inject"] + [
            f"flow{i} (r={r:.2f})" for i, r in enumerate(self.reserved_rates)
        ] + ["total"]
        rows = []
        for rate in self.completed_rates:
            rows.append(
                [rate] + list(self.accepted[rate]) + [self.total_throughput[rate]]
            )
        table = format_table(
            headers,
            rows,
            title=f"Fig.4 accepted throughput (flits/cycle) — {self.arbiter}",
        )
        holes = [r for r in self.injection_rates if r not in self.accepted]
        if holes:
            table += (
                "\nMISSING points (salvaged failures): "
                + ", ".join(f"{r:g}" for r in holes)
            )
        return table

    def chart(self, flows: "tuple[int, ...]" = (0, 1, 4)) -> str:
        """The figure's curves for selected flows, as an ASCII chart."""
        from ..metrics.ascii_plot import line_chart

        rates = self.completed_rates
        series = {
            f"flow{i} r={self.reserved_rates[i]:.2f}": [
                self.accepted[rate][i] for rate in rates
            ]
            for i in flows
        }
        return line_chart(
            series,
            [f"{r:g}" for r in rates],
            title=f"Fig.4 shape — {self.arbiter} (x: injection, y: accepted)",
            y_label="fl/cy",
        )


def _fig4_point(point: SweepPoint) -> Tuple[List[float], float, int]:
    """Worker: one injection-rate point, rebuilt entirely from the envelope.

    Module-level and driven only by ``point`` so the parallel executor can
    pickle it into worker processes; returns plain floats/ints.
    """
    config = gb_only_config(radix=8, channel_bits=128, sig_bits=4)
    arbitration_cycles = point.param("arbitration_cycles")
    if arbitration_cycles is not None:
        config = replace(config, arbitration_cycles=arbitration_cycles)
    reserved_rates = point.param("reserved_rates")
    rate = point.param("rate")
    from ..traffic.patterns import single_output_workload

    workload = single_output_workload(
        num_inputs=len(reserved_rates),
        output=0,
        reserved_rates=list(reserved_rates),
        packet_length=point.param("packet_flits"),
        inject_rate=None if rate >= 1.0 else rate,
    )
    sim_result = run_simulation(
        config,
        workload,
        arbiter=point.param("arbiter"),
        horizon=point.param("horizon"),
        seed=point.seed,
    )
    per_flow = [
        sim_result.accepted_rate(FlowId(src, 0, TrafficClass.GB))
        for src in range(len(reserved_rates))
    ]
    return per_flow, sim_result.stats.output_throughput(0), sim_result.grants


def run_fig4(
    arbiter: str,
    injection_rates: Sequence[float] = DEFAULT_SWEEP,
    horizon: int = 60_000,
    packet_flits: int = 8,
    reserved_rates: Sequence[float] = FIG4_RESERVED_RATES,
    seed: int = 11,
    arbitration_cycles: Optional[int] = None,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> Fig4Result:
    """Run one Fig. 4 panel (``arbiter="lrg"`` for (a), ``"ssvc"`` for (b)).

    Args:
        arbiter: arbitration preset.
        injection_rates: swept per-input flit rates; 1.0 uses saturating
            sources (pure congestion).
        horizon: cycles per point.
        packet_flits: packet size (paper: 8).
        reserved_rates: per-input reserved fractions (paper's mix).
        seed: RNG seed (every point pins it, so results are independent of
            the sweep's composition and of ``jobs``).
        arbitration_cycles: override of the re-arbitration bubble (the
            bubble ablation passes 0).
        jobs: sweep-point worker processes; 1 runs in-process and is
            bit-identical to any parallel run (see docs/PARALLELISM.md).
        resilience: journaling/retry/salvage bundle threaded into the
            executor; under salvage the returned result may have holes
            (see :attr:`Fig4Result.completed_rates`).
    """
    result = Fig4Result(
        arbiter=arbiter,
        reserved_rates=tuple(reserved_rates),
        injection_rates=tuple(injection_rates),
    )
    points = [
        SweepPoint.make(
            i,
            f"fig4:{arbiter}@{rate:g}",
            seed=seed,
            rate=rate,
            arbiter=arbiter,
            horizon=horizon,
            packet_flits=packet_flits,
            reserved_rates=tuple(reserved_rates),
            arbitration_cycles=arbitration_cycles,
        )
        for i, rate in enumerate(injection_rates)
    ]
    executor = SweepExecutor(jobs=jobs, resilience=resilience)
    for point_result in executor.map(_fig4_point, points):
        rate = point_result.point.param("rate")
        per_flow, total, grants = point_result.value
        result.accepted[rate] = per_flow
        result.total_throughput[rate] = total
        result.grants[rate] = grants
    return result


def run_both_panels(
    injection_rates: Sequence[float] = DEFAULT_SWEEP,
    horizon: int = 60_000,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> Tuple[Fig4Result, Fig4Result]:
    """Run Fig. 4(a) (LRG) and Fig. 4(b) (SSVC)."""
    return (
        run_fig4("lrg", injection_rates, horizon, jobs=jobs, resilience=resilience),
        run_fig4("ssvc", injection_rates, horizon, jobs=jobs, resilience=resilience),
    )


def main(
    fast: bool = False,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> str:
    """CLI entry: run both panels and return the formatted report."""
    horizon = 20_000 if fast else 60_000
    sweep = (0.05, 0.10, 0.20, 0.40, 1.0) if fast else DEFAULT_SWEEP
    lrg, ssvc = run_both_panels(sweep, horizon, jobs=jobs, resilience=resilience)
    return "\n\n".join(
        [lrg.format(), lrg.chart(), ssvc.format(), ssvc.chart()]
    )
