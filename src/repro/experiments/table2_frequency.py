"""Table 2 — switch frequency with and without SSVC.

The analytic timing model (see :mod:`repro.hw.timing`) sweeps the paper's
grid — radix {8, 16, 32, 64} x channel width {128, 256, 512} bits — and
reports baseline (SS) and SSVC frequencies plus the slowdown. Reproduction
targets: the worst slowdown is 8.4 % at the 8x8/256-bit point, slowdowns
shrink with radix (fewer lanes -> shallower sense-path mux), and the
radix-64/128-bit baseline sits at the paper's 1.5 GHz anchor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..hw.timing import TimingModel, frequency_table
from ..metrics.report import format_table

#: Paper anchors (Section 4.5 / Section 1).
PAPER_WORST_SLOWDOWN_PCT = 8.4
PAPER_WORST_POINT = (8, 256)
PAPER_BASE_FREQ_GHZ = 1.5
PAPER_BASE_POINT = (64, 128)


@dataclass
class Table2Result:
    """Frequency grid plus the paper-anchor checks."""

    rows: List[Tuple[int, int, float, float, float]]

    @property
    def worst(self) -> Tuple[int, int, float]:
        """(radix, width, slowdown %) of the worst grid point."""
        radix, width, _, _, slow = max(self.rows, key=lambda r: r[4])
        return radix, width, slow

    def frequency(self, radix: int, width: int, ssvc: bool = False) -> float:
        """Look up one grid point's frequency in GHz."""
        for r, w, f_ss, f_ssvc, _ in self.rows:
            if (r, w) == (radix, width):
                return f_ssvc if ssvc else f_ss
        raise KeyError(f"no grid point ({radix}, {width})")

    def format(self) -> str:
        """Table 2 as ASCII."""
        table = format_table(
            ["radix", "width (bits)", "SS (GHz)", "SSVC (GHz)", "slowdown %"],
            self.rows,
            title="Table 2: frequency with and without SSVC (calibrated model)",
            float_format=".2f",
        )
        radix, width, slow = self.worst
        summary = (
            f"worst slowdown: {slow:.1f}% at {radix}x{radix}, {width}-bit "
            f"(paper: {PAPER_WORST_SLOWDOWN_PCT}% at "
            f"{PAPER_WORST_POINT[0]}x{PAPER_WORST_POINT[0]}, {PAPER_WORST_POINT[1]}-bit)"
        )
        return table + "\n" + summary


def run_table2(model: TimingModel = TimingModel()) -> Table2Result:
    """Compute the Table 2 grid."""
    return Table2Result(rows=frequency_table(model))


def main(fast: bool = False) -> str:
    """CLI entry."""
    return run_table2().format()
