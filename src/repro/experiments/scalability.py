"""Section 4.4 — scalability: lane feasibility and quantization accuracy.

Two parts:

1. The closed-form lane analysis: ``num_lanes = bus width / radix``, at
   least 3 lanes for three classes, so 128-bit buses carry radix 8-32 and
   radix 64 needs 256 bits.
2. "The accuracy of the SSVC technique increases with more lanes of
   arbitration": sweeping the number of significant auxVC bits (1 bit = 2
   levels ... 5 bits = 32 levels) trades LRG-like equal sharing against
   exact Virtual Clock behaviour. We measure worst rate shortfall and the
   latency spread across allocations at each setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..hw.lanes import lane_feasibility_table
from ..metrics.report import format_table
from ..parallel import SweepExecutor, SweepPoint
from ..resilience import ResilienceOptions
from ..traffic.flows import Workload, gb_flow
from ..traffic.generators import BernoulliInjection
from ..traffic.patterns import single_output_workload
from ..types import FlowId, TrafficClass
from .common import gb_only_config, run_simulation

#: Allocation mix reused across the sig-bit sweep.
SWEEP_ALLOCATIONS = (0.40, 0.20, 0.10, 0.08, 0.05, 0.02)


@dataclass
class SigBitsPoint:
    """Outcome at one quantization setting.

    Attributes:
        sig_bits: significant auxVC bits (2**sig_bits thermometer levels).
        worst_shortfall: max relative reservation shortfall, saturated.
        latency_spread: stddev of per-flow mean latencies at offered ==
            reserved load (lower = fairer, LRG-like).
    """

    sig_bits: int
    worst_shortfall: float
    latency_spread: float


@dataclass
class ScalabilityResult:
    """Lane table plus the accuracy sweep."""

    lane_rows: List[Tuple[int, int, int, bool, int]]
    accuracy: List[SigBitsPoint] = field(default_factory=list)

    def format(self) -> str:
        lanes = format_table(
            ["radix", "bus (bits)", "lanes", "3 classes", "GB levels"],
            self.lane_rows,
            title="Section 4.4 lane feasibility (num_lanes = width / radix)",
        )
        acc = format_table(
            ["sig bits", "levels", "worst shortfall %", "latency spread (cycles)"],
            [
                (p.sig_bits, 1 << p.sig_bits, 100 * p.worst_shortfall, p.latency_spread)
                for p in self.accuracy
            ],
            title="SSVC accuracy vs quantization",
            float_format=".2f",
        )
        return lanes + "\n\n" + acc


def _sig_bits_point(point: SweepPoint) -> Tuple[float, float]:
    """Worker: both runs (saturated + near-reservation) for one sig_bits."""
    sig_bits = point.param("sig_bits")
    rates = list(point.param("rates"))
    horizon = point.param("horizon")
    num_inputs = len(rates)
    config = gb_only_config(radix=num_inputs, sig_bits=sig_bits)
    # Saturated run: rate adherence.
    workload = single_output_workload(
        num_inputs, 0, rates, packet_length=8, inject_rate=None
    )
    saturated = run_simulation(
        config, workload, arbiter="ssvc", horizon=horizon, seed=point.seed
    )
    shortfalls = []
    for src, rate in enumerate(rates):
        accepted = saturated.accepted_rate(FlowId(src, 0, TrafficClass.GB))
        shortfalls.append(max(0.0, (rate - accepted) / rate))
    # Offered-near-reservation run: latency spread across allocations.
    loaded = Workload(name="sigbits-load")
    for src, rate in enumerate(rates):
        loaded.add(
            gb_flow(
                src, 0, rate, packet_length=8,
                process=BernoulliInjection(rate * 0.95),
            )
        )
    light = run_simulation(
        config, loaded, arbiter="ssvc", horizon=horizon, seed=point.seed
    )
    latencies = []
    for src in range(num_inputs):
        flow = FlowId(src, 0, TrafficClass.GB)
        if light.stats.flow_stats(flow).delivered_packets == 0:
            raise SimulationError(
                f"sig-bits sweep flow {flow} delivered no packets in "
                f"{horizon} cycles; latency spread undefined — lengthen "
                f"the horizon"
            )
        latencies.append(light.mean_latency(flow))
    return max(shortfalls), float(np.std(np.asarray(latencies)))


def run_sig_bits_sweep(
    sig_bits_values: Sequence[int] = (1, 2, 3, 4, 5),
    allocations: Sequence[float] = SWEEP_ALLOCATIONS,
    horizon: int = 120_000,
    seed: int = 13,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> List[SigBitsPoint]:
    """Measure adherence and latency spread at each quantization."""
    num_inputs = 8
    rates = list(allocations) + [0.01] * (num_inputs - len(allocations))
    sweep = [
        SweepPoint.make(
            i,
            f"sigbits:{sig_bits}",
            seed=seed,
            sig_bits=sig_bits,
            rates=tuple(rates),
            horizon=horizon,
        )
        for i, sig_bits in enumerate(sig_bits_values)
    ]
    points = []
    executor = SweepExecutor(jobs=jobs, resilience=resilience)
    for point_result in executor.map(_sig_bits_point, sweep):
        worst_shortfall, latency_spread = point_result.value
        points.append(
            SigBitsPoint(
                sig_bits=point_result.point.param("sig_bits"),
                worst_shortfall=worst_shortfall,
                latency_spread=latency_spread,
            )
        )
    return points


def run_scalability(
    horizon: int = 120_000,
    sig_bits_values: Sequence[int] = (1, 2, 3, 4, 5),
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> ScalabilityResult:
    """Lane table plus the quantization accuracy sweep."""
    return ScalabilityResult(
        lane_rows=lane_feasibility_table(),
        accuracy=run_sig_bits_sweep(
            sig_bits_values, horizon=horizon, jobs=jobs, resilience=resilience
        ),
    )


def main(
    fast: bool = False,
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> str:
    """CLI entry."""
    horizon = 40_000 if fast else 120_000
    bits = (2, 4) if fast else (1, 2, 3, 4, 5)
    return run_scalability(
        horizon=horizon, sig_bits_values=bits, jobs=jobs, resilience=resilience
    ).format()
