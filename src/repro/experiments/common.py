"""Shared experiment plumbing: arbiter presets and run helpers."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Protocol, Union

from ..config import GLPolicerConfig, QoSConfig, SwitchConfig
from ..errors import ConfigError
from ..faults import FaultPlan
from ..obs.probe import Probe
from ..qos import (
    ArrivalStampedVCArbiter,
    CCSPArbiter,
    DWRRArbiter,
    FixedPriorityArbiter,
    GSFArbiter,
    ISLIPArbiter,
    LRGArbiter,
    OutputArbiter,
    PreemptiveVCArbiter,
    QPSRArbiter,
    SSVCArbiter,
    SWQPSArbiter,
    TDMArbiter,
    ThreeClassArbiter,
    VirtualClockArbiter,
    WFQArbiter,
    WRRArbiter,
    shared_iterative_factory,
)
from ..switch.crossbar import ArbiterFactory
from ..switch.simulator import Simulation, SimulationResult
from ..traffic.flows import Workload
from ..types import CounterMode


def _ssvc_factory(mode: Optional[CounterMode]) -> ArbiterFactory:
    def factory(output: int, config: SwitchConfig) -> OutputArbiter:
        qos = config.qos if mode is None else replace(config.qos, counter_mode=mode)
        return SSVCArbiter(config.radix, qos=qos)

    return factory


def _three_class_factory(output: int, config: SwitchConfig) -> OutputArbiter:
    return ThreeClassArbiter(
        config.radix, qos=config.qos, gl_policer_config=config.gl_policer
    )


#: Named arbitration policies usable from the CLI and the benches.
ARBITER_PRESETS: "dict[str, ArbiterFactory]" = {
    "lrg": lambda o, c: LRGArbiter(c.radix),
    "virtual-clock": lambda o, c: VirtualClockArbiter(c.radix),
    "virtual-clock-arrival": lambda o, c: ArrivalStampedVCArbiter(c.radix),
    "preemptive-vc": lambda o, c: PreemptiveVCArbiter(c.radix),
    "ccsp": lambda o, c: CCSPArbiter(c.radix),
    "ssvc": _ssvc_factory(None),
    "ssvc-subtract": _ssvc_factory(CounterMode.SUBTRACT),
    "ssvc-halve": _ssvc_factory(CounterMode.HALVE),
    "ssvc-reset": _ssvc_factory(CounterMode.RESET),
    "three-class": _three_class_factory,
    "fixed-priority": lambda o, c: FixedPriorityArbiter(c.radix),
    "wrr": lambda o, c: WRRArbiter(c.radix, work_conserving=True),
    "wrr-strict": lambda o, c: WRRArbiter(c.radix, work_conserving=False),
    "dwrr": lambda o, c: DWRRArbiter(c.radix),
    "wfq": lambda o, c: WFQArbiter(c.radix),
    "tdm": lambda o, c: TDMArbiter(c.radix),
    "gsf": lambda o, c: GSFArbiter(c.radix),
    # Iterative VOQ matching schedulers (event kernel + SwitchConfig.voq
    # only; see docs/SCHEDULERS.md). One instance arbitrates the whole
    # switch, rebuilt per simulation by shared_iterative_factory.
    "islip": shared_iterative_factory(lambda c: ISLIPArbiter(c.radix)),
    "qps-r": shared_iterative_factory(lambda c: QPSRArbiter(c.radix)),
    "sw-qps": shared_iterative_factory(lambda c: SWQPSArbiter(c.radix)),
}


def make_arbiter_factory(preset: Union[str, ArbiterFactory]) -> ArbiterFactory:
    """Resolve a preset name (or pass a factory through).

    Raises:
        ConfigError: for unknown preset names, listing the valid ones.
    """
    if callable(preset):
        return preset
    try:
        return ARBITER_PRESETS[preset]
    except KeyError:
        raise ConfigError(
            f"unknown arbiter preset {preset!r}; valid: {sorted(ARBITER_PRESETS)}"
        ) from None


#: Simulation backends selectable by name (see docs/KERNELS.md).
KERNELS = ("event", "flit", "array")


class SimulationKernel(Protocol):
    """What every backend exposes: one run() producing a result."""

    def run(self, horizon: int) -> SimulationResult:
        """Simulate ``horizon`` cycles and return the collected results."""


def make_simulation(
    kernel: str,
    config: SwitchConfig,
    workload: Workload,
    **kwargs: object,
) -> SimulationKernel:
    """Construct the named kernel's simulation (event/flit/array).

    The flit and array backends are imported lazily so the default path
    pays nothing for them.

    Raises:
        ConfigError: for unknown kernel names, listing the valid ones.
    """
    if kernel == "event":
        return Simulation(config, workload, **kwargs)  # type: ignore[arg-type]
    if kernel == "flit":
        from ..switch.flit_kernel import FlitLevelSimulation

        return FlitLevelSimulation(config, workload, **kwargs)  # type: ignore[arg-type]
    if kernel == "array":
        from ..switch.array_kernel import ArraySimulation

        return ArraySimulation(config, workload, **kwargs)  # type: ignore[arg-type]
    raise ConfigError(f"unknown kernel {kernel!r}; valid: {list(KERNELS)}")


def run_simulation(
    config: SwitchConfig,
    workload: Workload,
    arbiter: Union[str, ArbiterFactory] = "three-class",
    horizon: int = 50_000,
    seed: int = 0,
    warmup_cycles: Optional[int] = None,
    collect_events: bool = False,
    probe: Optional[Probe] = None,
    fault_plan: Optional[FaultPlan] = None,
    kernel: str = "event",
) -> SimulationResult:
    """Build and run one simulation (the single entry point experiments use)."""
    sim = make_simulation(
        kernel,
        config,
        workload,
        arbiter_factory=make_arbiter_factory(arbiter),
        seed=seed,
        warmup_cycles=warmup_cycles,
        collect_events=collect_events,
        probe=probe,
        fault_plan=fault_plan,
    )
    return sim.run(horizon)


def voq_config(
    radix: int = 8,
    buffer_flits: int = 32,
    arbitration_cycles: int = 0,
) -> SwitchConfig:
    """A full-VOQ input-queued switch for the scheduler tournament.

    Every class gets per-output queues of ``buffer_flits`` flits, and the
    arbitration bubble defaults to zero so iterative schedulers can reach
    their papers' 100%-of-channel uniform throughput (with the Swizzle
    Switch's 1-cycle bubble, ``L/(L+1)`` caps everyone at 0.89 for 8-flit
    packets and the comparison flattens). GL reservation is disabled: the
    tournament drives unreserved traffic so head-of-line blocking — the
    thing VOQ removes — is what the classic-mode baseline exposes.
    """
    return SwitchConfig(
        radix=radix,
        voq=True,
        arbitration_cycles=arbitration_cycles,
        be_buffer_flits=buffer_flits,
        gb_buffer_flits=buffer_flits,
        gl_buffer_flits=buffer_flits,
        gl_policer=GLPolicerConfig(reserved_rate=0.0),
    )


def gb_only_config(
    radix: int = 8,
    channel_bits: int = 128,
    sig_bits: int = 4,
    frac_bits: int = 8,
    counter_mode: CounterMode = CounterMode.SUBTRACT,
    gb_buffer_flits: int = 16,
) -> SwitchConfig:
    """A Fig. 4/5-style configuration: GB traffic only, no GL reservation."""
    return SwitchConfig(
        radix=radix,
        channel_bits=channel_bits,
        gb_buffer_flits=gb_buffer_flits,
        qos=QoSConfig(sig_bits=sig_bits, frac_bits=frac_bits, counter_mode=counter_mode),
        gl_policer=GLPolicerConfig(reserved_rate=0.0),
    )
