"""``repro-bench``: run the pinned suite, emit BENCH JSON, gate regressions.

Usage::

    repro-bench                        # full suite -> BENCH_6.json
    repro-bench --quick                # CI smoke horizons
    repro-bench --kernel array         # only the array-kernel cases
    repro-bench --jobs 8               # workers for the parallel sweep case
    repro-bench --baseline auto       # compare vs. newest other BENCH_*.json
    repro-bench --baseline BENCH_2.json --threshold 0.3
    repro-bench --journal run.j --retries 1   # checkpoint the sweep cases

Exit status: 0 on success (or no comparable baseline), 1 when any case's
wall time regressed by more than ``--threshold`` (fraction, default 0.3),
2 on usage errors, 3 when ``--on-failure salvage`` left holes, 130 on a
clean cancellation. Reports are schema-checked on write *and* on read, so
a hand-edited baseline fails loudly instead of comparing garbage, and the
report file is replaced atomically (a crash mid-write never tears an
existing baseline).

Resilience flags (``--journal/--resume/--retries/--point-timeout/
--on-failure``) apply to the sweep cases, which fan out through
:class:`repro.parallel.SweepExecutor`; single-run cases ignore them. Each
case gets its *own* journal file (``<journal>.<case-name>``) — the serial
and parallel sweep cases execute identical points, so a shared journal
would let the second case restore the first case's checkpoints and fake
its wall time.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import resource
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..catalog import RunCatalog
from ..errors import ConfigError, SweepInterrupted
from ..obs.probe import CountingProbe
from ..resilience import (
    FailurePolicy,
    ResilienceOptions,
    RetryPolicy,
    RunJournal,
    atomic_write_json,
)
from ..serialization import JSONDict
from .suite import (
    OVERHEAD_CASE,
    SUITE,
    SWEEP_PARALLEL_CASE,
    SWEEP_SERIAL_CASE,
    run_case,
)

#: Factory mapping a case name to its (per-case) resilience bundle.
ResilienceFactory = Callable[[str], Optional[ResilienceOptions]]

#: Bumped when the BENCH document layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")

#: Required top-level fields -> type; ``cases`` and ``probe_overhead`` are
#: checked structurally below. A hand-rolled validator keeps the harness
#: dependency-free (the container has no jsonschema).
_TOP_FIELDS: Dict[str, type] = {
    "schema_version": int,
    "suite": str,
    "python": str,
    "platform": str,
    "cases": list,
    "probe_overhead": dict,
}

_CASE_FIELDS: Dict[str, type] = {
    "name": str,
    "description": str,
    "horizon": int,
    "wall_time_s": float,
    "grants": int,
    "grants_per_sec": float,
    "peak_rss_kb": int,
    "qos": dict,
}

_OVERHEAD_FIELDS: Dict[str, type] = {
    "case": str,
    "disabled_wall_s": float,
    "enabled_wall_s": float,
    "enabled_overhead_pct": float,
}

_SPEEDUP_FIELDS: Dict[str, type] = {
    "case": str,
    "baseline": str,
    "speedup": float,
    "results_match": bool,
    "cpu_count": int,
}

_CATALOG_CACHE_FIELDS: Dict[str, type] = {
    "case": str,
    "cold_wall_s": float,
    "warm_wall_s": float,
    "points": int,
    "warm_hits": int,
    "hit_rate": float,
    "warm_speedup": float,
    "results_match": bool,
}


def validate_bench_document(doc: JSONDict) -> None:
    """Raise ``ConfigError`` unless ``doc`` is a well-formed BENCH report."""

    def check(obj: JSONDict, fields: Dict[str, type], where: str) -> None:
        for key, kind in fields.items():
            if key not in obj:
                raise ConfigError(f"BENCH document: missing {where}.{key}")
            value = obj[key]
            if kind is float and isinstance(value, int) and not isinstance(value, bool):
                continue  # JSON round-trips whole floats as ints
            if kind is bool:
                if not isinstance(value, bool):
                    raise ConfigError(
                        f"BENCH document: {where}.{key} must be bool, "
                        f"got {type(value).__name__}"
                    )
                continue
            if not isinstance(value, kind) or isinstance(value, bool):
                raise ConfigError(
                    f"BENCH document: {where}.{key} must be {kind.__name__}, "
                    f"got {type(value).__name__}"
                )

    check(doc, _TOP_FIELDS, "$")
    if doc["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ConfigError(
            f"BENCH document: schema_version {doc['schema_version']} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    names = set()
    for i, case in enumerate(doc["cases"]):
        if not isinstance(case, dict):
            raise ConfigError(f"BENCH document: cases[{i}] must be an object")
        check(case, _CASE_FIELDS, f"cases[{i}]")
        if case["wall_time_s"] <= 0:
            raise ConfigError(f"BENCH document: cases[{i}].wall_time_s must be > 0")
        if case["name"] in names:
            raise ConfigError(f"BENCH document: duplicate case {case['name']!r}")
        names.add(case["name"])
    check(doc["probe_overhead"], _OVERHEAD_FIELDS, "probe_overhead")
    # kernel_speedup appeared in schema revision BENCH_5; older documents
    # legitimately lack it, so it is validated only when present.
    for i, entry in enumerate(doc.get("kernel_speedup", [])):
        if not isinstance(entry, dict):
            raise ConfigError(f"BENCH document: kernel_speedup[{i}] must be an object")
        check(entry, _SPEEDUP_FIELDS, f"kernel_speedup[{i}]")
    # catalog_cache appeared with BENCH_6 (the run-catalog PR); validated
    # only when present for the same backward-compatibility reason.
    if "catalog_cache" in doc:
        entry = doc["catalog_cache"]
        if not isinstance(entry, dict):
            raise ConfigError("BENCH document: catalog_cache must be an object")
        check(entry, _CATALOG_CACHE_FIELDS, "catalog_cache")
        if not 0.0 <= entry["hit_rate"] <= 1.0:
            raise ConfigError(
                f"BENCH document: catalog_cache.hit_rate must be in [0, 1], "
                f"got {entry['hit_rate']}"
            )


def _reset_peak_rss() -> bool:
    """Reset the kernel's RSS high-water mark for this process (Linux).

    ``ru_maxrss`` is a process-lifetime maximum, so sampling it after
    every case used to report one identical number for the whole suite
    (whichever case peaked first, usually the import + first case).
    Writing ``5`` to ``/proc/self/clear_refs`` zeroes ``VmHWM``, letting
    each case report its *own* peak. Returns False where unsupported
    (non-Linux, restricted /proc) — callers then fall back to the old
    monotonic behavior rather than failing the run.
    """
    try:
        with open("/proc/self/clear_refs", "w", encoding="ascii") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


def _peak_rss_kb() -> int:
    """High-water RSS in KiB since the last :func:`_reset_peak_rss`.

    Reads ``VmHWM`` from ``/proc/self/status`` (the counter clear_refs
    resets); falls back to ``ru_maxrss`` (KiB on Linux, bytes on macOS)
    where /proc is unavailable.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    # Falling through to ru_maxrss *is* the handling: the report then
    # carries the old monotonic number instead of failing the bench run.
    # reprolint: disable=swallowed-exception
    except (OSError, ValueError, IndexError):
        pass
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes on macOS
        rss //= 1024
    return int(rss)


def _run_suite(
    quick: bool,
    jobs: Optional[int] = None,
    resilience_factory: Optional[ResilienceFactory] = None,
    kernel: str = "all",
) -> Tuple[List[JSONDict], JSONDict, Optional[JSONDict]]:
    """Execute the cases, the probe-overhead pair, and the sweep summary.

    ``jobs`` overrides the worker count of cases pinned above 1 (the
    parallel sweep case); serial cases always stay serial so the baseline
    side of the speedup ratio is meaningful. ``resilience_factory``
    (when given) supplies a per-case journal/retry bundle, threaded into
    the sweep cases' executors. ``kernel`` filters the suite to one
    backend's cases (``"all"`` runs everything); the sweep summary is
    ``None`` when the filter drops the sweep pair.
    """
    cases: List[JSONDict] = []
    for case in SUITE:
        if kernel != "all" and case.kernel != kernel:
            continue
        case_jobs = case.jobs
        if jobs is not None and case.jobs > 1:
            case_jobs = jobs
        resilience = (
            resilience_factory(case.name) if resilience_factory is not None else None
        )
        _reset_peak_rss()
        start = time.perf_counter()
        grants, qos = run_case(case, quick=quick, jobs=case_jobs, resilience=resilience)
        elapsed = time.perf_counter() - start
        cases.append(
            {
                "name": case.name,
                "description": case.description,
                "kernel": case.kernel,
                "horizon": case.quick_horizon if quick else case.horizon,
                "wall_time_s": round(elapsed, 4),
                "grants": grants,
                "grants_per_sec": round(grants / elapsed, 1) if elapsed > 0 else 0.0,
                "peak_rss_kb": _peak_rss_kb(),
                "qos": {k: round(v, 6) for k, v in qos.items()},
            }
        )
    # Probe overhead: the same case with no probe (the disabled path every
    # production run takes) vs. with a CountingProbe attached. Best of 3
    # each, interleaved, so one scheduler hiccup cannot fake a regression
    # (or an improvement) in a sub-second measurement.
    disabled = min(
        _timed(lambda: run_case(OVERHEAD_CASE, quick=quick, probe=None))
        for _ in range(3)
    )
    enabled = min(
        _timed(lambda: run_case(OVERHEAD_CASE, quick=quick, probe=CountingProbe()))
        for _ in range(3)
    )
    overhead = {
        "case": OVERHEAD_CASE.name,
        "disabled_wall_s": round(disabled, 4),
        "enabled_wall_s": round(enabled, 4),
        "enabled_overhead_pct": round(100.0 * (enabled - disabled) / disabled, 2),
    }
    return cases, overhead, _sweep_summary(cases)


def _timed(fn: "Callable[[], object]") -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _kernel_speedups(cases: List[JSONDict]) -> List[JSONDict]:
    """Array-vs-event mirror pairs: speedup plus the parity check.

    Every suite case declaring a ``baseline`` mirrors an event-kernel
    case with the identical config/workload/seed/horizon, so the two runs
    must produce the same grant count and qos deltas (``results_match``
    is the bit-identical-parity contract surfacing in the perf report).
    ``cpu_count`` is recorded because numpy batching is a single-core
    speedup — it should hold even on a 1-CPU container, unlike the
    multiprocessing sweep ratio.
    """
    by_name = {case["name"]: case for case in cases}
    cpu_count = os.cpu_count() or 1
    entries: List[JSONDict] = []
    for case in SUITE:
        if case.baseline is None:
            continue
        mirror = by_name.get(case.name)
        base = by_name.get(case.baseline)
        if mirror is None or base is None:
            continue  # filtered out by --kernel
        entries.append(
            {
                "case": case.name,
                "baseline": case.baseline,
                "kernel": case.kernel,
                "baseline_wall_s": base["wall_time_s"],
                "case_wall_s": mirror["wall_time_s"],
                "baseline_grants_per_sec": base["grants_per_sec"],
                "case_grants_per_sec": mirror["grants_per_sec"],
                "speedup": round(base["wall_time_s"] / mirror["wall_time_s"], 3),
                "results_match": (
                    mirror["grants"] == base["grants"]
                    and mirror["qos"] == base["qos"]
                ),
                "cpu_count": cpu_count,
            }
        )
    return entries


def _sweep_summary(cases: List[JSONDict]) -> Optional[JSONDict]:
    """Serial-vs-parallel sweep pair: speedup and result-identity check.

    ``results_match`` is a hard contract at any core count. The speedup is
    only an *expectation* when the machine actually has more than one core
    (``speedup_expected``); a single-core container running the parallel
    case measures pure multiprocessing overhead, and recording that as a
    regression-worthy "speedup" would be dishonest. Returns ``None`` when
    a ``--kernel`` filter dropped either half of the pair.
    """
    by_name = {case["name"]: case for case in cases}
    if SWEEP_SERIAL_CASE not in by_name or SWEEP_PARALLEL_CASE not in by_name:
        return None
    serial = by_name[SWEEP_SERIAL_CASE]
    parallel = by_name[SWEEP_PARALLEL_CASE]
    cpu_count = os.cpu_count() or 1

    def payload(case: JSONDict) -> JSONDict:
        qos = dict(case["qos"])
        qos.pop("jobs", None)  # the one field allowed to differ
        qos["grants"] = case["grants"]
        return qos

    return {
        "serial_case": SWEEP_SERIAL_CASE,
        "parallel_case": SWEEP_PARALLEL_CASE,
        "serial_wall_s": serial["wall_time_s"],
        "parallel_wall_s": parallel["wall_time_s"],
        "speedup": round(serial["wall_time_s"] / parallel["wall_time_s"], 3),
        "jobs": int(parallel["qos"].get("jobs", 0)),
        "cpu_count": cpu_count,
        "speedup_expected": cpu_count > 1,
        "results_match": payload(serial) == payload(parallel),
    }


def _catalog_cache(quick: bool) -> JSONDict:
    """Cold-vs-warm run-catalog timing on the fig4 sweep case.

    Runs the serial sweep case twice against one throwaway catalog: the
    cold pass computes and catalogues every point, the warm pass must
    serve every point as a verified cache hit. The report carries the
    hit rate (a warm pass below 1.0 means the cache-key contract broke)
    and the warm/cold wall ratio — the headline number for what
    ``--catalog`` / ``repro-serve`` buys a resubmitted sweep.
    """
    case = next(c for c in SUITE if c.name == SWEEP_SERIAL_CASE)
    with tempfile.TemporaryDirectory(prefix="repro-bench-catalog-") as tmp:
        path = Path(tmp) / "bench.catalog"
        cold_probe = CountingProbe()
        with RunCatalog(path) as catalog:
            cold_result: List[Tuple[int, Dict[str, float]]] = []
            options = ResilienceOptions(catalog=catalog, probe=cold_probe)
            cold = _timed(
                lambda: cold_result.append(
                    run_case(case, quick=quick, resilience=options)
                )
            )
        warm_probe = CountingProbe()
        with RunCatalog(path) as catalog:
            warm_result: List[Tuple[int, Dict[str, float]]] = []
            options = ResilienceOptions(catalog=catalog, probe=warm_probe)
            warm = _timed(
                lambda: warm_result.append(
                    run_case(case, quick=quick, resilience=options)
                )
            )
    points = int(cold_probe.value("catalog.appends"))
    hits = int(warm_probe.value("catalog.hits"))
    return {
        "case": case.name,
        "cold_wall_s": round(cold, 4),
        "warm_wall_s": round(warm, 4),
        "points": points,
        "warm_hits": hits,
        "hit_rate": round(hits / points, 4) if points else 0.0,
        "warm_speedup": round(cold / warm, 3) if warm > 0 else 0.0,
        "results_match": cold_result == warm_result,
    }


def _find_baseline(output: Path) -> Optional[Path]:
    """Newest BENCH_<n>.json next to ``output``, excluding ``output`` itself."""
    candidates = []
    for path in output.parent.glob("BENCH_*.json"):
        match = _BENCH_NAME.match(path.name)
        if match and path.resolve() != output.resolve():
            candidates.append((int(match.group(1)), path))
    if not candidates:
        return None
    return max(candidates)[1]


def _compare(
    current: JSONDict, baseline: JSONDict, threshold: float
) -> Tuple[List[str], List[str]]:
    """Return (regressions, notes) comparing wall times case-by-case."""
    regressions: List[str] = []
    notes: List[str] = []
    if baseline["suite"] != current["suite"]:
        notes.append(
            f"baseline suite {baseline['suite']!r} != current "
            f"{current['suite']!r}; wall times not comparable — skipping"
        )
        return regressions, notes
    by_name = {case["name"]: case for case in baseline["cases"]}
    for case in current["cases"]:
        base = by_name.get(case["name"])
        if base is None:
            notes.append(f"{case['name']}: new case, no baseline")
            continue
        if base["horizon"] != case["horizon"]:
            notes.append(f"{case['name']}: horizon changed, not comparable")
            continue
        ratio = case["wall_time_s"] / base["wall_time_s"]
        delta_pct = 100.0 * (ratio - 1.0)
        notes.append(
            f"{case['name']}: {base['wall_time_s']:.3f}s -> "
            f"{case['wall_time_s']:.3f}s ({delta_pct:+.1f}%)"
        )
        if ratio > 1.0 + threshold:
            regressions.append(
                f"{case['name']} regressed {delta_pct:.1f}% "
                f"(> {100 * threshold:.0f}% threshold)"
            )
    return regressions, notes


def main(argv: "list[str] | None" = None) -> int:
    """Entry point for the ``repro-bench`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the pinned kernel benchmark suite and gate regressions",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short horizons (CI smoke); only comparable to --quick baselines",
    )
    parser.add_argument(
        "--output", metavar="FILE", default="BENCH_6.json",
        help="where to write the report (default: BENCH_6.json)",
    )
    parser.add_argument(
        "--kernel", choices=["event", "flit", "array", "all"], default="all",
        metavar="KERNEL",
        help="only run cases of this simulation backend (event, flit, "
        "array; default: all). Filtering out the sweep pair drops the "
        "parallel-sweep summary from the report",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the parallel sweep case (default: the "
        "case's pinned count; serial cases are never parallelized)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE|auto", default="auto",
        help="previous BENCH_*.json to compare against; 'auto' picks the "
        "newest one next to --output; 'none' disables comparison",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.3, metavar="FRACTION",
        help="wall-time regression tolerance per case (default: 0.3 = 30%%)",
    )
    resilience_group = parser.add_argument_group(
        "resilience",
        "journaling/retry/salvage for the sweep cases "
        "(see docs/PARALLELISM.md); single-run cases are unaffected",
    )
    resilience_group.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a failed sweep point up to N times with deterministic "
        "seeded-jitter backoff (default: 0)",
    )
    resilience_group.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry a sweep point running longer than this "
        "(parallel sweep cases only; default: no timeout)",
    )
    resilience_group.add_argument(
        "--on-failure",
        choices=[policy.value for policy in FailurePolicy],
        default=FailurePolicy.FAIL_FAST.value,
        help="fail-fast aborts on the first exhausted point (default); "
        "salvage records the hole, keeps going, and exits 3",
    )
    resilience_group.add_argument(
        "--journal", metavar="FILE", default=None,
        help="checkpoint each completed sweep point; every case journals to "
        "its own FILE.<case-name> so the serial/parallel pair cannot share "
        "checkpoints and fake the speedup",
    )
    resilience_group.add_argument(
        "--resume", metavar="FILE", default=None,
        help="resume from a prior --journal FILE prefix: per-case journals "
        "that exist are restored, missing ones start fresh",
    )
    resilience_group.add_argument(
        "--catalog", metavar="FILE", default=None,
        help="durable result cache for the sweep cases; every case uses its "
        "own FILE.<case-name> so the serial/parallel pair cannot share "
        "cached points and fake the speedup (see docs/SERVICE.md)",
    )
    resilience_group.add_argument(
        "--serve-url", metavar="HOST:PORT", default=None,
        help="ship the sweep cases to a running repro-serve daemon instead "
        "of executing locally (see docs/SERVICE.md)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error(f"--threshold must be >= 0, got {args.threshold}")
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.journal is not None and args.resume is not None:
        parser.error("--journal and --resume are mutually exclusive")

    resilience_requested = (
        args.retries > 0
        or args.point_timeout is not None
        or args.on_failure != FailurePolicy.FAIL_FAST.value
        or args.journal is not None
        or args.resume is not None
        or args.catalog is not None
        or args.serve_url is not None
    )
    created_options: List[ResilienceOptions] = []
    created_catalogs: List[RunCatalog] = []
    factory: Optional[ResilienceFactory] = None
    if resilience_requested:
        try:
            retry = RetryPolicy(retries=args.retries, point_timeout=args.point_timeout)
        except ConfigError as exc:
            print(f"repro-bench: {exc}", file=sys.stderr)
            return 2
        policy = FailurePolicy(args.on_failure)
        journal_base = args.journal if args.journal is not None else args.resume

        def _make_options(case_name: str) -> ResilienceOptions:
            journal = None
            if journal_base is not None:
                case_path = Path(f"{journal_base}.{case_name}")
                journal = RunJournal(
                    case_path,
                    resume=args.resume is not None and case_path.exists(),
                )
            catalog = None
            if args.catalog is not None:
                # Per-case catalogs for the same reason as per-case
                # journals: the serial/parallel pair runs identical
                # points, and a shared cache would fake the speedup.
                catalog = RunCatalog(f"{args.catalog}.{case_name}")
                created_catalogs.append(catalog)
            options = ResilienceOptions(
                retry=retry, on_failure=policy, journal=journal,
                catalog=catalog, serve_url=args.serve_url,
            )
            created_options.append(options)
            return options

        factory = _make_options

    try:
        cases, overhead, sweep = _run_suite(
            args.quick, jobs=args.jobs, resilience_factory=factory,
            kernel=args.kernel,
        )
    except SweepInterrupted as exc:
        print(f"repro-bench: interrupted — {exc}", file=sys.stderr)
        for options in created_options:
            for line in options.summary_lines():
                print(f"  {line}", file=sys.stderr)
        return 130
    finally:
        for catalog in created_catalogs:
            catalog.close()
    speedups = _kernel_speedups(cases)
    catalog_cache = _catalog_cache(args.quick) if args.kernel == "all" else None
    document: JSONDict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "cases": cases,
        "probe_overhead": overhead,
        "kernel_speedup": speedups,
    }
    if sweep is not None:
        document["parallel_sweep"] = sweep
    if catalog_cache is not None:
        document["catalog_cache"] = catalog_cache
    outcomes = [
        outcome for options in created_options for outcome in options.outcomes
    ]
    if outcomes:
        document["resilience"] = [outcome.to_dict() for outcome in outcomes]
    validate_bench_document(document)

    output = Path(args.output)
    atomic_write_json(output, document)
    for case in cases:
        print(
            f"{case['name']:<20} {case['wall_time_s']:>8.3f}s "
            f"{case['grants_per_sec']:>12.0f} grants/s  rss {case['peak_rss_kb']} KiB"
        )
    print(
        f"probe overhead ({overhead['case']}): disabled "
        f"{overhead['disabled_wall_s']:.3f}s, enabled {overhead['enabled_wall_s']:.3f}s "
        f"({overhead['enabled_overhead_pct']:+.1f}%)"
    )
    for entry in speedups:
        print(
            f"kernel speedup {entry['case']} vs {entry['baseline']}: "
            f"{entry['baseline_wall_s']:.3f}s -> {entry['case_wall_s']:.3f}s "
            f"({entry['speedup']:.2f}x), results "
            f"{'identical' if entry['results_match'] else 'DIVERGED'}"
        )
    if sweep is not None:
        speedup_note = (
            f"-> {sweep['speedup']:.2f}x"
            if sweep["speedup_expected"]
            else f"-> {sweep['speedup']:.2f}x (single core: speedup not expected, "
            "measuring fan-out overhead only)"
        )
        print(
            f"parallel sweep (jobs={sweep['jobs']}, cpus={sweep['cpu_count']}): serial "
            f"{sweep['serial_wall_s']:.3f}s, parallel {sweep['parallel_wall_s']:.3f}s "
            f"{speedup_note}, results "
            f"{'identical' if sweep['results_match'] else 'DIVERGED'}"
        )
    if catalog_cache is not None:
        print(
            f"catalog cache ({catalog_cache['case']}): cold "
            f"{catalog_cache['cold_wall_s']:.3f}s, warm "
            f"{catalog_cache['warm_wall_s']:.3f}s "
            f"({catalog_cache['warm_speedup']:.1f}x), "
            f"{catalog_cache['warm_hits']}/{catalog_cache['points']} hits "
            f"({100.0 * catalog_cache['hit_rate']:.0f}%), results "
            f"{'identical' if catalog_cache['results_match'] else 'DIVERGED'}"
        )
    if outcomes:
        print("resilience:")
        for options in created_options:
            for line in options.summary_lines():
                print(f"  {line}")
    print(f"wrote {output}")
    mismatched = [e for e in speedups if not e["results_match"]]
    for entry in mismatched:
        print(
            f"REGRESSION: {entry['case']} diverged from {entry['baseline']} — "
            "kernel parity contract violated",
            file=sys.stderr,
        )
    if mismatched:
        return 1
    if sweep is not None and not sweep["results_match"]:
        print(
            "REGRESSION: parallel sweep results diverged from serial — "
            "determinism contract violated",
            file=sys.stderr,
        )
        return 1
    if catalog_cache is not None and (
        not catalog_cache["results_match"] or catalog_cache["hit_rate"] < 1.0
    ):
        print(
            "REGRESSION: warm catalog run diverged from cold "
            f"(hit rate {catalog_cache['hit_rate']:.2f}) — "
            "cache-key contract violated",
            file=sys.stderr,
        )
        return 1
    if any(options.failed for options in created_options):
        print(
            "repro-bench: salvage left failed sweep points (see resilience "
            "summary); resume with --resume to fill the holes",
            file=sys.stderr,
        )
        return 3

    if args.baseline == "none":
        return 0
    if args.baseline == "auto":
        baseline_path = _find_baseline(output)
        if baseline_path is None:
            print("no baseline BENCH_*.json found; skipping comparison")
            return 0
    else:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"baseline {baseline_path} not found", file=sys.stderr)
            return 2
    try:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        validate_bench_document(baseline)
    except (json.JSONDecodeError, ConfigError) as exc:
        print(f"invalid baseline {baseline_path}: {exc}", file=sys.stderr)
        return 2

    regressions, notes = _compare(document, baseline, args.threshold)
    print(f"comparison vs {baseline_path}:")
    for note in notes:
        print(f"  {note}")
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        return 1
    print("no wall-time regressions")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
