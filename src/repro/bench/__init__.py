"""The ``repro-bench`` regression harness.

Runs a pinned suite of kernel workloads (:mod:`repro.bench.suite`), emits a
``BENCH_*.json`` perf report (wall time, grants/sec, peak RSS, selected QoS
deltas, probe overhead), and compares it against a previous report with a
configurable wall-time regression threshold (:mod:`repro.bench.cli`). The
pytest-benchmark wrapper in ``benchmarks/bench_kernel_suite.py`` reuses the
same suite, so interactive and CI measurements come from identical
workloads. See ``docs/OBSERVABILITY.md``.
"""

from .suite import BenchCase, SUITE, run_case

__all__ = ["BenchCase", "SUITE", "run_case"]
