"""Pinned benchmark workloads covering every kernel.

Each :class:`BenchCase` fixes a configuration, workload, seed, and horizon
(a full and a ``--quick`` variant), so two reports are comparable
case-by-case: a wall-time difference means the *code* changed speed, not
the experiment. Cases return the grant count (for grants/sec) plus a small
dict of QoS deltas — numbers that should stay put while we optimise, so a
perf win that silently breaks arbitration shows up in the same report.

Cases deliberately exercise the measurement paths this harness exists to
guard: the GL-policed case reports kernel-counted throttle events, the
hotspot case reports the sustained-minimum windowed rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..config import GLPolicerConfig, QoSConfig, SwitchConfig
from ..multiswitch.simulator import ComposedFlow, MultiStageSimulation
from ..multiswitch.topology import ClosTopology
from ..obs.probe import Probe
from ..resilience import ResilienceOptions
from ..switch.flit_kernel import FlitLevelSimulation
from ..switch.simulator import Simulation
from ..traffic.flows import Workload, be_flow, gb_flow, gl_flow
from ..traffic.patterns import fig4_workload, uniform_random_workload
from ..types import FlowId, TrafficClass

#: What one case hands back: (grants, qos deltas).
CaseResult = Tuple[int, Dict[str, float]]

#: A case body: (horizon, probe, jobs, resilience) -> CaseResult.
#: ``horizon`` is per simulation (per sweep point for sweep cases);
#: single-run cases ignore ``jobs`` and ``resilience`` (only sweep cases
#: dispatch through repro.parallel, the only consumer of resilience).
CaseFn = Callable[
    [int, Optional[Probe], int, Optional[ResilienceOptions]], CaseResult
]


@dataclass(frozen=True)
class BenchCase:
    """One pinned workload of the regression suite.

    Attributes:
        name: stable identifier (reports are joined on it).
        description: one-line summary for the report.
        horizon: cycles for the full suite.
        quick_horizon: cycles for ``--quick`` (CI smoke).
        fn: the case body.
        jobs: worker processes the case is pinned to (sweep cases pin
            1 and 4 so the serial/parallel pair is tracked side by side;
            ``run_case(jobs=...)`` can override).
        kernel: which simulation backend the case exercises (report
            metadata; the body already constructs the right kernel).
        baseline: name of the event-kernel case this one mirrors
            (same config/workload/seed/horizon). The bench CLI pairs the
            two into a ``kernel_speedup`` entry and asserts their grant
            counts and qos deltas match — the parity contract, enforced
            in the perf report itself.
    """

    name: str
    description: str
    horizon: int
    quick_horizon: int
    fn: CaseFn
    jobs: int = 1
    kernel: str = "event"
    baseline: Optional[str] = None


def _paper_config(radix: int = 8, **overrides: object) -> SwitchConfig:
    defaults: Dict[str, object] = dict(
        radix=radix,
        channel_bits=128,
        gb_buffer_flits=16,
        be_buffer_flits=16,
        gl_buffer_flits=16,
        qos=QoSConfig(sig_bits=4, frac_bits=8),
        gl_policer=GLPolicerConfig(reserved_rate=0.0),
    )
    defaults.update(overrides)
    return SwitchConfig(**defaults)  # type: ignore[arg-type]


def _fast_uniform(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Event kernel, radix 8, uniform GB Bernoulli load at 70%."""
    config = _paper_config()
    workload = uniform_random_workload(8, inject_rate=0.7, reserved_share=0.9)
    result = Simulation(config, workload, seed=1, probe=probe).run(horizon)
    total = sum(result.output_utilization.values()) / config.radix
    return result.grants, {"mean_utilization": total}


def _fast_hotspot(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Event kernel, Fig. 4 hotspot: 8 saturating GB flows on one output."""
    config = _paper_config()
    workload = fig4_workload(inject_rate=None)
    result = Simulation(config, workload, seed=1, probe=probe).run(horizon)
    # The 40%-reservation flow must sustain its share in every interior
    # window — the windowed-rate guarantee Fig. 4(b) rests on.
    big = result.stats.flow_stats(FlowId(0, 0, TrafficClass.GB))
    sustained = big.windowed.sustained_minimum()
    return result.grants, {
        "flow0_accepted": result.accepted_rate(FlowId(0, 0, TrafficClass.GB)),
        "flow0_sustained_min": sustained,
    }


def _fast_gl_policed(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Event kernel: saturating GL aggressor vs. reserved GB, tight window."""
    config = _paper_config(
        radix=4,
        channel_bits=64,
        gl_policer=GLPolicerConfig(reserved_rate=0.05, burst_window=64),
    )
    workload = Workload(name="gl-policed")
    workload.add(gl_flow(0, 0, packet_length=4, inject_rate=None))
    workload.add(gb_flow(1, 0, reserved_rate=0.5, inject_rate=None))
    workload.add(be_flow(2, 0, inject_rate=0.2))
    result = Simulation(config, workload, seed=1, probe=probe).run(horizon)
    throttles = sum(result.gl_throttle_events.values())
    return result.grants, {
        "gl_throttle_events": float(throttles),
        "gb_accepted": result.accepted_rate(FlowId(1, 0, TrafficClass.GB)),
    }


def _fast_uniform_array(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Array-kernel twin of ``fast-uniform-gb``: same config/workload/seed."""
    from ..switch.array_kernel import ArraySimulation

    config = _paper_config()
    workload = uniform_random_workload(8, inject_rate=0.7, reserved_share=0.9)
    result = ArraySimulation(config, workload, seed=1, probe=probe).run(horizon)
    total = sum(result.output_utilization.values()) / config.radix
    return result.grants, {"mean_utilization": total}


def _fast_hotspot_array(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Array-kernel twin of ``fast-hotspot-fig4``: same config/workload/seed."""
    from ..switch.array_kernel import ArraySimulation

    config = _paper_config()
    workload = fig4_workload(inject_rate=None)
    result = ArraySimulation(config, workload, seed=1, probe=probe).run(horizon)
    big = result.stats.flow_stats(FlowId(0, 0, TrafficClass.GB))
    sustained = big.windowed.sustained_minimum()
    return result.grants, {
        "flow0_accepted": result.accepted_rate(FlowId(0, 0, TrafficClass.GB)),
        "flow0_sustained_min": sustained,
    }


def _r128_workload() -> Workload:
    """128 saturating GB flows funneled onto 8 hot outputs (16 per output)."""
    workload = Workload(name="hotspot-r128")
    for src in range(128):
        workload.add(gb_flow(src, src % 8, reserved_rate=0.05, inject_rate=None))
    return workload


def _r128_hotspot(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Event kernel at radix 128 — the regime the array kernel targets.

    At radix 8 both kernels spend most of each grant in shared per-packet
    bookkeeping (queue pops, stats, channel scheduling), which caps any
    arbitration-only speedup near 2x (Amdahl). At radix 128 the event
    kernel's per-wake arbitration scan is O(radix^2) Python, while the
    array kernel's is a handful of numpy row operations — this pair is
    where the ``kernel_speedup`` headline comes from.
    """
    config = _paper_config(radix=128)
    result = Simulation(config, _r128_workload(), seed=1, probe=probe).run(horizon)
    return result.grants, {
        "flow0_accepted": result.accepted_rate(FlowId(0, 0, TrafficClass.GB)),
    }


def _r128_hotspot_array(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Array-kernel twin of ``hotspot-r128``: same config/workload/seed."""
    from ..switch.array_kernel import ArraySimulation

    config = _paper_config(radix=128)
    result = ArraySimulation(
        config, _r128_workload(), seed=1, probe=probe
    ).run(horizon)
    return result.grants, {
        "flow0_accepted": result.accepted_rate(FlowId(0, 0, TrafficClass.GB)),
    }


def _flit_parity(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Flit kernel, radix 4, scheduled GB load (the 10-50x slower engine)."""
    config = _paper_config(radix=4, channel_bits=64)
    workload = uniform_random_workload(4, inject_rate=0.5, reserved_share=0.8)
    result = FlitLevelSimulation(config, workload, seed=1, probe=probe).run(horizon)
    total = sum(result.output_utilization.values()) / config.radix
    return result.grants, {"mean_utilization": total}


def _multiswitch(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Two-stage Clos, 4 groups x 4 hosts, all-to-all-groups GB traffic."""
    topo = ClosTopology(groups=4, hosts_per_group=4)
    flows = []
    for src in range(16):
        dst = (src * 5 + 3) % 16
        flows.append(ComposedFlow(src=src, dst=dst, rate=0.4, inject_rate=0.3))
    sim = MultiStageSimulation(topo, flows, seed=1, probe=probe)
    result = sim.run(horizon)
    grants = result.grants_ingress + result.grants_egress
    return grants, {
        "hol_blocked_cycles": float(result.hol_blocked_cycles),
        "egress_grants": float(result.grants_egress),
    }


def _faulted_hotspot(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Event kernel, Fig. 4 hotspot with an active behavioral fault plan.

    Guards the fault-injection hot paths: the keyed-hash draws and the
    stall/dead masking run inside the arbitration loop, so a slowdown
    here that ``fast-hotspot-fig4`` does not show is fault-hook overhead.
    The ``faults.*`` probe counters double as behavioral pins — a changed
    drop/dup count means the draw stream (not just speed) changed.
    """
    from ..faults import (
        FaultPlan,
        crosspoint_dead,
        input_stall,
        packet_drop,
        packet_dup,
    )
    from ..obs.probe import CountingProbe

    config = _paper_config()
    workload = fig4_workload(inject_rate=None)
    plan = FaultPlan(
        seed=1,
        faults=(
            input_stall(1, start=horizon // 4, duration=horizon // 8),
            crosspoint_dead(2, 0),
            packet_drop(0.05, output=0),
            packet_dup(0.02, output=0),
        ),
    )
    counting = probe if isinstance(probe, CountingProbe) else CountingProbe()
    result = Simulation(
        config, workload, seed=1, probe=counting, fault_plan=plan
    ).run(horizon)
    counters = counting.counters
    return result.grants, {
        "fault_drops": float(counters.get("faults.packet_drops", 0)),
        "fault_dups": float(counters.get("faults.packet_dups", 0)),
        "fault_stall_masks": float(counters.get("faults.stall_masked", 0)),
        "flow0_accepted": result.accepted_rate(FlowId(0, 0, TrafficClass.GB)),
    }


#: Injection rates for the Fig. 4 sweep pair (a fast subset of the figure).
_SWEEP_RATES = (0.05, 0.08, 0.10, 0.15, 0.20, 0.40, 1.0)


def _fig4_sweep(
    horizon: int,
    probe: Optional[Probe],
    jobs: int = 1,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Fast Fig. 4 SSVC sweep through repro.parallel (7 rate points).

    The serial/parallel case pair shares this body; only ``jobs`` differs,
    so their qos deltas must match exactly (the executor's determinism
    contract) while the wall times expose the fan-out speedup.
    """
    del probe  # sweep wall time is the measurement; kernels run bare
    from ..experiments.fig4_bandwidth import run_fig4

    result = run_fig4(
        "ssvc", _SWEEP_RATES, horizon=horizon, jobs=jobs, resilience=resilience
    )
    grants = sum(result.grants.values())
    shares = result.saturation_shares
    return grants, {
        "sweep_points": float(len(_SWEEP_RATES)),
        "jobs": float(jobs),
        "flow0_at_saturation": shares[0],
        "total_at_saturation": result.total_throughput[1.0],
    }


#: The pinned suite, in report order.
SUITE: Tuple[BenchCase, ...] = (
    BenchCase(
        name="fast-uniform-gb",
        description="event kernel, radix 8, uniform GB Bernoulli 0.7",
        horizon=60_000,
        quick_horizon=8_000,
        fn=_fast_uniform,
    ),
    BenchCase(
        name="fast-uniform-gb-array",
        description="array kernel, radix 8, uniform GB Bernoulli 0.7",
        horizon=60_000,
        quick_horizon=8_000,
        fn=_fast_uniform_array,
        kernel="array",
        baseline="fast-uniform-gb",
    ),
    BenchCase(
        name="fast-hotspot-fig4",
        description="event kernel, Fig. 4 hotspot, saturating GB",
        horizon=60_000,
        quick_horizon=10_000,
        fn=_fast_hotspot,
    ),
    BenchCase(
        name="fast-hotspot-fig4-array",
        description="array kernel, Fig. 4 hotspot, saturating GB",
        horizon=60_000,
        quick_horizon=10_000,
        fn=_fast_hotspot_array,
        kernel="array",
        baseline="fast-hotspot-fig4",
    ),
    BenchCase(
        name="fast-gl-policed",
        description="event kernel, saturating GL vs. GB, tight burst window",
        horizon=40_000,
        quick_horizon=8_000,
        fn=_fast_gl_policed,
    ),
    BenchCase(
        name="fast-hotspot-faulted",
        description="event kernel, Fig. 4 hotspot with active fault plan",
        horizon=60_000,
        quick_horizon=10_000,
        fn=_faulted_hotspot,
    ),
    BenchCase(
        name="hotspot-r128",
        description="event kernel, radix 128, 128 saturating GB flows",
        horizon=4_000,
        quick_horizon=2_000,
        fn=_r128_hotspot,
    ),
    BenchCase(
        name="hotspot-r128-array",
        description="array kernel, radix 128, 128 saturating GB flows",
        horizon=4_000,
        quick_horizon=2_000,
        fn=_r128_hotspot_array,
        kernel="array",
        baseline="hotspot-r128",
    ),
    BenchCase(
        name="flit-uniform-gb",
        description="flit kernel, radix 4, uniform GB Bernoulli 0.5",
        horizon=12_000,
        quick_horizon=3_000,
        fn=_flit_parity,
        kernel="flit",
    ),
    BenchCase(
        name="multiswitch-clos",
        description="two-stage Clos 4x4, permuted GB flows",
        horizon=30_000,
        quick_horizon=6_000,
        fn=_multiswitch,
    ),
    BenchCase(
        name="fig4-sweep-serial",
        description="fast Fig. 4 SSVC sweep, 7 points, serial executor",
        horizon=20_000,
        quick_horizon=2_500,
        fn=_fig4_sweep,
        jobs=1,
    ),
    BenchCase(
        name="fig4-sweep-parallel",
        description="fast Fig. 4 SSVC sweep, 7 points, 4 worker processes",
        horizon=20_000,
        quick_horizon=2_500,
        fn=_fig4_sweep,
        jobs=4,
    ),
)

#: Case used for the probe-overhead measurement (disabled vs. enabled).
OVERHEAD_CASE = SUITE[0]

#: The sweep pair whose wall-time ratio is the parallel-speedup metric.
SWEEP_SERIAL_CASE = "fig4-sweep-serial"
SWEEP_PARALLEL_CASE = "fig4-sweep-parallel"


def run_case(
    case: BenchCase,
    quick: bool = False,
    probe: Optional[Probe] = None,
    jobs: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> CaseResult:
    """Execute one case at the requested fidelity.

    Args:
        case: the pinned case.
        quick: use the CI-smoke horizon.
        probe: optional probe threaded into the kernel.
        jobs: override of the case's pinned worker count.
        resilience: journaling/retry/salvage bundle for sweep cases
            (single-run cases ignore it).
    """
    horizon = case.quick_horizon if quick else case.horizon
    return case.fn(horizon, probe, case.jobs if jobs is None else jobs, resilience)
