"""FaultInjector — the *when/whether* of fault injection (deterministic).

Probabilistic faults are decided by **stateless keyed hashing**, not by a
consumed RNG stream: each decision hashes ``(plan seed, spec index,
decision key)`` into a uniform draw in ``[0, 1)``. Decisions therefore
depend only on their key — never on how many decisions were made before,
in which order, or in which worker process — which is what makes the same
:class:`~repro.faults.plan.FaultPlan` bit-identical across the event and
flit kernels and at any ``--jobs`` fan-out (the event kernel evaluates far
fewer cycles than the flit kernel, so a shared stream would desynchronize
them immediately).

The injector is built per run by :func:`resolve_injector`; an absent or
empty plan resolves to ``None`` so the kernels' hot paths keep a single
``is not None`` guard (mirroring ``repro.obs.resolve_hooks``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Optional, Tuple

from .plan import FaultKind, FaultPlan, FaultSpec

_HASH_DENOMINATOR = float(2**64)


class FaultInjector:
    """Per-run fault decisions for one plan (stateless, shareable).

    All query methods are pure functions of ``(plan, arguments)``; the
    injector holds no mutable state, so the host kernel may consult it in
    any order without affecting outcomes.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._seed = plan.seed
        # Indexed views, built once. Spec indices key the hash draws, so a
        # spec's decisions are independent of its siblings.
        self._stalls: Dict[int, List[FaultSpec]] = {}
        self._dead: FrozenSet[Tuple[int, int]] = frozenset()
        self._flips: Dict[int, List[FaultSpec]] = {}
        self._drops: List[Tuple[int, FaultSpec]] = []
        self._dups: List[Tuple[int, FaultSpec]] = []
        self._stuck: List[Tuple[int, int]] = []
        self._leaks: List[Tuple[int, FaultSpec]] = []
        self._flaky_sense: Dict[int, List[Tuple[int, FaultSpec]]] = {}
        dead: List[Tuple[int, int]] = []
        for index, spec in enumerate(plan.faults):
            kind = spec.kind
            if kind is FaultKind.INPUT_STALL:
                assert spec.input_port is not None
                self._stalls.setdefault(spec.input_port, []).append(spec)
            elif kind is FaultKind.CROSSPOINT_DEAD:
                assert spec.input_port is not None and spec.output is not None
                dead.append((spec.input_port, spec.output))
            elif kind is FaultKind.COUNTER_BITFLIP:
                assert spec.at_cycle is not None
                self._flips.setdefault(spec.at_cycle, []).append(spec)
            elif kind is FaultKind.PACKET_DROP:
                self._drops.append((index, spec))
            elif kind is FaultKind.PACKET_DUP:
                self._dups.append((index, spec))
            elif kind is FaultKind.BITLINE_STUCK:
                assert spec.lane is not None and spec.position is not None
                self._stuck.append((spec.lane, spec.position))
            elif kind is FaultKind.BITLINE_LEAK:
                self._leaks.append((index, spec))
            elif kind is FaultKind.SENSE_FLAKY:
                assert spec.input_port is not None
                self._flaky_sense.setdefault(spec.input_port, []).append(
                    (index, spec)
                )
        self._dead = frozenset(dead)
        self.has_stalls = bool(self._stalls)
        self.has_dead = bool(self._dead)
        self.has_flips = bool(self._flips)
        self.has_drops = bool(self._drops)
        self.has_dups = bool(self._dups)
        self.has_circuit_faults = bool(
            self._stuck or self._leaks or self._flaky_sense
        )

    # ------------------------------------------------------------ hash draws

    def _draw(self, spec_index: int, *key: int) -> float:
        """Uniform draw in [0, 1) keyed by (seed, spec, decision key)."""
        payload = "%d:%d:%s" % (
            self._seed,
            spec_index,
            ":".join(str(k) for k in key),
        )
        digest = hashlib.blake2b(payload.encode("ascii"), digest_size=8).digest()
        return int.from_bytes(digest, "big") / _HASH_DENOMINATOR

    # ------------------------------------------------------ behavioral hooks

    def stalled(self, input_port: int, now: int) -> bool:
        """Is the input port stalled (cannot compete) at cycle ``now``?"""
        specs = self._stalls.get(input_port)
        if not specs:
            return False
        return any(spec.active(now) for spec in specs)

    def wake_cycles(self) -> Tuple[int, ...]:
        """Cycles an event-driven kernel must wake at: stall boundaries
        (so stalled work resumes exactly when the flit kernel would resume
        it) and bit-flip firing cycles (so flips apply at their exact
        cycle). Sorted, deduplicated."""
        cycles = set()
        for specs in self._stalls.values():
            for spec in specs:
                cycles.add(spec.start)
                if spec.end is not None:
                    cycles.add(spec.end)
        cycles.update(self._flips)
        return tuple(sorted(cycles))

    def crosspoint_dead(self, input_port: int, output: int) -> bool:
        """Can the (input, output) crosspoint never raise a request?"""
        return (input_port, output) in self._dead

    def counter_flips_at(self, now: int) -> Tuple[FaultSpec, ...]:
        """Bit-flip specs that fire exactly at cycle ``now``."""
        specs = self._flips.get(now)
        return tuple(specs) if specs else ()

    def drop_delivery(self, output: int, packet_id: int, now: int) -> bool:
        """Should this packet's delivery be lost? Keyed by packet id."""
        for index, spec in self._drops:
            if spec.output is not None and spec.output != output:
                continue
            if not spec.active(now):
                continue
            if self._draw(index, packet_id) < spec.probability:
                return True
        return False

    def duplicate_delivery(self, output: int, packet_id: int, now: int) -> bool:
        """Should this packet's delivery be accounted twice?"""
        for index, spec in self._dups:
            if spec.output is not None and spec.output != output:
                continue
            if not spec.active(now):
                continue
            if self._draw(index, packet_id) < spec.probability:
                return True
        return False

    # --------------------------------------------------------- circuit hooks

    def stuck_bitlines(self) -> Tuple[Tuple[int, int], ...]:
        """(lane, position) pairs that always read discharged."""
        return tuple(self._stuck)

    def leaky_discharges(self, arbitration_index: int) -> Tuple[Tuple[int, int], ...]:
        """(lane, position) pairs that leak during this arbitration."""
        leaked: List[Tuple[int, int]] = []
        for index, spec in self._leaks:
            assert spec.lane is not None and spec.position is not None
            if self._draw(index, arbitration_index) < spec.probability:
                leaked.append((spec.lane, spec.position))
        return tuple(leaked)

    def sense_flip(self, input_port: int, arbitration_index: int) -> bool:
        """Does this input's sense amp misread during this arbitration?"""
        specs = self._flaky_sense.get(input_port)
        if not specs:
            return False
        return any(
            self._draw(index, arbitration_index) < spec.probability
            for index, spec in specs
        )


def resolve_injector(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Build an injector, or ``None`` for an absent/empty plan.

    The ``None`` fast path guarantees that ``fault_plan=None`` and an
    empty ``FaultPlan()`` take exactly the same kernel code path —
    bit-identical results, near-zero overhead.
    """
    if plan is None or not plan:
        return None
    return FaultInjector(plan)
