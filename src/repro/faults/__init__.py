"""Deterministic fault injection for QoS resilience studies.

Public surface of the fault subsystem (import from here — ``repro-lint``
rule RL010 flags deep imports of the submodules):

- :class:`FaultPlan` / :class:`FaultSpec` / :class:`FaultKind` — seeded,
  picklable descriptions of *what* to inject.
- :class:`DegradationContract` / :data:`CONTRACTS` / :data:`GUARANTEES` —
  the declared blast radius of each fault kind.
- :class:`FaultInjector` / :func:`resolve_injector` — the deterministic
  *when/whether* decisions consumed by the kernels.
- Spec constructors: :func:`input_stall`, :func:`crosspoint_dead`,
  :func:`counter_bitflip`, :func:`packet_drop`, :func:`packet_dup`,
  :func:`bitline_stuck`, :func:`bitline_leak`, :func:`sense_flaky`.

See ``docs/FAULTS.md`` for the fault models and the guarantee-survival
matrix measured by ``repro-exp faults``.
"""

from .injector import FaultInjector, resolve_injector
from .plan import (
    CONTRACTS,
    GUARANTEES,
    DegradationContract,
    FaultKind,
    FaultPlan,
    FaultSpec,
    bitline_leak,
    bitline_stuck,
    counter_bitflip,
    crosspoint_dead,
    input_stall,
    packet_drop,
    packet_dup,
    sense_flaky,
)

__all__ = [
    "CONTRACTS",
    "GUARANTEES",
    "DegradationContract",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "bitline_leak",
    "bitline_stuck",
    "counter_bitflip",
    "crosspoint_dead",
    "input_stall",
    "packet_drop",
    "packet_dup",
    "resolve_injector",
    "sense_flaky",
]
