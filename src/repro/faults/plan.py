"""Seeded, picklable fault plans (the *what* of fault injection).

A :class:`FaultPlan` is a frozen value object: a seed plus a tuple of
:class:`FaultSpec` entries, each describing one paper-grounded fault model
(stuck/leaky bitline discharge, dead crosspoint, flaky sense-amp read,
auxVC counter bit-flip, dropped/duplicated packet delivery, transient
input-port stall). Plans carry no run state, so they pickle cleanly into
:mod:`repro.parallel` worker processes and hash/compare by value.

Every fault kind declares a :class:`DegradationContract` — whether its
injection surfaces as a loud ``raise`` (circuit-level faults break the
fabric's exactly-one-winner invariant and raise
:class:`~repro.errors.ArbitrationError`) or as graceful ``degrade``
behavior, and which QoS guarantees of the paper it may void. The
resilience experiment (``repro-exp faults``) measures those contracts; the
matrix lives in ``docs/FAULTS.md``.

The *when/whether* decisions live in
:class:`repro.faults.injector.FaultInjector`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Tuple

from ..errors import ConfigError

#: QoS guarantees a fault may void (see docs/FAULTS.md).
GUARANTEES: Tuple[str, ...] = ("reserved_rate", "gl_bound", "policer_containment")


class FaultKind(enum.Enum):
    """The supported fault models (paper-grounded; see docs/FAULTS.md)."""

    #: A bitline permanently reads discharged (manufacturing defect).
    BITLINE_STUCK = "bitline-stuck"
    #: A bitline leaks charge with some probability per arbitration.
    BITLINE_LEAK = "bitline-leak"
    #: An input's sense amp misreads its wire with some probability.
    SENSE_FLAKY = "sense-flaky"
    #: A crosspoint cannot raise requests: the (input, output) pair is dead.
    CROSSPOINT_DEAD = "crosspoint-dead"
    #: One bit of an auxVC/thermometer counter flips at a given cycle.
    COUNTER_BITFLIP = "counter-bitflip"
    #: A delivered packet's payload is lost (delivery not accounted).
    PACKET_DROP = "packet-drop"
    #: A delivered packet is accounted twice (duplicate delivery).
    PACKET_DUP = "packet-dup"
    #: An input port cannot compete for outputs during a cycle window.
    INPUT_STALL = "input-stall"


@dataclass(frozen=True)
class DegradationContract:
    """How a fault kind is allowed to surface.

    Attributes:
        mode: ``"raise"`` — the fault trips an invariant loudly
            (:class:`~repro.errors.ArbitrationError` /
            :class:`~repro.errors.CircuitError`); ``"degrade"`` — the
            simulation completes with degraded service.
        voids: which :data:`GUARANTEES` the fault may void while active.
    """

    mode: str
    voids: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "degrade"):
            raise ConfigError(f"contract mode must be raise|degrade, got {self.mode}")
        for name in self.voids:
            if name not in GUARANTEES:
                raise ConfigError(f"unknown guarantee {name!r} (know {GUARANTEES})")


#: Declared degradation contract per fault kind.
CONTRACTS: Mapping[FaultKind, DegradationContract] = {
    FaultKind.BITLINE_STUCK: DegradationContract("raise", ()),
    FaultKind.BITLINE_LEAK: DegradationContract("raise", ()),
    FaultKind.SENSE_FLAKY: DegradationContract("raise", ()),
    FaultKind.CROSSPOINT_DEAD: DegradationContract("degrade", ("reserved_rate",)),
    FaultKind.COUNTER_BITFLIP: DegradationContract("degrade", ("reserved_rate",)),
    FaultKind.PACKET_DROP: DegradationContract("degrade", ("reserved_rate", "gl_bound")),
    FaultKind.PACKET_DUP: DegradationContract("degrade", ("reserved_rate",)),
    FaultKind.INPUT_STALL: DegradationContract("degrade", ("reserved_rate", "gl_bound")),
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault instance: a kind plus its targeting/timing parameters.

    Field meaning depends on ``kind`` (validated on construction); prefer
    the module-level constructors (:func:`input_stall`,
    :func:`crosspoint_dead`, ...) over building specs by hand.

    Attributes:
        kind: the fault model.
        input_port: target input port / host index (kind-dependent).
        output: target output port / destination group (kind-dependent);
            ``None`` means "any output" for packet drop/dup.
        lane: target arbitration lane (bitline faults).
        position: target bitline position within the lane (bitline faults).
        bit: which counter bit to flip (``COUNTER_BITFLIP``).
        probability: per-decision Bernoulli probability in (0, 1].
        start: first cycle (inclusive) the fault is armed.
        end: first cycle (exclusive) the fault is disarmed; ``None`` means
            armed forever.
        at_cycle: exact firing cycle (``COUNTER_BITFLIP``).
    """

    kind: FaultKind
    input_port: Optional[int] = None
    output: Optional[int] = None
    lane: Optional[int] = None
    position: Optional[int] = None
    bit: int = 0
    probability: float = 1.0
    start: int = 0
    end: Optional[int] = None
    at_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ConfigError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.start < 0:
            raise ConfigError(f"start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ConfigError(f"end {self.end} must exceed start {self.start}")
        kind = self.kind
        if kind in (FaultKind.INPUT_STALL, FaultKind.SENSE_FLAKY):
            self._require_fields(input_port=self.input_port)
        elif kind in (FaultKind.CROSSPOINT_DEAD, FaultKind.COUNTER_BITFLIP):
            self._require_fields(input_port=self.input_port, output=self.output)
            if kind is FaultKind.COUNTER_BITFLIP:
                self._require_fields(at_cycle=self.at_cycle)
                if self.bit < 0:
                    raise ConfigError(f"bit must be >= 0, got {self.bit}")
        elif kind in (FaultKind.BITLINE_STUCK, FaultKind.BITLINE_LEAK):
            self._require_fields(lane=self.lane, position=self.position)
        # PACKET_DROP / PACKET_DUP need no mandatory target (output filters).

    def _require_fields(self, **fields_: Optional[int]) -> None:
        for name, value in fields_.items():
            if value is None:
                raise ConfigError(f"{self.kind.value} fault requires {name}")

    def active(self, now: int) -> bool:
        """Is the fault armed at cycle ``now``?"""
        return now >= self.start and (self.end is None or now < self.end)

    @property
    def contract(self) -> DegradationContract:
        """The kind's declared degradation contract."""
        return CONTRACTS[self.kind]


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of fault specs (frozen, picklable).

    The seed feeds the injector's keyed-hash draws, so the same plan gives
    bit-identical decisions in any kernel, at any ``--jobs`` count, in any
    evaluation order. An empty plan is falsy and injects nothing — runs
    with ``fault_plan=None`` and ``fault_plan=FaultPlan()`` are
    bit-identical (hash-verified in ``tests/test_faults_determinism.py``).
    """

    seed: int = 0
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def with_fault(self, spec: FaultSpec) -> "FaultPlan":
        """A new plan with ``spec`` appended (plans are immutable)."""
        return replace(self, faults=self.faults + (spec,))


# ------------------------------------------------------------- constructors


def input_stall(
    input_port: int, start: int, duration: int
) -> FaultSpec:
    """A transient input-port stall over ``[start, start + duration)``."""
    if duration <= 0:
        raise ConfigError(f"duration must be positive, got {duration}")
    return FaultSpec(
        kind=FaultKind.INPUT_STALL,
        input_port=input_port,
        start=start,
        end=start + duration,
    )


def crosspoint_dead(input_port: int, output: int) -> FaultSpec:
    """A dead crosspoint: ``input_port`` can never request ``output``."""
    return FaultSpec(
        kind=FaultKind.CROSSPOINT_DEAD, input_port=input_port, output=output
    )


def counter_bitflip(
    input_port: int, output: int, bit: int, at_cycle: int
) -> FaultSpec:
    """Flip counter bit ``bit`` of crosspoint ``(input, output)`` once."""
    return FaultSpec(
        kind=FaultKind.COUNTER_BITFLIP,
        input_port=input_port,
        output=output,
        bit=bit,
        at_cycle=at_cycle,
    )


def packet_drop(
    probability: float,
    output: Optional[int] = None,
    start: int = 0,
    end: Optional[int] = None,
) -> FaultSpec:
    """Drop delivered packets with ``probability`` (optional output filter)."""
    return FaultSpec(
        kind=FaultKind.PACKET_DROP,
        output=output,
        probability=probability,
        start=start,
        end=end,
    )


def packet_dup(
    probability: float,
    output: Optional[int] = None,
    start: int = 0,
    end: Optional[int] = None,
) -> FaultSpec:
    """Account delivered packets twice with ``probability``."""
    return FaultSpec(
        kind=FaultKind.PACKET_DUP,
        output=output,
        probability=probability,
        start=start,
        end=end,
    )


def bitline_stuck(lane: int, position: int) -> FaultSpec:
    """A bitline that always reads discharged."""
    return FaultSpec(kind=FaultKind.BITLINE_STUCK, lane=lane, position=position)


def bitline_leak(lane: int, position: int, probability: float) -> FaultSpec:
    """A bitline that leaks its precharge with ``probability``."""
    return FaultSpec(
        kind=FaultKind.BITLINE_LEAK,
        lane=lane,
        position=position,
        probability=probability,
    )


def sense_flaky(input_port: int, probability: float) -> FaultSpec:
    """A sense amp that misreads its selected wire with ``probability``."""
    return FaultSpec(
        kind=FaultKind.SENSE_FLAKY, input_port=input_port, probability=probability
    )
