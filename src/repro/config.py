"""Validated configuration objects for the switch, QoS logic, and policers.

These dataclasses are the single source of truth for hardware parameters:
the behavioral simulator, the wire-level circuit model, and the hardware
cost models (area/timing/storage) all consume the same ``SwitchConfig`` so
experiments cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .types import CounterMode


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class QoSConfig:
    """Parameters of the SSVC (Swizzle Switch Virtual Clock) logic.

    Attributes:
        sig_bits: number of most-significant auxVC bits compared during
            arbitration. The thermometer code has ``2**sig_bits`` levels,
            each mapped to one arbitration lane (paper Fig. 1). The paper's
            Fig. 4 experiment uses 4 significant bits.
        frac_bits: number of low-order auxVC bits below the compared range;
            one coarse level spans ``2**frac_bits`` cycles (the *quantum*).
        vtick_bits: width of the per-crosspoint Vtick register (Table 1
            uses 8 bits). Only used by the storage model and for validating
            that configured rates are representable.
        counter_mode: finite-counter management policy (paper Section 3.1).
    """

    sig_bits: int = 4
    frac_bits: int = 8
    vtick_bits: int = 8
    counter_mode: CounterMode = CounterMode.SUBTRACT

    def __post_init__(self) -> None:
        _require(1 <= self.sig_bits <= 16, f"sig_bits must be in [1, 16], got {self.sig_bits}")
        _require(0 <= self.frac_bits <= 24, f"frac_bits must be in [0, 24], got {self.frac_bits}")
        _require(1 <= self.vtick_bits <= 32, f"vtick_bits must be in [1, 32], got {self.vtick_bits}")
        _require(
            isinstance(self.counter_mode, CounterMode),
            f"counter_mode must be a CounterMode, got {self.counter_mode!r}",
        )

    @property
    def levels(self) -> int:
        """Number of coarse priority levels (thermometer code positions)."""
        return 1 << self.sig_bits

    @property
    def quantum(self) -> int:
        """Cycles spanned by one coarse level (``2**frac_bits``)."""
        return 1 << self.frac_bits

    @property
    def counter_bits(self) -> int:
        """Total auxVC register width (significant + fractional bits)."""
        return self.sig_bits + self.frac_bits

    @property
    def saturation(self) -> int:
        """auxVC value (in cycles) at which the counter saturates."""
        return self.levels * self.quantum


@dataclass(frozen=True)
class GLPolicerConfig:
    """Policing of the Guaranteed Latency class (paper Sections 3.2-3.4).

    The GL class has absolute priority, so the paper reserves only "a small
    fraction of bandwidth" for it and tracks usage "by a counter similar to
    the auxVC counters" that "increments by a tick count proportional to the
    reserved rate". We gate GL priority on that counter staying within
    ``burst_window`` cycles of real time: a GL source that exceeds its
    reservation for long enough loses its absolute priority (its packets are
    still delivered, but arbitrated like GB traffic) until the counter
    catches back down.

    Attributes:
        reserved_rate: fraction of each output channel's bandwidth reserved
            for the GL class as a whole (shared by all inputs).
        burst_window: slack, in cycles, by which the GL usage counter may
            run ahead of real time before policing engages. ``None``
            disables policing (used by the ablation bench) — but only with
            a positive ``reserved_rate``; at rate 0 there is no reservation
            to charge, so GL never receives absolute priority.
    """

    reserved_rate: float = 0.05
    burst_window: "int | None" = 2048

    def __post_init__(self) -> None:
        _require(
            0.0 <= self.reserved_rate < 1.0,
            f"GL reserved_rate must be in [0, 1), got {self.reserved_rate}",
        )
        if self.burst_window is not None:
            _require(
                self.burst_window > 0,
                f"GL burst_window must be positive or None, got {self.burst_window}",
            )


@dataclass(frozen=True)
class SwitchConfig:
    """Top-level description of one Swizzle Switch instance.

    Attributes:
        radix: number of input ports == number of output ports.
        channel_bits: width of each output data bus in bits. Arbitration
            lanes are carved out of this bus, so ``channel_bits // radix``
            lanes are available (paper Section 4.4).
        flit_bytes: payload bytes per flit (Table 1 uses 64-byte flits).
        be_buffer_flits: per-input Best-Effort buffer depth in flits.
        gb_buffer_flits: per-input, per-output Guaranteed Bandwidth buffer
            depth in flits (the GB class uses virtual output queues).
        gl_buffer_flits: per-input Guaranteed Latency buffer depth in flits.
        arbitration_cycles: cycles consumed by (re-)arbitration before the
            winner's first flit moves. The Swizzle Switch arbitrates in a
            single cycle (paper Section 2.2 / 3.1), giving the
            ``L/(L+1)`` saturation ceiling visible in Fig. 4. The DAC'12
            fixed-priority baseline needs two cycles.
        packet_chaining: enable the paper's suggested mitigation for the
            re-arbitration bubble (Section 4.2, citing Michelogiannakis et
            al.): when the input that just released an output wins the next
            arbitration for it *again*, back-to-back, the grant is chained
            and the arbitration cycle is skipped. Because the normal
            arbiter still picks the winner, chaining never changes *who*
            is served — only when — so all QoS guarantees are preserved.
        max_chain_length: packets a single input may chain before paying a
            full arbitration cycle again (bounds the latency a chained
            stream can add for a requester that arrives mid-chain).
        voq: full virtual-output-queued input buffering. The paper's
            switch gives only the GB class per-output queues; with
            ``voq=True`` every class (BE and GL included) gets one queue
            per (input, output) pair, removing head-of-line blocking
            entirely. This is the canonical input-queued switch model the
            iterative matching schedulers (iSLIP, QPS-r, SW-QPS) assume;
            see docs/SCHEDULERS.md. Supported by the event kernel only —
            the flit and array kernels refuse it at construction.
        qos: SSVC arbitration parameters.
        gl_policer: GL-class policing parameters.
    """

    radix: int = 8
    channel_bits: int = 128
    flit_bytes: int = 64
    be_buffer_flits: int = 4
    gb_buffer_flits: int = 16
    gl_buffer_flits: int = 4
    arbitration_cycles: int = 1
    packet_chaining: bool = False
    max_chain_length: int = 4
    voq: bool = False
    qos: QoSConfig = field(default_factory=QoSConfig)
    gl_policer: GLPolicerConfig = field(default_factory=GLPolicerConfig)

    def __post_init__(self) -> None:
        _require(2 <= self.radix <= 1024, f"radix must be in [2, 1024], got {self.radix}")
        _require(
            self.radix & (self.radix - 1) == 0,
            f"radix must be a power of two (hardware lane mapping), got {self.radix}",
        )
        _require(self.channel_bits >= self.radix, "channel must be at least one lane wide")
        _require(
            self.channel_bits % self.radix == 0,
            f"channel_bits ({self.channel_bits}) must be a multiple of radix ({self.radix}) "
            "so lanes align with LRG vectors",
        )
        _require(self.flit_bytes > 0, f"flit_bytes must be positive, got {self.flit_bytes}")
        for name in ("be_buffer_flits", "gb_buffer_flits", "gl_buffer_flits"):
            _require(getattr(self, name) >= 1, f"{name} must be >= 1")
        _require(
            self.arbitration_cycles >= 0,
            f"arbitration_cycles must be >= 0, got {self.arbitration_cycles}",
        )
        _require(
            self.max_chain_length >= 1,
            f"max_chain_length must be >= 1, got {self.max_chain_length}",
        )

    @property
    def num_lanes(self) -> int:
        """Arbitration lanes available on the output bus (paper Eq. in 4.4).

        Each lane needs exactly ``radix`` bitlines so a full LRG vector fits,
        hence ``num_lanes = channel_bits / radix``.
        """
        return self.channel_bits // self.radix

    @property
    def supports_three_classes(self) -> bool:
        """True when at least 3 lanes exist (one GL + one GB + one BE lane)."""
        return self.num_lanes >= 3

    @property
    def gb_lanes(self) -> int:
        """Lanes usable by GB thermometer levels (one is set aside for GL).

        The paper (Section 3.2) dedicates one lane to the GL class, "leaving
        one fewer lane for the GB class".
        """
        return max(self.num_lanes - 1, 1)

    def effective_levels(self) -> int:
        """Coarse GB priority levels actually usable by this switch.

        The thermometer code has ``qos.levels`` positions, but the bus can
        only host ``gb_lanes`` of them; the hardware would be configured
        with ``sig_bits = log2(min(...))``.
        """
        return min(self.qos.levels, self.gb_lanes)

    def with_qos(self, **kwargs: object) -> "SwitchConfig":
        """Return a copy of this config with QoS fields replaced."""
        return replace(self, qos=replace(self.qos, **kwargs))


#: Default configuration matching the paper's Fig. 4 experiment:
#: 8 inputs, 128-bit output channel, 8-flit packets (set on the workload),
#: 16-flit GB buffers, 4 significant auxVC bits, GB traffic only (no GL
#: reservation — the paper's reserved fractions sum to 100%).
FIG4_CONFIG = SwitchConfig(
    radix=8,
    channel_bits=128,
    gb_buffer_flits=16,
    qos=QoSConfig(sig_bits=4, frac_bits=8),
    gl_policer=GLPolicerConfig(reserved_rate=0.0),
)

#: Largest configuration in the paper: 64x64 switch with 512-bit buses
#: (Table 1's storage worst case).
TABLE1_CONFIG = SwitchConfig(
    radix=64,
    channel_bits=512,
    be_buffer_flits=4,
    gb_buffer_flits=4,
    gl_buffer_flits=4,
    qos=QoSConfig(sig_bits=3, frac_bits=8),
)
