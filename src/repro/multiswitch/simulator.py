"""Cycle-accurate two-hop simulator for the composed network.

Faithful to the single-switch kernel's timing (1-cycle re-arbitration,
``L`` data cycles per packet) with the composition-specific mechanics the
paper's Section 4.4 calls out:

* **Aggregate QoS state** — each ingress crosspoint serves every flow from
  its host to an entire destination group, so SSVC reservations exist only
  per (host, destination-group) aggregate; flows inside an aggregate are
  *not* isolated from each other. Likewise each egress output reserves per
  source-group downlink.
* **Shared downlink buffers** — an egress input port is one FIFO shared by
  every flow arriving over that downlink ("it becomes increasingly
  difficult to maintain separation between flows in buffers"); its head can
  block packets behind it that target other outputs.
* **Credit backpressure** — an ingress uplink may only grant a packet when
  the destination egress FIFO has space reserved for it, so the shared
  buffer conflicts propagate back into ingress arbitration.

Only Guaranteed Bandwidth traffic is modeled — the composition's QoS
behaviour is the question; BE/GL compose exactly as in the single switch.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..config import QoSConfig
from ..core.ssvc import SSVCCore
from ..errors import ConfigError, SimulationError, TrafficError
from ..faults import FaultInjector, FaultKind, FaultPlan, resolve_injector
from ..metrics.counters import StatsCollector
from ..obs.probe import Probe, resolve_hooks
from ..switch.flit import Packet, fresh_packet_ids
from ..types import FlowId, TrafficClass
from .topology import ClosTopology


def _checked_multistage_injector(
    plan: Optional[FaultPlan], topology: ClosTopology
) -> Optional[FaultInjector]:
    """Resolve a fault plan against the composed network's address space.

    Behavioral fault targets read differently here: ``input_port`` is a
    *global host* index, ``output`` a *destination group* — a dead
    crosspoint kills one (host, uplink) ingress pair, a counter bit-flip
    hits the matching ingress aggregate, and the drop/dup output filter
    selects the group-to-group link. Circuit kinds are rejected as in the
    single-switch kernels.
    """
    injector = resolve_injector(plan)
    if injector is None:
        return None
    if injector.has_circuit_faults:
        raise ConfigError(
            "bitline/sense faults model the arbitration circuit; inject them "
            "into repro.circuit.ArbitrationFabric, not the composed network"
        )
    for spec in injector.plan.faults:
        if spec.input_port is not None and not 0 <= spec.input_port < topology.num_hosts:
            raise ConfigError(
                f"{spec.kind.value} fault targets host {spec.input_port} "
                f"outside the {topology.num_hosts}-host network"
            )
        if spec.output is not None and not 0 <= spec.output < topology.groups:
            raise ConfigError(
                f"{spec.kind.value} fault targets group {spec.output} "
                f"outside the {topology.groups}-group network"
            )
    return injector


@dataclass(frozen=True)
class ComposedFlow:
    """One end-to-end GB flow through the composition.

    Attributes:
        src: source host.
        dst: destination host.
        rate: end-to-end reserved fraction (of a one-flit/cycle channel).
        packet_flits: packet length.
        inject_rate: offered flits/cycle; ``None`` saturates.
    """

    src: int
    dst: int
    rate: float
    packet_flits: int = 8
    inject_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise TrafficError(f"rate must be in (0, 1], got {self.rate}")
        if self.packet_flits < 1:
            raise TrafficError(f"packet_flits must be >= 1, got {self.packet_flits}")

    @property
    def flow_id(self) -> FlowId:
        """The flow's identity (always GB class)."""
        return FlowId(self.src, self.dst, TrafficClass.GB)


@dataclass
class MultiStageResult:
    """Outcome of a composed-network run.

    Attributes:
        stats: per-flow statistics (latency is end-to-end, creation to
            final egress delivery).
        horizon: simulated cycles.
        grants_ingress / grants_egress: arbitration grants per stage.
        hol_blocked_cycles: cycles egress arbitration found a downlink head
            blocked behind a busy output while other outputs sat idle —
            the measurable footprint of the shared-buffer conflict.
    """

    stats: StatsCollector
    horizon: int
    grants_ingress: int
    grants_egress: int
    hol_blocked_cycles: int

    def accepted_rate(self, src: int, dst: int) -> float:
        """End-to-end delivered flits/cycle for one flow."""
        return self.stats.accepted_rate(FlowId(src, dst, TrafficClass.GB))

    def mean_latency(self, src: int, dst: int) -> float:
        """End-to-end mean latency for one flow."""
        return self.stats.flow_stats(FlowId(src, dst, TrafficClass.GB)).latency.mean


class _HostPort:
    """Ingress-side host port: one VOQ per uplink, plus a source queue."""

    def __init__(self, num_uplinks: int, voq_capacity: int) -> None:
        self.voqs: List[Deque[Packet]] = [deque() for _ in range(num_uplinks)]
        self.voq_flits = [0] * num_uplinks
        self.voq_capacity = voq_capacity
        self.source_queue: Deque[Packet] = deque()
        self.busy_until = 0

    def try_inject(self, packet: Packet, uplink: int, now: int) -> bool:
        if self.voq_flits[uplink] + packet.flits > self.voq_capacity:
            return False
        packet.injected_cycle = now
        self.voqs[uplink].append(packet)
        self.voq_flits[uplink] += packet.flits
        return True

    def pop(self, uplink: int) -> Packet:
        packet = self.voqs[uplink].popleft()
        self.voq_flits[uplink] -= packet.flits
        return packet


class _DownlinkPort:
    """Egress-side input: one *shared* FIFO (no per-flow separation)."""

    def __init__(self, capacity_flits: int) -> None:
        self.fifo: Deque[Packet] = deque()
        self.occupancy = 0  # includes space reserved for in-flight packets
        self.capacity = capacity_flits
        self.busy_until = 0

    def reserve(self, flits: int) -> bool:
        if self.occupancy + flits > self.capacity:
            return False
        self.occupancy += flits
        return True

    def deliver(self, packet: Packet) -> None:
        self.fifo.append(packet)

    def pop(self) -> Packet:
        packet = self.fifo.popleft()
        self.occupancy -= packet.flits
        return packet


class MultiStageSimulation:
    """Simulate GB flows through a two-stage Clos of Swizzle Switches.

    Args:
        topology: network shape.
        flows: end-to-end flows. Aggregate reservations are derived by
            summing flow rates per ingress crosspoint and per egress
            (source-group, output) pair; oversubscribed aggregates raise.
        qos: SSVC parameters used at both stages.
        voq_capacity_flits: ingress per-uplink VOQ depth.
        downlink_capacity_flits: shared egress FIFO depth per downlink.
        seed: RNG seed for scheduled sources.
        probe: optional :class:`~repro.obs.probe.Probe` fed per-stage
            counters (``multiswitch.*`` namespace).
        fault_plan: optional :class:`~repro.faults.FaultPlan`; behavioral
            fault targets are re-addressed for the composition — see
            :func:`_checked_multistage_injector`. Packet drops model a
            corrupted group-to-group link transfer (the packet vanishes in
            flight and its reserved egress buffer space is released).
    """

    def __init__(
        self,
        topology: ClosTopology,
        flows: List[ComposedFlow],
        qos: Optional[QoSConfig] = None,
        voq_capacity_flits: int = 32,
        downlink_capacity_flits: int = 32,
        seed: int = 0,
        probe: Optional[Probe] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if not flows:
            raise TrafficError("at least one flow is required")
        seen = set()
        for flow in flows:
            topology.group_of(flow.src)  # validates range
            topology.group_of(flow.dst)
            key = (flow.src, flow.dst)
            if key in seen:
                raise TrafficError(f"duplicate flow {key}")
            seen.add(key)
        self.topology = topology
        self.flows = list(flows)
        self.qos = qos if qos is not None else QoSConfig()
        self.voq_capacity = voq_capacity_flits
        self.downlink_capacity = downlink_capacity_flits
        self.seed = seed
        self.probe = probe
        self.fault_plan = fault_plan
        self._build_qos_state()

    # ----------------------------------------------------------------- setup

    def _build_qos_state(self) -> None:
        topo = self.topology
        # Ingress: one SSVC core per (group, uplink) output, arbitrating
        # among the group's host ports. Reservation = aggregate of the
        # host's flows toward the uplink's destination group.
        self.ingress_cores: List[List[SSVCCore]] = [
            [SSVCCore(self.qos, topo.hosts_per_group) for _ in range(topo.groups)]
            for _ in range(topo.groups)
        ]
        # Egress: one SSVC core per (group, host output), arbitrating among
        # downlink ports. Reservation = aggregate per source group.
        self.egress_cores: List[List[SSVCCore]] = [
            [SSVCCore(self.qos, topo.groups) for _ in range(topo.hosts_per_group)]
            for _ in range(topo.groups)
        ]
        ingress_agg: Dict[Tuple[int, int, int], float] = {}
        egress_agg: Dict[Tuple[int, int, int], float] = {}
        packet_flits: Dict[Tuple[int, int, int], int] = {}
        for flow in self.flows:
            gs, gd = topo.group_of(flow.src), topo.group_of(flow.dst)
            local_src = topo.local_index(flow.src)
            local_dst = topo.local_index(flow.dst)
            key_in = (gs, gd, local_src)
            key_eg = (gd, local_dst, gs)
            ingress_agg[key_in] = ingress_agg.get(key_in, 0.0) + flow.rate
            egress_agg[key_eg] = egress_agg.get(key_eg, 0.0) + flow.rate
            packet_flits[key_in] = flow.packet_flits
            packet_flits[key_eg] = flow.packet_flits
        for (gs, gd, local_src), rate in ingress_agg.items():
            if rate > 1.0 + 1e-9:
                raise TrafficError(
                    f"ingress aggregate host {local_src} of group {gs} -> group "
                    f"{gd} oversubscribed ({rate:.3f})"
                )
            self.ingress_cores[gs][gd].register_flow(
                local_src, min(rate, 1.0), packet_flits[(gs, gd, local_src)]
            )
        for (gd, local_dst, gs), rate in egress_agg.items():
            if rate > 1.0 + 1e-9:
                raise TrafficError(
                    f"egress aggregate group {gs} -> host output {local_dst} of "
                    f"group {gd} oversubscribed ({rate:.3f})"
                )
            self.egress_cores[gd][local_dst].register_flow(
                gs, min(rate, 1.0), packet_flits[(gd, local_dst, gs)]
            )

    def _build_arrivals(self, horizon: int):
        """Per-flow arrival schedules (geometric, matching BernoulliInjection)."""
        heap: List[Tuple[int, int]] = []  # (time, flow index)
        schedules: List[Deque[int]] = []
        seeds = np.random.SeedSequence(self.seed).spawn(len(self.flows))
        for idx, (flow, child) in enumerate(zip(self.flows, seeds)):
            if flow.inject_rate is None:
                schedules.append(deque())  # saturating: handled by top-up
                continue
            rng = np.random.default_rng(child)
            p = min(flow.inject_rate / flow.packet_flits, 1.0)
            expected = int(horizon * p * 1.2) + 16
            gaps = rng.geometric(p, size=expected)
            times = np.cumsum(gaps) - 1
            while times.size and times[-1] < horizon:
                times = np.concatenate(
                    [times, times[-1] + np.cumsum(rng.geometric(p, size=expected))]
                )
            schedule = deque(int(t) for t in times[times < horizon])
            schedules.append(schedule)
            if schedule:
                heapq.heappush(heap, (schedule[0], idx))
        return heap, schedules

    # ------------------------------------------------------------------- run

    def run(self, horizon: int, warmup_cycles: Optional[int] = None) -> MultiStageResult:
        """Simulate ``horizon`` cycles end-to-end."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        warmup = warmup_cycles if warmup_cycles is not None else horizon // 10
        topo = self.topology
        stats = StatsCollector(warmup_cycles=warmup)

        host_ports = [
            [_HostPort(topo.groups, self.voq_capacity) for _ in range(topo.hosts_per_group)]
            for _ in range(topo.groups)
        ]
        uplink_busy = [[0] * topo.groups for _ in range(topo.groups)]
        downlinks = [
            [_DownlinkPort(self.downlink_capacity) for _ in range(topo.groups)]
            for _ in range(topo.groups)
        ]
        egress_out_busy = [[0] * topo.hosts_per_group for _ in range(topo.groups)]

        arrival_heap, schedules = self._build_arrivals(horizon)
        # Saturating flows grouped by the VOQ they feed, so flows sharing a
        # queue interleave their packets instead of the first one in flow
        # order monopolizing the buffer.
        saturating_by_voq: Dict[Tuple[int, int, int], List[int]] = {}
        for i, f in enumerate(self.flows):
            if f.inject_rate is None:
                key = (
                    topo.group_of(f.src),
                    topo.local_index(f.src),
                    topo.uplink_for(f.dst),
                )
                saturating_by_voq.setdefault(key, []).append(i)
        # Round-robin cursor so queue-sharing saturating flows interleave
        # fairly across refills (one packet slot per refill would otherwise
        # always go to the first flow in list order).
        sat_cursor = {key: 0 for key in saturating_by_voq}
        link_heap: List[Tuple[int, int, Packet, int, int]] = []  # (t, seq, pkt, gd, gs)
        link_seq = 0

        grants_ingress = 0
        grants_egress = 0
        hol_blocked = 0
        probe = self.probe
        # Hooks resolved once; counters batch in locals and flush after the
        # horizon (only trace events are emitted inline — they are ordered).
        hooks = resolve_hooks(probe)
        event_hook = hooks.event
        wakes = 0
        heap_pushes = 0
        ingress_arbitrations = 0
        egress_arbitrations = 0

        # Fault injection (same hoisting pattern as the single-switch
        # kernels; decisions are keyed-hash draws, so order-independent).
        injector = _checked_multistage_injector(self.fault_plan, topo)
        faults_stall = injector is not None and injector.has_stalls
        faults_dead = injector is not None and injector.has_dead
        faults_flips = injector is not None and injector.has_flips
        faults_drop = injector is not None and injector.has_drops
        faults_dup = injector is not None and injector.has_dups
        fault_stall_masks = 0
        fault_dead_masks = 0
        fault_flips_applied = 0
        fault_drops = 0
        fault_dups = 0

        wake_heap: List[int] = [0]
        pending = {0}

        def wake(t: int) -> None:
            nonlocal heap_pushes
            if t < horizon and t not in pending:
                heapq.heappush(wake_heap, t)
                pending.add(t)
                heap_pushes += 1

        for t0, _ in arrival_heap:
            wake(t0)
        if injector is not None:
            # Stall boundaries and bit-flip cycles must be wake times, as
            # in the event kernel.
            for t in injector.wake_cycles():
                wake(t)

        packet_ids = fresh_packet_ids()  # per-run ids: replayable traces

        def make_packet(flow: ComposedFlow, created: int) -> Packet:
            return Packet(
                flow=flow.flow_id,
                flits=flow.packet_flits,
                created_cycle=created,
                packet_id=next(packet_ids),
            )

        def refill(now: int) -> None:
            """Admit waiting packets, then saturating traffic, into VOQs.

            Source-queued packets (scheduled flows that found their VOQ
            full) drain *before* saturating flows top up, so a saturating
            aggressor sharing a VOQ cannot permanently lock a scheduled
            flow out of the switch.
            """
            for group in host_ports:
                for port in group:
                    while port.source_queue:
                        head = port.source_queue[0]
                        if not port.try_inject(head, topo.uplink_for(head.dst), now):
                            break
                        port.source_queue.popleft()
            for key, indices in saturating_by_voq.items():
                gs, local, uplink = key
                port = host_ports[gs][local]
                progress = True
                while progress:
                    progress = False
                    start = sat_cursor[key]
                    for step in range(len(indices)):
                        pos = (start + step) % len(indices)
                        flow = self.flows[indices[pos]]
                        if port.voq_flits[uplink] + flow.packet_flits > port.voq_capacity:
                            continue
                        packet = make_packet(flow, now)
                        stats.on_created(packet)
                        port.try_inject(packet, uplink, now)
                        sat_cursor[key] = (pos + 1) % len(indices)
                        progress = True

        while wake_heap:
            now = heapq.heappop(wake_heap)
            pending.discard(now)
            if now >= horizon:
                continue
            wakes += 1

            # 1. Scheduled host arrivals.
            while arrival_heap and arrival_heap[0][0] <= now:
                _, idx = heapq.heappop(arrival_heap)
                flow = self.flows[idx]
                schedules[idx].popleft()
                packet = make_packet(flow, now)
                stats.on_created(packet)
                port = host_ports[topo.group_of(flow.src)][topo.local_index(flow.src)]
                uplink = topo.uplink_for(flow.dst)
                if not port.try_inject(packet, uplink, now):
                    port.source_queue.append(packet)
                if schedules[idx]:
                    heapq.heappush(arrival_heap, (schedules[idx][0], idx))
                    wake(schedules[idx][0])

            # 2. Link deliveries reaching egress FIFOs.
            while link_heap and link_heap[0][0] <= now:
                _, _, packet, gd, gs = heapq.heappop(link_heap)
                if faults_drop and injector.drop_delivery(
                    gd, packet.packet_id, now
                ):
                    # Corrupted link transfer: the packet vanishes in
                    # flight, so the egress buffer space reserved for it
                    # is released (the credit frees an ingress grant).
                    downlinks[gd][gs].occupancy -= packet.flits
                    fault_drops += 1
                    wake(now + 1)
                    if event_hook is not None:
                        event_hook(
                            "fault",
                            now,
                            kind="packet-drop",
                            group=gd,
                            source_group=gs,
                            packet_id=packet.packet_id,
                        )
                    continue
                downlinks[gd][gs].deliver(packet)

            # 3. Admit waiting and saturating traffic into the VOQs.
            refill(now)

            # 3b. Counter bit-flips hit the ingress aggregate's auxVC
            #     counter before any arbitration this cycle.
            if faults_flips:
                for spec in injector.counter_flips_at(now):
                    assert spec.input_port is not None and spec.output is not None
                    self.ingress_cores[topo.group_of(spec.input_port)][
                        spec.output
                    ].inject_counter_bitflip(
                        topo.local_index(spec.input_port), spec.bit, now
                    )
                    fault_flips_applied += 1
                    if event_hook is not None:
                        event_hook(
                            "fault",
                            now,
                            kind="counter-bitflip",
                            host=spec.input_port,
                            uplink=spec.output,
                            bit=spec.bit,
                        )

            # 4. Ingress arbitration: per (group, uplink).
            for gs in range(topo.groups):
                for gd in range(topo.groups):
                    if uplink_busy[gs][gd] > now:
                        continue
                    core = self.ingress_cores[gs][gd]
                    candidates = []
                    heads = {}
                    for local in range(topo.hosts_per_group):
                        port = host_ports[gs][local]
                        if port.busy_until > now or not port.voqs[gd]:
                            continue
                        host = gs * topo.hosts_per_group + local
                        if faults_stall and injector.stalled(host, now):
                            # A stalled host raises no ingress requests.
                            fault_stall_masks += 1
                            continue
                        if faults_dead and injector.crosspoint_dead(host, gd):
                            # Dead (host, uplink) ingress crosspoint: the
                            # VOQ head blocks until the fault clears.
                            fault_dead_masks += 1
                            continue
                        head = port.voqs[gd][0]
                        if not core.is_registered(local):
                            continue
                        # Credit check: space in the egress shared FIFO.
                        if downlinks[gd][gs].occupancy + head.flits > downlinks[gd][gs].capacity:
                            continue
                        candidates.append(local)
                        heads[local] = head
                    if not candidates:
                        continue
                    ingress_arbitrations += 1
                    winner = core.select(candidates, now)
                    core.commit(winner, now)
                    packet = host_ports[gs][winner].pop(gd)
                    delivered = now + 1 + packet.flits  # 1-cycle arbitration
                    uplink_busy[gs][gd] = delivered
                    host_ports[gs][winner].busy_until = delivered
                    downlinks[gd][gs].reserve(packet.flits)
                    link_seq += 1
                    arrive = delivered + topo.link_latency
                    heapq.heappush(link_heap, (arrive, link_seq, packet, gd, gs))
                    wake(delivered)
                    wake(arrive)
                    grants_ingress += 1
                    if event_hook is not None:
                        event_hook(
                            "ingress_grant",
                            now,
                            group=gs,
                            uplink=gd,
                            host=winner,
                            packet_id=packet.packet_id,
                            flits=packet.flits,
                        )

            # 5. Egress arbitration: per (group, host output). Downlink
            #    heads request only their own target output; a head bound
            #    for a busy output blocks everything behind it (HoL).
            for gd in range(topo.groups):
                requesting: Dict[int, List[int]] = {}
                for gs in range(topo.groups):
                    port = downlinks[gd][gs]
                    if port.busy_until > now or not port.fifo:
                        continue
                    head = port.fifo[0]
                    out = topo.local_index(head.dst)
                    if egress_out_busy[gd][out] > now:
                        if any(
                            egress_out_busy[gd][o] <= now
                            for o in range(topo.hosts_per_group)
                        ):
                            hol_blocked += 1
                        continue
                    requesting.setdefault(out, []).append(gs)
                for out, sources in requesting.items():
                    core = self.egress_cores[gd][out]
                    eligible = [gs for gs in sources if core.is_registered(gs)]
                    if not eligible:
                        continue
                    egress_arbitrations += 1
                    winner = core.select(eligible, now)
                    core.commit(winner, now)
                    packet = downlinks[gd][winner].pop()
                    delivered = now + 1 + packet.flits
                    egress_out_busy[gd][out] = delivered
                    downlinks[gd][winner].busy_until = delivered
                    packet.grant_cycle = now
                    packet.delivered_cycle = delivered
                    stats.on_delivered(packet)
                    if faults_dup and injector.duplicate_delivery(
                        gd, packet.packet_id, now
                    ):
                        stats.on_delivered(packet)
                        fault_dups += 1
                        if event_hook is not None:
                            event_hook(
                                "fault",
                                now,
                                kind="packet-dup",
                                group=gd,
                                output=out,
                                packet_id=packet.packet_id,
                            )
                    wake(delivered)
                    grants_egress += 1
                    if event_hook is not None:
                        event_hook(
                            "egress_grant",
                            now,
                            group=gd,
                            output=out,
                            source_group=winner,
                            packet_id=packet.packet_id,
                            flits=packet.flits,
                            latency=packet.latency,
                        )
                    # Freed FIFO space may unblock an ingress grant; the
                    # credit update is visible from the next cycle.
                    wake(now + 1)
            refill(now)

        count_hook = hooks.count
        if count_hook is not None:
            for name, total in (
                ("multiswitch.wakes", wakes),
                ("multiswitch.heap_pushes", heap_pushes),
                ("multiswitch.ingress_arbitrations", ingress_arbitrations),
                ("multiswitch.ingress_grants", grants_ingress),
                ("multiswitch.hol_blocked", hol_blocked),
                ("multiswitch.egress_arbitrations", egress_arbitrations),
                ("multiswitch.egress_grants", grants_egress),
            ):
                if total:
                    count_hook(name, total)
            if injector is not None:
                # faults.* counters exist only under an active plan, so
                # empty-plan runs flush exactly what unfaulted runs do.
                for name, total in (
                    ("faults.stall_masked", fault_stall_masks),
                    ("faults.dead_crosspoint_masked", fault_dead_masks),
                    ("faults.counter_bitflips", fault_flips_applied),
                    ("faults.packet_drops", fault_drops),
                    ("faults.packet_dups", fault_dups),
                ):
                    if total:
                        count_hook(name, total)

        stats.finish(horizon)
        return MultiStageResult(
            stats=stats,
            horizon=horizon,
            grants_ingress=grants_ingress,
            grants_egress=grants_egress,
            hol_blocked_cycles=hol_blocked,
        )
