"""Two-stage switch composition — the paper's Section 4.4 frontier.

"Scaling to more nodes involves composing multiple switches, which makes
the QoS technique more complex. Crosspoints will have to be shared by
several flows, requiring more per-flow state storage. In addition,
composing multiple switches introduces conflicts in buffers at the input
port. It becomes increasingly difficult to maintain separation between
flows in buffers."

This package builds that composed network so the claims can be *measured*
rather than asserted: a two-stage Clos of Swizzle Switches
(:mod:`repro.multiswitch.topology`), a cycle-accurate two-hop simulator
with credit backpressure (:mod:`repro.multiswitch.simulator`), an
aggregate-reservation QoS plane (crosspoints shared by every flow in a
(host, destination-group) aggregate), and a storage model for the extra
per-flow state (:mod:`repro.multiswitch.storage`). The companion
experiment (:mod:`repro.experiments.composition`) contrasts a single
high-radix switch against the composition on the same workload and shows
the interference the paper predicts.
"""

from .simulator import MultiStageResult, MultiStageSimulation
from .storage import composed_storage_overhead
from .topology import ClosTopology

__all__ = [
    "ClosTopology",
    "MultiStageResult",
    "MultiStageSimulation",
    "composed_storage_overhead",
]
