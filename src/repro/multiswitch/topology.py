"""Two-stage Clos composition of Swizzle Switches.

``groups`` ingress switches each serve ``hosts_per_group`` hosts and own one
dedicated uplink to every egress switch; ``groups`` egress switches each
receive one downlink from every ingress switch and serve the same hosts on
the destination side. Host ``n`` lives in group ``n // hosts_per_group``.

A packet from host *s* to host *d* therefore crosses exactly two switches:

    s ->(ingress of group(s), uplink toward group(d))
      -> link -> (egress of group(d), output toward d)

The ingress crosspoint ``(s, uplink_to(group(d)))`` is shared by every flow
from *s* to *any* host in that destination group, and the egress input port
``from group(s)`` is shared by every flow originating in *s*'s group — the
two sharing effects Section 4.4 warns about.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class ClosTopology:
    """Shape of the two-stage composition.

    Attributes:
        groups: number of ingress (and egress) switches.
        hosts_per_group: hosts attached to each switch on each side.
        link_latency: cycles a packet spends on an ingress->egress link.
    """

    groups: int = 4
    hosts_per_group: int = 4
    link_latency: int = 2

    def __post_init__(self) -> None:
        if self.groups < 2:
            raise ConfigError(f"a composition needs >= 2 groups, got {self.groups}")
        if self.hosts_per_group < 1:
            raise ConfigError(
                f"hosts_per_group must be >= 1, got {self.hosts_per_group}"
            )
        if self.link_latency < 0:
            raise ConfigError(f"link_latency must be >= 0, got {self.link_latency}")

    @property
    def num_hosts(self) -> int:
        """Total hosts reachable through the composition."""
        return self.groups * self.hosts_per_group

    @property
    def ingress_radix(self) -> int:
        """Ports of one ingress switch: host inputs x uplink outputs."""
        return max(self.hosts_per_group, self.groups)

    @property
    def egress_radix(self) -> int:
        """Ports of one egress switch: downlink inputs x host outputs."""
        return max(self.groups, self.hosts_per_group)

    # ------------------------------------------------------------- addressing

    def group_of(self, host: int) -> int:
        """The group (ingress/egress switch index) a host belongs to."""
        self._check_host(host)
        return host // self.hosts_per_group

    def local_index(self, host: int) -> int:
        """The host's port index within its switch."""
        self._check_host(host)
        return host % self.hosts_per_group

    def uplink_for(self, dst_host: int) -> int:
        """The ingress output port a packet to ``dst_host`` must take."""
        return self.group_of(dst_host)

    def flows_sharing_ingress_crosspoint(self) -> int:
        """Flows multiplexed onto one ingress crosspoint (Section 4.4).

        A crosspoint ``(host, uplink)`` carries one flow per destination
        host in the uplink's group.
        """
        return self.hosts_per_group

    def flows_sharing_egress_input(self) -> int:
        """Flows multiplexed through one egress downlink input port."""
        return self.hosts_per_group * self.hosts_per_group

    def _check_host(self, host: int) -> None:
        if not 0 <= host < self.num_hosts:
            raise ConfigError(
                f"host {host} out of range [0, {self.num_hosts})"
            )
