"""Storage cost of composing switches (paper Section 4.4's state argument).

"Crosspoints will have to be shared by several flows, requiring more
per-flow state storage." In a single switch, one crosspoint serves exactly
one (input, output) flow and holds one auxVC/thermometer/Vtick set. In the
two-stage composition, restoring per-flow isolation at an ingress
crosspoint would need one counter set *per destination host in the
downstream group*, and an egress input would need per-flow queues instead
of one shared FIFO. This model quantifies that growth for a given topology
so the single-switch design point can be compared against the composition
at equal host count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import QoSConfig
from .topology import ClosTopology


@dataclass(frozen=True)
class ComposedStorage:
    """Per-flow QoS state of the composition vs. a single switch.

    All quantities in bytes. ``aggregate_*`` is what the composition
    actually implements (one counter set per crosspoint, flows share);
    ``isolated_*`` is what restoring single-switch-grade per-flow isolation
    would cost.
    """

    single_switch_state: float
    aggregate_state: float
    isolated_state: float

    @property
    def isolation_overhead_factor(self) -> float:
        """How much more state per-flow isolation needs vs. a single switch.

        Note this can drop *below* 1 at large host counts: the monolithic
        switch's state grows quadratically (N^2 crosspoints with N-wide LRG
        rows), so the composition is cheaper in raw bits — the paper's
        complexity argument is the *premium* below, plus the mechanism
        complexity the extra state implies.
        """
        return self.isolated_state / self.single_switch_state

    @property
    def isolation_premium(self) -> float:
        """State multiplier to restore per-flow isolation *within* the
        composition (isolated vs. the aggregate design actually built).

        This is the paper's "requiring more per-flow state storage" figure;
        it grows linearly with the number of flows sharing a crosspoint.
        """
        return self.isolated_state / self.aggregate_state


def _crosspoint_state_bytes(qos: QoSConfig, radix: int) -> float:
    """One crosspoint's QoS state (auxVC + thermometer + Vtick + LRG row)."""
    bits = qos.counter_bits + qos.levels + qos.vtick_bits + (radix - 1)
    return bits / 8.0


def composed_storage_overhead(
    topology: ClosTopology, qos: QoSConfig = QoSConfig()
) -> ComposedStorage:
    """Compare QoS state of one big switch vs. the two-stage composition.

    Args:
        topology: composition shape; the single-switch reference has radix
            equal to the composition's host count.

    Returns:
        The three state totals and the isolation overhead factor.
    """
    hosts = topology.num_hosts
    single = hosts * hosts * _crosspoint_state_bytes(qos, hosts)

    g, h = topology.groups, topology.hosts_per_group
    ingress_xpoints = g * h * g  # per group: hosts x uplinks
    egress_xpoints = g * g * h  # per group: downlinks x host outputs
    aggregate = (
        ingress_xpoints * _crosspoint_state_bytes(qos, h)
        + egress_xpoints * _crosspoint_state_bytes(qos, g)
    )

    # Isolation: every flow multiplexed onto a crosspoint gets its own
    # counter set (the LRG row stays shared — it orders inputs, not flows).
    # An ingress crosspoint carries one flow per destination host in the
    # uplink's group (h flows); an egress crosspoint carries one flow per
    # source host in the downlink's group (h flows).
    per_flow_bytes = (qos.counter_bits + qos.levels + qos.vtick_bits) / 8.0
    extra_sets = (ingress_xpoints + egress_xpoints) * (h - 1)
    isolated = aggregate + extra_sets * per_flow_bytes

    return ComposedStorage(
        single_switch_state=single,
        aggregate_state=aggregate,
        isolated_state=isolated,
    )
