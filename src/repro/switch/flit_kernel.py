"""Flit-granular simulation engine (validation-grade).

The production kernel (:mod:`repro.switch.simulator`) is packet-granular
with flit-accurate *timing*; its one documented simplification is that a
granted packet's buffer space frees all at once instead of one flit per
cycle (DESIGN.md Section 8). This engine removes that simplification: it
marches cycle by cycle and drains each transmitted packet's flits from its
input buffer individually, so buffer occupancy — and therefore
backpressure — is exact at flit resolution.

Use it to validate the fast kernel (their grant schedules are identical
whenever backpressure never binds — see
``tests/test_flit_kernel.py``) or when a study genuinely depends on
intra-packet buffer occupancy. It is 10-50x slower and supports scheduled
(non-saturating) GB/BE traffic without packet chaining.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from ..config import SwitchConfig
from ..core.arbitration import Request
from ..errors import ConfigError, SimulationError, TrafficError
from ..metrics.counters import StatsCollector
from ..obs.probe import Probe, resolve_hooks
from ..switch.crossbar import ArbiterFactory, SwizzleSwitch
from ..switch.events import GrantEvent
from ..switch.flit import Packet, fresh_packet_ids
from ..types import TrafficClass

if False:  # TYPE_CHECKING — runtime import would be circular
    from ..faults import FaultPlan
    from ..traffic.flows import Workload


@dataclass
class _QueuedPacket:
    """A packet in a flit queue, tracking how many flits remain buffered."""

    packet: Packet
    flits_remaining: int


class _FlitQueue:
    """FIFO of packets whose flits drain individually.

    ``occupancy`` counts buffered flits, including the not-yet-drained
    remainder of a packet currently on the wire.
    """

    def __init__(self, capacity_flits: int) -> None:
        self.capacity = capacity_flits
        self.entries: Deque[_QueuedPacket] = deque()
        self.occupancy = 0
        #: the entry currently transmitting (already popped from `entries`)
        self.draining: Optional[_QueuedPacket] = None

    def fits(self, packet: Packet) -> bool:
        return self.occupancy + packet.flits <= self.capacity

    def push(self, packet: Packet) -> None:
        self.entries.append(_QueuedPacket(packet, packet.flits))
        self.occupancy += packet.flits

    def head(self) -> Optional[Packet]:
        """The next packet eligible for arbitration (not yet granted)."""
        return self.entries[0].packet if self.entries else None

    def start_drain(self, packet: Packet) -> None:
        entry = self.entries.popleft()
        if entry.packet is not packet:
            raise SimulationError("granted packet is not the queue head")
        self.draining = entry

    def drain_one_flit(self) -> None:
        """One flit crossed the crossbar: free its buffer slot."""
        if self.draining is None:
            raise SimulationError("drain without an active transmission")
        self.draining.flits_remaining -= 1
        self.occupancy -= 1
        if self.draining.flits_remaining == 0:
            self.draining = None


class _FlitInput:
    """Per-input state: per-class flit queues plus a source overflow queue."""

    def __init__(self, port: int, config: SwitchConfig) -> None:
        self.port = port
        self.config = config
        self.gb: Dict[int, _FlitQueue] = {
            out: _FlitQueue(config.gb_buffer_flits) for out in range(config.radix)
        }
        self.be = _FlitQueue(config.be_buffer_flits)
        self.gl = _FlitQueue(config.gl_buffer_flits)
        self.source: Deque[Packet] = deque()
        self.busy_until = 0
        # Incremental mirror of the per-queue occupancies; bumped on inject,
        # decremented flit-by-flit as transmissions drain (the run loop owns
        # the decrement because _FlitQueue has no back-reference to us).
        self._total_occupancy = 0

    def queue_for(self, packet: Packet) -> _FlitQueue:
        if packet.traffic_class is TrafficClass.GB:
            return self.gb[packet.dst]
        if packet.traffic_class is TrafficClass.GL:
            return self.gl
        return self.be

    def try_inject(self, packet: Packet, now: int) -> bool:
        queue = self.queue_for(packet)
        if not queue.fits(packet):
            return False
        packet.injected_cycle = now
        queue.push(packet)
        self._total_occupancy += packet.flits
        return True

    def head_for_output(self, output: int, allow_gl: bool = True) -> Optional[Packet]:
        gl_head = self.gl.head()
        if allow_gl and gl_head is not None and gl_head.dst == output:
            return gl_head
        gb_head = self.gb[output].head()
        if gb_head is not None:
            return gb_head
        be_head = self.be.head()
        if be_head is not None and be_head.dst == output:
            return be_head
        if gl_head is not None and gl_head.dst == output:
            return gl_head
        return None

    @property
    def total_occupancy_flits(self) -> int:
        """Flits buffered across all classes at this input.

        Matches the fast kernel's ``InputPort.total_occupancy_flits`` so
        occupancy-sensitive arbiters see the same ``queued_flits``; it
        includes the not-yet-drained remainder of a transmitting packet,
        which both kernels agree on whenever the input is free to request
        (the drain has finished by then).
        """
        return self._total_occupancy


@dataclass
class _Transmission:
    packet: Packet
    queue: _FlitQueue
    #: the input the packet drains from (occupancy bookkeeping)
    port: "_FlitInput"
    #: cycles at which flits cross (first_flit_cycle .. last inclusive)
    first_flit_cycle: int
    last_flit_cycle: int


class FlitLevelSimulation:
    """Per-cycle flit-granular engine with the fast kernel's interface.

    Args:
        config: switch parameters (``packet_chaining`` unsupported).
        workload: scheduled flows only (saturating sources would need the
            fast kernel's top-up machinery; use it instead).
        arbiter_factory: per-output policy, as for ``Simulation``.
        seed: source RNG seed.
        warmup_cycles: measurement start (default horizon // 10 at run).
        collect_events: record grant events for differential tests.
        probe: optional :class:`~repro.obs.probe.Probe`, as for
            ``Simulation`` (counter names are shared between kernels).
        fault_plan: optional :class:`~repro.faults.FaultPlan`, as for
            ``Simulation``; the same plan produces the same fault decisions
            in both kernels (keyed-hash draws, not a consumed RNG stream).
    """

    def __init__(
        self,
        config: SwitchConfig,
        workload: "Workload",
        arbiter_factory: Optional[ArbiterFactory] = None,
        seed: int = 0,
        warmup_cycles: Optional[int] = None,
        collect_events: bool = False,
        probe: Optional[Probe] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        if config.packet_chaining:
            raise SimulationError("the flit-level engine does not model chaining")
        if config.voq:
            raise ConfigError(
                "the flit-level engine buffers BE/GL in single per-input "
                "queues; full-VOQ mode (config.voq) needs the event kernel"
            )
        for spec in workload:
            if spec.process is not None and spec.process.saturating:
                raise TrafficError(
                    "the flit-level engine supports scheduled sources only"
                )
        workload.validate(config.radix, config.gl_policer.reserved_rate)
        self.config = config
        self.workload = workload
        self.switch = SwizzleSwitch(config, arbiter_factory)
        self.seed = seed
        self._warmup_override = warmup_cycles
        self.collect_events = collect_events
        self.probe = probe
        self.fault_plan = fault_plan

    def _arrivals(self, horizon: int) -> Dict[int, List[Packet]]:
        from ..traffic.generators import FlowSource

        seeds = np.random.SeedSequence(self.seed).spawn(len(self.workload.flows))
        packet_ids = fresh_packet_ids()  # per-run ids: replayable traces
        sources = []
        for spec, child in zip(self.workload, seeds):
            if spec.process is None:
                continue
            sources.append(
                FlowSource(
                    flow=spec.flow,
                    process=spec.process,
                    packet_length=spec.packet_length,
                    horizon=horizon,
                    rng=np.random.default_rng(child),
                    id_source=packet_ids,
                )
            )
        # Pop sources in (time, source index) order — the fast kernel's
        # arrival-heap order — so both kernels assign the same packet id to
        # the same packet (ids key fault draws and trace diffs).
        heap: List = []
        for idx, source in enumerate(sources):
            t0 = source.peek_time()
            if t0 is not None:
                heapq.heappush(heap, (t0, idx, source))
        by_cycle: Dict[int, List[Packet]] = {}
        while heap:
            _, idx, source = heapq.heappop(heap)
            packet = source.pop_scheduled()
            by_cycle.setdefault(packet.created_cycle, []).append(packet)
            next_time = source.peek_time()
            if next_time is not None:
                heapq.heappush(heap, (next_time, idx, source))
        return by_cycle

    def run(self, horizon: int):
        """Simulate ``horizon`` cycles; returns a ``SimulationResult``."""
        from .simulator import SimulationResult, _checked_injector

        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        warmup = (
            self._warmup_override
            if self._warmup_override is not None
            else horizon // 10
        )
        for spec in self.workload:
            if spec.reserved_rate is not None:
                self.switch.reserve_gb(
                    spec.flow.src, spec.flow.dst, spec.reserved_rate,
                    max(int(round(spec.mean_packet_flits)), 1),
                )
        stats = StatsCollector(warmup_cycles=warmup)
        radix = self.config.radix
        inputs = [_FlitInput(i, self.config) for i in range(radix)]
        out_busy = [0] * radix
        # One slot per output; a slot holds the in-flight transmission. A
        # fixed array avoids the per-cycle dict snapshot the old loop paid.
        active: List[Optional[_Transmission]] = [None] * radix
        active_count = 0
        arrivals = self._arrivals(horizon)
        for packets in arrivals.values():
            for packet in packets:
                stats.on_created(packet)
        events: List[object] = []
        grants = 0
        out_flits = [0] * radix
        probe = self.probe
        hooks = resolve_hooks(probe)
        event_hook = hooks.event
        arbitrations = 0
        declines = 0
        gl_throttles = 0
        arbiters = self.switch.arbiters
        policers = [getattr(arbiters[o], "gl_policer", None) for o in range(radix)]
        arb_cycles_for = [self.switch.arbitration_cycles_for(o) for o in range(radix)]
        collect = self.collect_events

        # Fault injection: identical hoisting and decision keys as the fast
        # kernel, so one plan produces one outcome in either engine.
        injector = _checked_injector(self.fault_plan, radix, arbiters)
        faults_stall = injector is not None and injector.has_stalls
        faults_dead = injector is not None and injector.has_dead
        faults_flips = injector is not None and injector.has_flips
        faults_drop = injector is not None and injector.has_drops
        faults_dup = injector is not None and injector.has_dups
        fault_stall_masks = 0
        fault_dead_masks = 0
        fault_flips_applied = 0
        fault_drops = 0
        fault_dups = 0

        for now in range(horizon):
            # 1. Flits cross the crossbar and free their buffer slots.
            if active_count:
                for o in range(radix):
                    tx = active[o]
                    if tx is None:
                        continue
                    if tx.first_flit_cycle <= now <= tx.last_flit_cycle:
                        tx.queue.drain_one_flit()
                        tx.port._total_occupancy -= 1
                    if now == tx.last_flit_cycle:
                        active[o] = None
                        active_count -= 1
            # 2. Arrivals, behind any overflowed packet of the same flow.
            for packet in arrivals.get(now, ()):  # noqa: B905
                port = inputs[packet.src]
                blocked = any(
                    p.flow == packet.flow for p in port.source
                )
                if blocked or not port.try_inject(packet, now):
                    port.source.append(packet)
            # 3. Drain source queues in FIFO order.
            for port in inputs:
                if not port.source:
                    continue
                still_blocked: Deque[Packet] = deque()
                while port.source:
                    head = port.source.popleft()
                    if any(p.flow == head.flow for p in still_blocked):
                        still_blocked.append(head)
                    elif not port.try_inject(head, now):
                        still_blocked.append(head)
                port.source = still_blocked
            # 3b. Counter bit-flips fire before any arbitration this cycle
            #     (same intra-cycle position as the fast kernel).
            if faults_flips:
                for spec in injector.counter_flips_at(now):
                    arbiters[spec.output].inject_counter_bitflip(
                        spec.input_port, spec.bit, now
                    )
                    fault_flips_applied += 1
                    if event_hook is not None:
                        event_hook(
                            "fault",
                            now,
                            kind="counter-bitflip",
                            output=spec.output,
                            input=spec.input_port,
                            bit=spec.bit,
                        )
            # 4. Arbitration, rotating start to match the fast kernel.
            for k in range(radix):
                o = (now + k) % radix
                if out_busy[o] > now:
                    continue
                arbiter = arbiters[o]
                policer = policers[o]
                allow_gl = policer is None or policer.eligible(now)
                requests = []
                gl_denied_inputs = []
                for port in inputs:
                    if port.busy_until > now:
                        continue
                    queued = port._total_occupancy
                    if queued == 0:
                        continue  # empty input: no head, no masked GL
                    if faults_stall and injector.stalled(port.port, now):
                        # A stalled input raises nothing this cycle: no
                        # request and no policer-throttle decision either.
                        if port.head_for_output(o, allow_gl=True) is not None:
                            fault_stall_masks += 1
                        continue
                    if faults_dead and injector.crosspoint_dead(port.port, o):
                        # A dead crosspoint cannot raise its request line;
                        # packets to this output block at the head (HOL).
                        if port.head_for_output(o, allow_gl=True) is not None:
                            fault_dead_masks += 1
                        continue
                    head = port.head_for_output(o, allow_gl=allow_gl)
                    if not allow_gl:
                        # Mirror the fast kernel: a policer-masked GL head
                        # is a throttle decision even when a GB/BE head
                        # requests in its place.
                        gl_head = port.gl.head()
                        if gl_head is not None and gl_head.dst == o:
                            gl_denied_inputs.append(port.port)
                    if head is None:
                        continue
                    requests.append(
                        Request(
                            input_port=port.port,
                            traffic_class=head.traffic_class,
                            packet_flits=head.flits,
                            queued_flits=queued,
                            arrival_cycle=(
                                head.injected_cycle
                                if head.injected_cycle is not None
                                else head.created_cycle
                            ),
                        )
                    )
                if gl_denied_inputs and policer is not None:
                    # Per-(cycle, input) accounting, matching the fast kernel.
                    for denied_input in gl_denied_inputs:
                        policer.note_throttled(now, denied_input)
                        gl_throttles += 1
                        if event_hook is not None:
                            event_hook("gl_throttle", now, output=o, input=denied_input)
                if not requests:
                    continue
                arbitrations += 1
                winner = arbiter.select(requests, now)
                if winner is None:
                    declines += 1
                    continue
                arbiter.commit(winner, now)
                port = inputs[winner.input_port]
                packet = port.head_for_output(o, allow_gl=allow_gl)
                queue = port.queue_for(packet)
                queue.start_drain(packet)
                arb = arb_cycles_for[o]
                delivered = now + arb + packet.flits
                packet.grant_cycle = now
                packet.delivered_cycle = delivered
                out_busy[o] = delivered
                port.busy_until = delivered
                active[o] = _Transmission(
                    packet=packet,
                    queue=queue,
                    port=port,
                    first_flit_cycle=now + arb + 1,
                    last_flit_cycle=delivered,
                )
                active_count += 1
                dropped = faults_drop and injector.drop_delivery(
                    o, packet.packet_id, now
                )
                if dropped:
                    # The channel still carried the flits; only the
                    # delivery accounting is lost.
                    fault_drops += 1
                    if event_hook is not None:
                        event_hook(
                            "fault",
                            now,
                            kind="packet-drop",
                            output=o,
                            input=winner.input_port,
                            packet_id=packet.packet_id,
                        )
                else:
                    stats.on_delivered(packet)
                    if faults_dup and injector.duplicate_delivery(
                        o, packet.packet_id, now
                    ):
                        stats.on_delivered(packet)
                        fault_dups += 1
                        if event_hook is not None:
                            event_hook(
                                "fault",
                                now,
                                kind="packet-dup",
                                output=o,
                                input=winner.input_port,
                                packet_id=packet.packet_id,
                            )
                grants += 1
                out_flits[o] += packet.flits
                if event_hook is not None:
                    event_hook(
                        "grant",
                        now,
                        output=o,
                        input=winner.input_port,
                        flow=str(packet.flow),
                        packet_id=packet.packet_id,
                        flits=packet.flits,
                        contenders=len(requests),
                        delivered=delivered,
                        latency=packet.latency,
                        waiting=packet.waiting_time,
                    )
                if collect:
                    events.append(
                        GrantEvent(
                            cycle=now,
                            output=o,
                            input_port=winner.input_port,
                            flow=packet.flow,
                            packet_id=packet.packet_id,
                            packet_flits=packet.flits,
                            contenders=len(requests),
                        )
                    )

        # Flush aggregates once (one wake per cycle in this engine).
        count_hook = hooks.count
        if count_hook is not None:
            for name, total in (
                ("kernel.wakes", horizon),
                ("kernel.arbitrations", arbitrations),
                ("kernel.declines", declines),
                ("kernel.grants", grants),
                ("kernel.gl_throttles", gl_throttles),
            ):
                if total:
                    count_hook(name, total)
            if injector is not None:
                # faults.* counters exist only under an active plan, so
                # empty-plan runs flush exactly what unfaulted runs do.
                for name, total in (
                    ("faults.stall_masked", fault_stall_masks),
                    ("faults.dead_crosspoint_masked", fault_dead_masks),
                    ("faults.counter_bitflips", fault_flips_applied),
                    ("faults.packet_drops", fault_drops),
                    ("faults.packet_dups", fault_dups),
                ):
                    if total:
                        count_hook(name, total)

        stats.finish(horizon)
        gl_throttle_events: Dict[int, int] = {}
        for o in range(radix):
            if policers[o] is not None:
                gl_throttle_events[o] = policers[o].throttle_events
        return SimulationResult(
            config=self.config,
            workload_name=self.workload.name,
            horizon=horizon,
            warmup_cycles=warmup,
            stats=stats,
            output_utilization={
                o: out_flits[o] / horizon for o in range(radix)
            },
            grants=grants,
            events=events,
            gl_throttle_events=gl_throttle_events,
            kernel="flit",
        )
