"""Input-port buffering (paper Sections 3.2, 3.3 and Table 1).

In the paper's switch (``config.voq=False``) each input port buffers the
three classes separately:

* **BE** — one queue per input (Table 1: 4 flits);
* **GB** — one virtual output queue *per output* (Table 1: 4 flits per
  output), so GB flows to different outputs never head-of-line block each
  other and "separation between flows in buffers" is maintained;
* **GL** — one queue per input ("GL class packets should be buffered
  separately from GB class packets", Section 3.2).

With ``config.voq=True`` the port is fully virtual-output-queued: BE and
GL also get one queue per output, eliminating head-of-line blocking for
every class. This is the input-queued switch model the iterative matching
schedulers (iSLIP, QPS-r, SW-QPS) assume; see docs/SCHEDULERS.md.

Capacities are in flits; a packet is admitted only if it fits entirely.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from ..config import SwitchConfig
from ..errors import BufferError_, SimulationError
from ..types import TrafficClass
from .flit import Packet


class FlitBuffer:
    """A FIFO of whole packets with a flit-denominated capacity.

    Args:
        capacity_flits: maximum total flits buffered; ``None`` means
            unbounded (used for source-side queues).
    """

    def __init__(self, capacity_flits: Optional[int] = None) -> None:
        if capacity_flits is not None and capacity_flits < 1:
            raise BufferError_(f"capacity_flits must be >= 1, got {capacity_flits}")
        self.capacity_flits = capacity_flits
        self._queue: Deque[Packet] = deque()
        self._occupancy = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def occupancy_flits(self) -> int:
        """Flits currently buffered."""
        return self._occupancy

    def fits(self, packet: Packet) -> bool:
        """Would ``packet`` fit entirely right now?"""
        if self.capacity_flits is None:
            return True
        return self._occupancy + packet.flits <= self.capacity_flits

    def push(self, packet: Packet) -> None:
        """Append a packet.

        Raises:
            BufferError_: if the packet does not fit (callers must check
                :meth:`fits` — backpressure is explicit, never silent).
        """
        if not self.fits(packet):
            raise BufferError_(
                f"packet of {packet.flits} flits does not fit "
                f"({self._occupancy}/{self.capacity_flits} flits occupied)"
            )
        self._queue.append(packet)
        self._occupancy += packet.flits
        if self._occupancy > self.peak_occupancy:
            self.peak_occupancy = self._occupancy

    def head(self) -> Optional[Packet]:
        """The packet at the head, or ``None`` when empty."""
        return self._queue[0] if self._queue else None

    def pop(self) -> Packet:
        """Remove and return the head packet.

        Raises:
            BufferError_: when empty.
        """
        if not self._queue:
            raise BufferError_("pop from empty buffer")
        packet = self._queue.popleft()
        self._occupancy -= packet.flits
        return packet

    def audit(self) -> int:
        """Recompute occupancy from the queued packets and verify it.

        Returns the recomputed occupancy. The contract pinned here (see
        tests/test_voq_occupancy_faults.py): the incremental ``_occupancy``
        always equals the sum over queued packets, never goes negative,
        never exceeds capacity, and ``peak_occupancy`` dominates it — no
        fault model (packet drop/dup fire *after* a packet left the
        buffer) may perturb this bookkeeping.

        Raises:
            BufferError_: if the incremental counter drifted from the
                queue contents (an accounting leak — a bug).
        """
        actual = sum(p.flits for p in self._queue)
        if actual != self._occupancy:
            raise BufferError_(
                f"occupancy leak: counter says {self._occupancy} flits but "
                f"{actual} are queued"
            )
        if self._occupancy < 0:
            raise BufferError_(f"negative occupancy {self._occupancy}")
        if self.capacity_flits is not None and self._occupancy > self.capacity_flits:
            raise BufferError_(
                f"occupancy {self._occupancy} exceeds capacity {self.capacity_flits}"
            )
        if self.peak_occupancy < self._occupancy:
            raise BufferError_(
                f"peak_occupancy {self.peak_occupancy} below current "
                f"occupancy {self._occupancy}"
            )
        return actual


class InputPort:
    """Per-input buffering for all three classes.

    With ``config.voq=False`` (the paper's switch) only GB is virtual-
    output-queued; BE and GL use one queue per input. With
    ``config.voq=True`` every class gets one queue per output — the
    ``be_queue``/``gl_queue`` attributes then do not exist and the
    per-output ``be_queues``/``gl_queues`` dicts replace them, so code
    reaching for the wrong mode's queues fails loudly.

    Args:
        port: input index.
        config: switch configuration (buffer depths, radix, VOQ mode).
    """

    def __init__(self, port: int, config: SwitchConfig) -> None:
        if not 0 <= port < config.radix:
            raise SimulationError(f"input port {port} out of range [0, {config.radix})")
        self.port = port
        self.config = config
        self.voq = config.voq
        self.gb_queues: Dict[int, FlitBuffer] = {
            out: FlitBuffer(config.gb_buffer_flits) for out in range(config.radix)
        }
        if self.voq:
            self.be_queues: Dict[int, FlitBuffer] = {
                out: FlitBuffer(config.be_buffer_flits) for out in range(config.radix)
            }
            self.gl_queues: Dict[int, FlitBuffer] = {
                out: FlitBuffer(config.gl_buffer_flits) for out in range(config.radix)
            }
        else:
            self.be_queue = FlitBuffer(config.be_buffer_flits)
            self.gl_queue = FlitBuffer(config.gl_buffer_flits)
        #: cycle until which this input's channel is held by a transmission
        self.busy_until = 0
        # Flits buffered across all classes, maintained incrementally by
        # try_inject/pop_packet (the only mutation paths) so the per-request
        # queued_flits read in the arbitration loop is O(1), not a sum over
        # radix+2 queues.
        self._total_occupancy = 0

    # ------------------------------------------------------------- admission

    def queue_for(self, packet: Packet) -> FlitBuffer:
        """The buffer a packet of this class/destination lands in."""
        if packet.traffic_class is TrafficClass.GB:
            try:
                return self.gb_queues[packet.dst]
            except KeyError:
                raise SimulationError(
                    f"packet destination {packet.dst} out of range [0, {self.config.radix})"
                ) from None
        if self.voq:
            queues = (
                self.gl_queues
                if packet.traffic_class is TrafficClass.GL
                else self.be_queues
            )
            try:
                return queues[packet.dst]
            except KeyError:
                raise SimulationError(
                    f"packet destination {packet.dst} out of range [0, {self.config.radix})"
                ) from None
        if packet.traffic_class is TrafficClass.GL:
            return self.gl_queue
        return self.be_queue

    def try_inject(self, packet: Packet, now: int) -> bool:
        """Admit a packet if its class buffer has room.

        Sets ``packet.injected_cycle`` on success. Returns ``False`` (and
        leaves the packet untouched) when the buffer is full — the caller
        keeps it in its source queue.
        """
        if packet.src != self.port:
            raise SimulationError(
                f"packet from input {packet.src} offered to port {self.port}"
            )
        queue = self.queue_for(packet)
        if not queue.fits(packet):
            return False
        packet.injected_cycle = now
        queue.push(packet)
        self._total_occupancy += packet.flits
        return True

    # -------------------------------------------------------------- requests

    def gl_head_for(self, output: int) -> Optional[Packet]:
        """The GL packet that would request ``output``, if any.

        Mode-agnostic accessor used by the simulator's policer-throttle
        accounting: classic mode has one GL queue whose head may or may
        not be addressed to ``output``; VOQ mode has a dedicated queue.
        """
        if self.voq:
            return self.gl_queues[output].head()
        gl_head = self.gl_queue.head()
        if gl_head is not None and gl_head.dst == output:
            return gl_head
        return None

    def head_for_output(self, output: int, allow_gl: bool = True) -> Optional[Packet]:
        """Highest-priority head-of-line packet destined for ``output``.

        Priority order GL > GB > BE, matching the hardware where an input
        raises its request with its most urgent packet. In classic mode BE
        and GL use one queue per input, so their heads only request the
        output they are addressed to (head-of-line blocking is real and
        modeled); in VOQ mode every class has a per-output queue and no
        class ever blocks another output's traffic.

        Args:
            output: the output being arbitrated.
            allow_gl: when ``False`` (the output's GL policer has revoked
                the class's priority), the GL head is offered *last* —
                GB and BE traffic at this input is no longer masked by a
                throttled GL queue, and the GL packet is only presented
                when nothing else wants the output (best-effort demotion).
        """
        if self.voq:
            gl_head = self.gl_queues[output].head()
            if allow_gl and gl_head is not None:
                return gl_head
            gb_head = self.gb_queues[output].head()
            if gb_head is not None:
                return gb_head
            be_head = self.be_queues[output].head()
            if be_head is not None:
                return be_head
            return gl_head  # throttled GL rides along as best-effort
        gl_head = self.gl_queue.head()
        if allow_gl and gl_head is not None and gl_head.dst == output:
            return gl_head
        gb_head = self.gb_queues[output].head()
        if gb_head is not None:
            return gb_head
        be_head = self.be_queue.head()
        if be_head is not None and be_head.dst == output:
            return be_head
        if gl_head is not None and gl_head.dst == output:
            return gl_head  # throttled GL rides along as best-effort
        return None

    def requested_outputs(self) -> List[int]:
        """Outputs this input currently has a head-of-line packet for."""
        outputs = {out for out, q in self.gb_queues.items() if q}
        if self.voq:
            outputs.update(out for out, q in self.gl_queues.items() if q)
            outputs.update(out for out, q in self.be_queues.items() if q)
            return sorted(outputs)
        gl_head = self.gl_queue.head()
        if gl_head is not None:
            outputs.add(gl_head.dst)
        be_head = self.be_queue.head()
        if be_head is not None:
            outputs.add(be_head.dst)
        return sorted(outputs)

    def voq_backlog(self, outputs: Iterable[int]) -> Dict[int, int]:
        """Flits queued per output among ``outputs`` (VOQ mode only).

        The iterative matching schedulers use these totals as request
        weights (QPS samples proportionally to them). Only outputs with a
        non-zero backlog appear in the result.

        Raises:
            SimulationError: in classic mode, where per-output backlog is
                not defined for the single-queue BE/GL classes.
        """
        if not self.voq:
            raise SimulationError(
                "voq_backlog() requires VOQ mode (config.voq=True)"
            )
        backlog: Dict[int, int] = {}
        for out in outputs:
            flits = (
                self.gl_queues[out].occupancy_flits
                + self.gb_queues[out].occupancy_flits
                + self.be_queues[out].occupancy_flits
            )
            if flits:
                backlog[out] = flits
        return backlog

    def pop_packet(self, packet: Packet) -> None:
        """Remove a granted packet, which must be at the head of its queue.

        Raises:
            SimulationError: if the packet is not the head (arbitration and
                buffering disagree — a bug, not a recoverable condition).
        """
        queue = self.queue_for(packet)
        head = queue.head()
        if head is not packet:
            raise SimulationError(
                f"granted packet {packet.packet_id} is not at the head of its queue"
            )
        queue.pop()
        self._total_occupancy -= packet.flits

    @property
    def total_occupancy_flits(self) -> int:
        """Flits buffered across all classes at this input (O(1))."""
        return self._total_occupancy

    def all_queues(self) -> List[FlitBuffer]:
        """Every class queue at this input (mode-aware; for audits/tests)."""
        queues: List[FlitBuffer] = list(self.gb_queues.values())
        if self.voq:
            queues.extend(self.gl_queues.values())
            queues.extend(self.be_queues.values())
        else:
            queues.append(self.gl_queue)
            queues.append(self.be_queue)
        return queues

    def audit_occupancy(self) -> int:
        """Verify the incremental occupancy against every queue's contents.

        Returns the recomputed total. Contract (pinned by
        tests/test_voq_occupancy_faults.py): ``_total_occupancy`` equals
        the sum of all class queues' audited occupancies at every point —
        in particular, packet-drop and packet-dup fault injections, which
        fire only after :meth:`pop_packet` removed the granted packet,
        can never leak flits into (or out of) this counter and wedge
        admission.

        Raises:
            BufferError_: if any queue's own accounting drifted.
            SimulationError: if the queues are consistent but the port's
                incremental total disagrees with their sum.
        """
        actual = sum(queue.audit() for queue in self.all_queues())
        if actual != self._total_occupancy:
            raise SimulationError(
                f"input {self.port} occupancy leak: incremental total says "
                f"{self._total_occupancy} flits but queues hold {actual}"
            )
        return actual
