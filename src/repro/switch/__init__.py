"""Cycle-accurate model of a single-stage Swizzle Switch crossbar.

The paper evaluates SSVC with "a custom, cycle-accurate simulator for the
Swizzle Switch" — this package is that simulator. It models:

* packets/flits (:mod:`repro.switch.flit`),
* per-input buffering with GB virtual output queues
  (:mod:`repro.switch.buffers`),
* output channels with single-cycle re-arbitration
  (:mod:`repro.switch.output_channel`),
* the crossbar tying ports to per-output arbiters
  (:mod:`repro.switch.crossbar`), and
* an event-driven simulation kernel with cycle-exact semantics
  (:mod:`repro.switch.simulator`).
"""

from .array_kernel import ArraySimulation
from .buffers import FlitBuffer, InputPort
from .crossbar import SwizzleSwitch
from .events import GrantEvent, PacketDelivered
from .flit import Flit, Packet
from .flit_kernel import FlitLevelSimulation
from .output_channel import OutputChannel
from .simulator import Simulation, SimulationResult

__all__ = [
    "ArraySimulation",
    "Flit",
    "FlitBuffer",
    "FlitLevelSimulation",
    "GrantEvent",
    "InputPort",
    "OutputChannel",
    "Packet",
    "PacketDelivered",
    "Simulation",
    "SimulationResult",
    "SwizzleSwitch",
]
