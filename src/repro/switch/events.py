"""Simulation event records for tracing and test introspection.

The simulator can optionally record every grant and delivery; tests use
these to hand-check schedules against the paper's arbitration rules, and
the trace tooling in :mod:`repro.traffic.trace` serializes them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import FlowId, TrafficClass


@dataclass(frozen=True)
class GrantEvent:
    """One arbitration grant.

    Attributes:
        cycle: cycle arbitration completed.
        output: output channel granted.
        input_port: winning input.
        flow: winning flow.
        packet_id: winning packet.
        packet_flits: its length.
        contenders: number of inputs that were requesting this output.
    """

    cycle: int
    output: int
    input_port: int
    flow: FlowId
    packet_id: int
    packet_flits: int
    contenders: int

    @property
    def traffic_class(self) -> TrafficClass:
        """Class of the granted packet."""
        return self.flow.traffic_class


@dataclass(frozen=True)
class PacketDelivered:
    """A packet's tail flit left its output channel.

    Attributes:
        cycle: delivery cycle.
        flow: the packet's flow.
        packet_id: the packet.
        latency: creation-to-delivery cycles.
        waiting_time: injection-to-grant cycles (Eq. 1's bounded quantity
            for GL packets).
    """

    cycle: int
    flow: FlowId
    packet_id: int
    latency: int
    waiting_time: int
