"""Event-driven simulation kernel with cycle-exact semantics.

The kernel advances between *wake times* — cycles where something can
happen: a scheduled packet arrival, an output channel (and its sending
input) becoming free, or a retry after a non-work-conserving arbiter
declined to grant. At each wake time it (1) admits arrivals into the input
port buffers (overflow waits in unbounded per-flow source queues — the
source side of the network interface), (2) tops up saturating sources, and
(3) arbitrates every idle output in a rotating order. This produces exactly
the schedule a per-cycle loop would, at a fraction of the cost, because
nothing observable changes between wake times.

Arbitration runs in one of two modes. With per-output arbiters (the
paper's switch) every idle output consults its own
:class:`~repro.qos.base.OutputArbiter` in a rotating order. With an
iterative matching scheduler (:class:`~repro.qos.iterative.
IterativeArbiter` — iSLIP, QPS-r, SW-QPS; requires ``config.voq``) the
kernel instead builds the VOQ backlog of every free input once per wake
time and applies the scheduler's switch-wide matching. Both paths share
one grant-bookkeeping closure so timing, fault accounting, and
observability cannot drift between them.

Timing model (see DESIGN.md): a grant at cycle ``t`` for an ``L``-flit
packet occupies the output channel and the winning input until
``t + arbitration_cycles + L``; with the Swizzle Switch's single
arbitration cycle a saturated channel therefore sustains ``L/(L+1)``
flits/cycle — the 0.89 ceiling of Fig. 4 for 8-flit packets.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..config import SwitchConfig
from ..core.arbitration import Request
from ..errors import ConfigError, SimulationError
from ..faults import FaultInjector, FaultKind, FaultPlan, resolve_injector
from ..metrics.counters import StatsCollector
from ..obs.probe import Probe, resolve_hooks
from ..qos.iterative import IterativeArbiter
from ..types import FlowId, TrafficClass

if False:  # TYPE_CHECKING — imported lazily at runtime to avoid a cycle
    from ..traffic.flows import Workload
    from ..traffic.generators import FlowSource
from .crossbar import ArbiterFactory, SwizzleSwitch
from .events import GrantEvent, PacketDelivered
from .flit import Packet, fresh_packet_ids


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        config: the switch configuration simulated.
        workload_name: label of the workload.
        horizon: cycles simulated.
        warmup_cycles: cycles excluded from measurement.
        stats: per-flow statistics collector (finished).
        output_utilization: delivered flits/cycle per output over the whole
            run (including warmup; per-flow rates in ``stats`` exclude it).
        grants: total arbitration grants performed.
        chained_grants: grants that skipped the arbitration bubble via
            packet chaining (0 unless ``config.packet_chaining``).
        events: grant/delivery trace when event collection was enabled.
        gl_throttle_events: per-output count of (cycle, input) denial
            decisions where the GL policer withheld absolute priority from
            a pending GL head (empty for arbiters without a
            ``gl_policer``). Two distinct GL inputs denied in the same
            cycle count as two events.
        kernel: which engine produced this result (``event``/``flit``).
    """

    config: SwitchConfig
    workload_name: str
    horizon: int
    warmup_cycles: int
    stats: StatsCollector
    output_utilization: Dict[int, float]
    grants: int
    chained_grants: int = 0
    events: List[object] = field(default_factory=list)
    gl_throttle_events: Dict[int, int] = field(default_factory=dict)
    kernel: str = "event"

    def accepted_rate(self, flow: FlowId) -> float:
        """Flow's delivered flits/cycle inside the measurement window."""
        return self.stats.accepted_rate(flow)

    def mean_latency(self, flow: FlowId) -> float:
        """Flow's mean creation-to-delivery latency in cycles."""
        return self.stats.flow_stats(flow).latency.mean

    def max_waiting(self, flow: FlowId) -> int:
        """Flow's maximum injection-to-grant waiting time in cycles."""
        return self.stats.flow_stats(flow).waiting.maximum

    def summary_table(self) -> str:
        """Per-flow offered/accepted/latency summary as an ASCII table."""
        from ..metrics.report import format_table

        cycles = self.stats.measured_cycles
        rows = []
        for flow in sorted(self.stats.flows, key=str):
            stats = self.stats.flow_stats(flow)
            delivered = stats.latency.count
            rows.append(
                (
                    str(flow),
                    stats.offered_rate(cycles),
                    stats.accepted_rate(cycles),
                    stats.latency.mean if delivered else None,
                    stats.latency.p99 if delivered else None,
                )
            )
        return format_table(
            ["flow", "offered", "accepted", "mean lat", "p99 lat"],
            rows,
            title=f"{self.workload_name}: {self.horizon} cycles "
            f"({self.warmup_cycles} warmup)",
        )


def _validate_packet_sizes(workload: "Workload", config: SwitchConfig) -> None:
    """Reject flows whose packets can never fit their class buffer.

    A packet larger than its buffer would sit in the source queue forever
    (the buffer admits whole packets only); failing fast beats a silently
    dead flow.
    """
    capacities = {
        TrafficClass.BE: config.be_buffer_flits,
        TrafficClass.GB: config.gb_buffer_flits,
        TrafficClass.GL: config.gl_buffer_flits,
    }
    for spec in workload:
        if spec.process is None:
            continue
        length = spec.packet_length
        longest = length if isinstance(length, int) else length[1]
        capacity = capacities[spec.flow.traffic_class]
        if longest > capacity:
            raise SimulationError(
                f"flow {spec.flow}: {longest}-flit packets can never fit the "
                f"{capacity}-flit {spec.flow.traffic_class.short_name} buffer"
            )


def _checked_injector(
    plan: Optional[FaultPlan], radix: int, arbiters: Sequence[object]
) -> Optional[FaultInjector]:
    """Resolve a fault plan, failing fast on faults this kernel cannot host.

    Behavioral kernels model arbitration outcomes, not bitlines, so
    circuit-level fault kinds must be injected into
    :class:`repro.circuit.fabric.ArbitrationFabric` instead; and a counter
    bit-flip needs an arbiter that actually owns an auxVC counter.
    """
    injector = resolve_injector(plan)
    if injector is None:
        return None
    if injector.has_circuit_faults:
        raise ConfigError(
            "bitline/sense faults model the arbitration circuit; inject them "
            "into repro.circuit.ArbitrationFabric, not a behavioral kernel"
        )
    for spec in injector.plan.faults:
        if spec.input_port is not None and not 0 <= spec.input_port < radix:
            raise ConfigError(
                f"{spec.kind.value} fault targets input {spec.input_port} "
                f"outside radix {radix}"
            )
        if spec.output is not None and not 0 <= spec.output < radix:
            raise ConfigError(
                f"{spec.kind.value} fault targets output {spec.output} "
                f"outside radix {radix}"
            )
        if spec.kind is FaultKind.COUNTER_BITFLIP and not hasattr(
            arbiters[spec.output], "inject_counter_bitflip"
        ):
            raise ConfigError(
                f"arbiter {getattr(arbiters[spec.output], 'name', '?')!r} at "
                f"output {spec.output} has no auxVC counter to flip"
            )
    return injector


class Simulation:
    """Couples a switch, a workload, and a statistics collector.

    Args:
        config: switch parameters.
        workload: flows to simulate (validated against the config).
        arbiter_factory: per-output arbitration policy; defaults to the
            paper's three-class SSVC stack. A factory built with
            :func:`repro.qos.shared_iterative_factory` instead selects the
            switch-wide matching path (requires ``config.voq``; packet
            chaining is rejected).
        seed: master seed; each flow gets an independent child stream so
            adding a flow never perturbs the others' arrivals.
        warmup_cycles: measurement starts here (defaults to 10% of the
            horizon, set at :meth:`run`).
        collect_events: record :class:`GrantEvent`/:class:`PacketDelivered`
            (memory-proportional to traffic; off by default).
        window_cycles: windowed-throughput bucket width.
        probe: optional :class:`~repro.obs.probe.Probe` fed kernel counters
            (wakes, heap pushes, arbitrations, declines, grants, chain
            hits, GL throttles, overflow scans) and, when its ``trace``
            flag is set, structured grant events. ``None`` (the default)
            keeps the hot path free of instrumentation work.
        fault_plan: optional :class:`~repro.faults.FaultPlan` of behavioral
            faults (input stalls, dead crosspoints, counter bit-flips,
            packet drops/dups) injected deterministically during the run.
            ``None`` or an empty plan leaves the kernel bit-identical to an
            unfaulted run; circuit-level fault kinds are rejected here (see
            :func:`_checked_injector`).
    """

    def __init__(
        self,
        config: SwitchConfig,
        workload: Workload,
        arbiter_factory: Optional[ArbiterFactory] = None,
        seed: int = 0,
        warmup_cycles: Optional[int] = None,
        collect_events: bool = False,
        window_cycles: int = 1024,
        probe: Optional[Probe] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        workload.validate(config.radix, config.gl_policer.reserved_rate)
        _validate_packet_sizes(workload, config)
        self.config = config
        self.workload = workload
        self.switch = SwizzleSwitch(config, arbiter_factory)
        self._scheduler = self._resolve_scheduler(config, self.switch)
        self.seed = seed
        self._warmup_override = warmup_cycles
        self.collect_events = collect_events
        self.window_cycles = window_cycles
        self.probe = probe
        self.fault_plan = fault_plan
        self._programmed = False

    # ----------------------------------------------------------------- setup

    @staticmethod
    def _resolve_scheduler(
        config: SwitchConfig, switch: SwizzleSwitch
    ) -> Optional[IterativeArbiter]:
        """Detect and validate an iterative matching scheduler, if any.

        Iterative schedulers compute one matching for the whole switch, so
        every output must share a single instance (built through
        :func:`repro.qos.shared_iterative_factory`), the input ports must
        be fully virtual-output-queued, and packet chaining — a per-output
        repeat-winner shortcut that would bypass the matching — is not
        modeled.

        Raises:
            ConfigError: on any violation; misconfigured matching would
                otherwise silently double-book inputs.
        """
        arbiters = switch.arbiters
        if not any(isinstance(a, IterativeArbiter) for a in arbiters):
            return None
        first = arbiters[0]
        if not isinstance(first, IterativeArbiter) or any(
            a is not first for a in arbiters
        ):
            raise ConfigError(
                "iterative schedulers are switch-wide: every output must "
                "share one instance — build the arbiter factory with "
                "repro.qos.shared_iterative_factory"
            )
        if not config.voq:
            raise ConfigError(
                f"{first.name} matches over virtual output queues; set "
                "SwitchConfig(voq=True) (classic ports only VOQ the GB class)"
            )
        if config.packet_chaining:
            raise ConfigError(
                "packet chaining is a per-output repeat-winner shortcut and "
                f"is not modeled for the {first.name} matching scheduler"
            )
        if first.num_inputs != config.radix:
            raise ConfigError(
                f"{first.name} was built for {first.num_inputs} ports but "
                f"the switch radix is {config.radix}"
            )
        return first

    def _program_switch(self) -> None:
        """Install reservations and priority levels from the workload."""
        if self._programmed:
            return
        for spec in self.workload:
            if spec.reserved_rate is not None:
                self.switch.reserve_gb(
                    spec.flow.src,
                    spec.flow.dst,
                    spec.reserved_rate,
                    max(int(round(spec.mean_packet_flits)), 1),
                )
            if spec.priority_level:
                try:
                    self.switch.set_priority_level(spec.flow.src, spec.priority_level)
                except Exception:  # reprolint: disable=swallowed-exception
                    # Levels are only meaningful for the fixed-priority
                    # baseline; other arbiters reject or ignore them by
                    # design, so a failed set_priority_level is expected.
                    pass
        self._programmed = True

    def _build_sources(self, horizon: int) -> "List[FlowSource]":
        from ..traffic.generators import FlowSource

        seeds = np.random.SeedSequence(self.seed).spawn(len(self.workload.flows))
        packet_ids = fresh_packet_ids()  # per-run ids: replayable traces
        sources = []
        for spec, child in zip(self.workload, seeds):
            if spec.process is None:
                continue  # reservation-only flow: no traffic
            sources.append(
                FlowSource(
                    flow=spec.flow,
                    process=spec.process,
                    packet_length=spec.packet_length,
                    horizon=horizon,
                    rng=np.random.default_rng(child),
                    id_source=packet_ids,
                )
            )
        return sources

    # ------------------------------------------------------------------- run

    def run(self, horizon: int) -> SimulationResult:
        """Simulate ``horizon`` cycles and return the collected results."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        warmup = (
            self._warmup_override
            if self._warmup_override is not None
            else horizon // 10
        )
        if warmup >= horizon:
            raise SimulationError(f"warmup {warmup} must be below horizon {horizon}")
        self._program_switch()
        scheduler = self._scheduler
        if scheduler is not None:
            # Sampling schedulers key every draw on (seed, cycle, round,
            # port); binding here makes replay independent of sweep fan-out.
            scheduler.bind_seed(self.seed)
        stats = StatsCollector(warmup_cycles=warmup, window_cycles=self.window_cycles)
        sources = self._build_sources(horizon)
        events: List[object] = []
        grants = 0
        probe = self.probe
        # Hooks are resolved once per run; the loop below keeps plain local
        # counters and flushes aggregates to the probe after the horizon.
        # Only trace events (ordered, payload-bearing) are emitted inline.
        hooks = resolve_hooks(probe)
        gauge_hook = hooks.gauge
        event_hook = hooks.event
        wakes = 0
        heap_pushes = 0
        arrivals = 0
        arbitrations = 0
        declines = 0
        gl_throttles = 0
        overflow_scans = 0
        max_overflow_flows = 0
        max_overflow_depth = 0
        voq_matches = 0
        voq_pairs = 0
        voq_iterations = 0
        voq_proposals = 0

        switch = self.switch
        radix = switch.radix
        inputs = switch.inputs
        outputs = switch.outputs
        arbiters = switch.arbiters
        # Per-output structures that cannot change during a run.
        policers = [getattr(arbiters[o], "gl_policer", None) for o in range(radix)]
        arb_cycles_for = [switch.arbitration_cycles_for(o) for o in range(radix)]
        packet_chaining = self.config.packet_chaining
        max_chain_length = self.config.max_chain_length
        collect = self.collect_events

        # Fault injection: resolved once; per-kind flags keep the unfaulted
        # hot path to a handful of false boolean checks.
        injector = _checked_injector(self.fault_plan, radix, arbiters)
        faults_stall = injector is not None and injector.has_stalls
        faults_dead = injector is not None and injector.has_dead
        faults_flips = injector is not None and injector.has_flips
        faults_drop = injector is not None and injector.has_drops
        faults_dup = injector is not None and injector.has_dups
        fault_stall_masks = 0
        fault_dead_masks = 0
        fault_flips_applied = 0
        fault_drops = 0
        fault_dups = 0

        # Saturating sources grouped by input so top-up is O(active inputs).
        saturating: Dict[int, List[FlowSource]] = {}
        # Scheduled arrivals as a heap of (next_time, tiebreak, source).
        arrival_heap: List = []
        for idx, source in enumerate(sources):
            if source.saturating:
                saturating.setdefault(source.flow.src, []).append(source)
            else:
                t0 = source.peek_time()
                if t0 is not None:
                    heapq.heappush(arrival_heap, (t0, idx, source))

        overflow: Dict[FlowId, Deque[Packet]] = {}

        # Packet-chaining state per output: (last winner, its delivery
        # cycle, packets chained so far). See SwitchConfig.packet_chaining.
        chain_last_input = [-1] * radix
        chain_last_delivered = [-1] * radix
        chain_length = [0] * radix
        chained_grants = 0

        wake_heap: List[int] = [0]
        pending_wakes = {0}

        def wake(t: int) -> None:
            nonlocal heap_pushes
            if t < horizon and t not in pending_wakes:
                heapq.heappush(wake_heap, t)
                pending_wakes.add(t)
                heap_pushes += 1

        # Every scheduled source's first arrival must be a wake time.
        for t0, _, _ in arrival_heap:
            wake(int(t0))

        if injector is not None:
            # Stall boundaries and bit-flip cycles must be wake times so
            # this sparse kernel re-evaluates exactly when the per-cycle
            # flit kernel would (kernel parity under an active plan).
            for t in injector.wake_cycles():
                wake(t)

        def top_up_input(port_index: int, now: int) -> None:
            for source in saturating.get(port_index, ()):  # keep buffers full
                port = inputs[port_index]
                queue = None
                while True:
                    packet = source.make_packet(now)
                    if queue is None:
                        queue = port.queue_for(packet)
                    if not queue.fits(packet):
                        source.created_count -= 1  # not offered after all
                        break
                    stats.on_created(packet)
                    if not port.try_inject(packet, now):
                        raise SimulationError("fits() and try_inject() disagree")

        def drain_overflow(now: int) -> None:
            # Scans are O(flows with backlog): flows whose queue empties are
            # pruned from the dict, so long-drained flows cost nothing here.
            nonlocal overflow_scans
            if not overflow:
                return
            overflow_scans += len(overflow)
            drained = []
            for flow, queue in overflow.items():
                port = inputs[flow.src]
                while queue and port.try_inject(queue[0], now):
                    queue.popleft()
                if not queue:
                    drained.append(flow)
            for flow in drained:
                del overflow[flow]

        def book_grant(
            o: int, in_port: int, packet: Packet, contenders: int, now: int
        ) -> int:
            """Pop the granted packet and run the shared delivery bookkeeping.

            Both arbitration paths — per-output arbiters and switch-wide
            iterative matching — funnel through here, so transmission
            timing, packet chaining, drop/dup fault accounting, statistics,
            trace/collected events, and the freed-buffer refill can never
            drift between them. Returns the delivery cycle.
            """
            nonlocal grants, chained_grants, fault_drops, fault_dups
            port = inputs[in_port]
            port.pop_packet(packet)
            arb_cycles = arb_cycles_for[o]
            if packet_chaining:
                if (
                    chain_last_input[o] == in_port
                    and chain_last_delivered[o] == now
                    and chain_length[o] < max_chain_length
                ):
                    # Back-to-back repeat winner: the chain request was
                    # raised during the previous tail flit, so no
                    # arbitration bubble is paid.
                    arb_cycles = 0
                    chain_length[o] += 1
                    chained_grants += 1
                else:
                    chain_length[o] = 0
            delivered = outputs[o].start_transmission(packet, now, arb_cycles)
            chain_last_input[o] = in_port
            chain_last_delivered[o] = delivered
            port.busy_until = delivered
            dropped = faults_drop and injector.drop_delivery(
                o, packet.packet_id, now
            )
            if dropped:
                # The channel still carried the flits; only the
                # delivery accounting is lost.
                fault_drops += 1
                if event_hook is not None:
                    event_hook(
                        "fault",
                        now,
                        kind="packet-drop",
                        output=o,
                        input=in_port,
                        packet_id=packet.packet_id,
                    )
            else:
                stats.on_delivered(packet)
                if faults_dup and injector.duplicate_delivery(
                    o, packet.packet_id, now
                ):
                    stats.on_delivered(packet)
                    fault_dups += 1
                    if event_hook is not None:
                        event_hook(
                            "fault",
                            now,
                            kind="packet-dup",
                            output=o,
                            input=in_port,
                            packet_id=packet.packet_id,
                        )
            grants += 1
            if event_hook is not None:
                event_hook(
                    "grant",
                    now,
                    output=o,
                    input=in_port,
                    flow=str(packet.flow),
                    packet_id=packet.packet_id,
                    flits=packet.flits,
                    contenders=contenders,
                    delivered=delivered,
                    latency=packet.latency,
                    waiting=packet.waiting_time,
                )
            if collect:
                events.append(
                    GrantEvent(
                        cycle=now,
                        output=o,
                        input_port=in_port,
                        flow=packet.flow,
                        packet_id=packet.packet_id,
                        packet_flits=packet.flits,
                        contenders=contenders,
                    )
                )
                if not dropped:
                    events.append(
                        PacketDelivered(
                            cycle=delivered,
                            flow=packet.flow,
                            packet_id=packet.packet_id,
                            latency=packet.latency,
                            waiting_time=packet.waiting_time,
                        )
                    )
            wake(delivered)
            # Freed buffer space: admit waiting/saturating packets now
            # so their injection timestamps are exact.
            drain_overflow(now)
            top_up_input(in_port, now)
            return delivered

        while wake_heap:
            now = heapq.heappop(wake_heap)
            pending_wakes.discard(now)
            if now >= horizon:
                continue
            wakes += 1

            # 1. Scheduled arrivals up to and including `now`.
            while arrival_heap and arrival_heap[0][0] <= now:
                _, idx, source = heapq.heappop(arrival_heap)
                packet = source.pop_scheduled()
                stats.on_created(packet)
                flow_overflow = overflow.get(packet.flow)
                port = inputs[packet.src]
                if flow_overflow:
                    flow_overflow.append(packet)  # FIFO behind older packets
                elif not port.try_inject(packet, now):
                    overflow.setdefault(packet.flow, deque()).append(packet)
                arrivals += 1
                if gauge_hook is not None:
                    queued = overflow.get(packet.flow)
                    if queued is not None:
                        if len(overflow) > max_overflow_flows:
                            max_overflow_flows = len(overflow)
                        if len(queued) > max_overflow_depth:
                            max_overflow_depth = len(queued)
                next_time = source.peek_time()
                if next_time is not None:
                    heapq.heappush(arrival_heap, (next_time, idx, source))
                    heap_pushes += 1
                    wake(int(next_time))

            # 2. Refill buffers: overflow first (older packets), then
            #    saturating sources.
            drain_overflow(now)
            for port_index in saturating:
                top_up_input(port_index, now)

            # 2b. Counter bit-flips fire before any arbitration this cycle,
            #     mirroring the flit kernel's per-cycle ordering.
            if faults_flips:
                for spec in injector.counter_flips_at(now):
                    arbiters[spec.output].inject_counter_bitflip(
                        spec.input_port, spec.bit, now
                    )
                    fault_flips_applied += 1
                    if event_hook is not None:
                        event_hook(
                            "fault",
                            now,
                            kind="counter-bitflip",
                            output=spec.output,
                            input=spec.input_port,
                            bit=spec.bit,
                        )

            # 3a. Switch-wide iterative matching: one match() call covers
            #     every idle output this cycle.
            if scheduler is not None:
                free_outputs = [o for o in range(radix) if outputs[o].is_idle(now)]
                if not free_outputs:
                    continue
                backlog: Dict[int, Dict[int, int]] = {}
                for port in inputs:
                    if port.busy_until > now or port.total_occupancy_flits == 0:
                        continue
                    if faults_stall and injector.stalled(port.port, now):
                        # A stalled input raises no request lines at all
                        # this cycle; its whole backlog is masked.
                        fault_stall_masks += 1
                        continue
                    per_port = port.voq_backlog(free_outputs)
                    if faults_dead:
                        for dead_o in list(per_port):
                            if injector.crosspoint_dead(port.port, dead_o):
                                # A dead crosspoint cannot raise its request
                                # line; that VOQ sits blocked in place.
                                del per_port[dead_o]
                                fault_dead_masks += 1
                    if per_port:
                        backlog[port.port] = per_port
                if not backlog:
                    continue
                arbitrations += 1
                matching = scheduler.match(backlog, free_outputs, now)
                voq_matches += 1
                voq_pairs += len(matching.pairs)
                voq_iterations += matching.iterations
                voq_proposals += matching.proposals
                if event_hook is not None:
                    event_hook(
                        "match",
                        now,
                        scheduler=scheduler.name,
                        requests=len(backlog),
                        free_outputs=len(free_outputs),
                        pairs=len(matching.pairs),
                        iterations=matching.iterations,
                        proposals=matching.proposals,
                    )
                if not matching.pairs:
                    declines += 1
                for in_port, o in sorted(matching.pairs, key=lambda pair: pair[1]):
                    packet = inputs[in_port].head_for_output(o, allow_gl=True)
                    if packet is None:
                        raise SimulationError(
                            f"{scheduler.name} matched input {in_port} to "
                            f"output {o} but that VOQ is empty"
                        )
                    contenders = sum(1 for b in backlog.values() if o in b)
                    book_grant(o, in_port, packet, contenders, now)
                if len({pair[0] for pair in matching.pairs}) < len(backlog):
                    # Some requesting input went unmatched (bounded
                    # iterations, a sampling collision, or a stale window
                    # slot): retry next cycle like a declining arbiter.
                    wake(now + 1)
                continue

            # 3b. Per-output arbiters: arbitrate idle outputs, rotating the
            #     start to avoid bias.
            for k in range(radix):
                o = (now + k) % radix
                channel = outputs[o]
                if not channel.is_idle(now):
                    continue
                arbiter = arbiters[o]
                policer = policers[o]
                allow_gl = policer is None or policer.eligible(now)
                requests = []
                gl_denied_inputs = []
                for port in inputs:
                    if port.busy_until > now:
                        continue
                    queued = port.total_occupancy_flits
                    if queued == 0:
                        continue  # empty input: no head, no masked GL
                    if faults_stall and injector.stalled(port.port, now):
                        # A stalled input raises nothing this cycle: no
                        # request and no policer-throttle decision either.
                        if port.head_for_output(o, allow_gl=True) is not None:
                            fault_stall_masks += 1
                        continue
                    if faults_dead and injector.crosspoint_dead(port.port, o):
                        # A dead crosspoint cannot raise its request line;
                        # packets to this output block at the head (HOL).
                        if port.head_for_output(o, allow_gl=True) is not None:
                            fault_dead_masks += 1
                        continue
                    head = port.head_for_output(o, allow_gl=allow_gl)
                    if not allow_gl:
                        # A GL head masked by the policer is a throttle
                        # decision even though it never becomes a request
                        # (the GB/BE head in front of it requests instead).
                        if port.gl_head_for(o) is not None:
                            gl_denied_inputs.append(port.port)
                    if head is None:
                        continue
                    requests.append(
                        Request(
                            input_port=port.port,
                            traffic_class=head.traffic_class,
                            packet_flits=head.flits,
                            queued_flits=queued,
                            arrival_cycle=(
                                head.injected_cycle
                                if head.injected_cycle is not None
                                else head.created_cycle
                            ),
                        )
                    )
                if gl_denied_inputs and policer is not None:
                    # One throttle event per denied (cycle, input) pair; the
                    # arbiter's own note_throttled for demoted GL requests
                    # folds into these via the policer's per-cycle dedupe.
                    for denied_input in gl_denied_inputs:
                        policer.note_throttled(now, denied_input)
                        gl_throttles += 1
                        if event_hook is not None:
                            event_hook("gl_throttle", now, output=o, input=denied_input)
                if not requests:
                    continue
                arbitrations += 1
                winner = arbiter.select(requests, now)
                if winner is None:
                    declines += 1
                    wake(now + 1)  # non-work-conserving decline: retry
                    continue
                arbiter.commit(winner, now)
                port = inputs[winner.input_port]
                packet = port.head_for_output(o, allow_gl=allow_gl)
                if packet is None or packet.flits != winner.packet_flits:
                    raise SimulationError(
                        f"arbiter granted a request that is no longer head-of-line "
                        f"at input {winner.input_port}"
                    )
                book_grant(o, winner.input_port, packet, len(requests), now)

        # Flush locally-accumulated aggregates to the probe once. Counters
        # that never fired stay absent, matching the old inline behaviour.
        count_hook = hooks.count
        if count_hook is not None:
            for name, total in (
                ("kernel.wakes", wakes),
                ("kernel.heap_pushes", heap_pushes),
                ("kernel.arrivals", arrivals),
                ("kernel.arbitrations", arbitrations),
                ("kernel.declines", declines),
                ("kernel.grants", grants),
                ("kernel.chain_grants", chained_grants),
                ("kernel.gl_throttles", gl_throttles),
                ("kernel.overflow_flows_scanned", overflow_scans),
            ):
                if total:
                    count_hook(name, total)
            if scheduler is not None:
                # voq.* counters exist only under a matching scheduler, so
                # per-output-arbiter runs flush exactly what they used to.
                for name, total in (
                    ("voq.matches", voq_matches),
                    ("voq.matched_pairs", voq_pairs),
                    ("voq.iterations", voq_iterations),
                    ("voq.proposals", voq_proposals),
                ):
                    if total:
                        count_hook(name, total)
            if injector is not None:
                # faults.* counters exist only under an active plan, so
                # empty-plan runs flush exactly what unfaulted runs do.
                for name, total in (
                    ("faults.stall_masked", fault_stall_masks),
                    ("faults.dead_crosspoint_masked", fault_dead_masks),
                    ("faults.counter_bitflips", fault_flips_applied),
                    ("faults.packet_drops", fault_drops),
                    ("faults.packet_dups", fault_dups),
                ):
                    if total:
                        count_hook(name, total)
        if gauge_hook is not None:
            if max_overflow_flows:
                gauge_hook("kernel.overflow_flows", max_overflow_flows)
            if max_overflow_depth:
                gauge_hook("kernel.overflow_queue_depth", max_overflow_depth)

        stats.finish(horizon)
        gl_throttle_events: Dict[int, int] = {}
        for o in range(radix):
            if policers[o] is not None:
                gl_throttle_events[o] = policers[o].throttle_events
        return SimulationResult(
            chained_grants=chained_grants,
            config=self.config,
            workload_name=self.workload.name,
            horizon=horizon,
            warmup_cycles=warmup,
            stats=stats,
            output_utilization={
                o: outputs[o].utilization(horizon) for o in range(radix)
            },
            grants=grants,
            events=events,
            gl_throttle_events=gl_throttle_events,
        )
