"""Packets and flits.

The simulator is packet-granular with flit-accurate timing: a packet of
``flits`` flits holds its output channel for exactly ``flits`` data cycles,
so no per-flit objects are needed on the fast path. :class:`Flit` is still
provided for tests, traces, and examples that want to reason about
individual bus beats (:meth:`Packet.expand_flits`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError
from ..types import FlowId, TrafficClass

# Fallback id stream for packets constructed directly (tests, examples).
# Simulators do NOT use this: each run owns a fresh counter (see
# ``fresh_packet_ids``) so two runs with the same seed produce bit-identical
# event streams — process-global state would make packet ids depend on what
# ran earlier in the interpreter (tests/test_determinism_hash.py).
_packet_ids = itertools.count()


def fresh_packet_ids() -> "itertools.count[int]":
    """A per-run packet id counter starting at 0.

    Every simulator run must allocate its own stream and stamp packets
    explicitly; replayability of event traces depends on it.
    """
    return itertools.count()


@dataclass
class Packet:
    """One network packet.

    Attributes:
        flow: the (source, destination, class) triple the packet belongs to.
        flits: packet length in flits.
        created_cycle: cycle the source generated the packet (latency is
            measured from here, so source queueing is included — the
            application-visible figure).
        injected_cycle: cycle the packet entered the input port buffer.
        grant_cycle: cycle its arbitration completed (None until granted).
        delivered_cycle: cycle its last flit left the output (None until
            delivered).
    """

    flow: FlowId
    flits: int
    created_cycle: int
    injected_cycle: Optional[int] = None
    grant_cycle: Optional[int] = None
    delivered_cycle: Optional[int] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.flits <= 0:
            raise SimulationError(f"packet must have >= 1 flit, got {self.flits}")
        if self.created_cycle < 0:
            raise SimulationError(f"created_cycle must be >= 0, got {self.created_cycle}")

    # ------------------------------------------------------------ properties

    @property
    def src(self) -> int:
        """Source input port."""
        return self.flow.src

    @property
    def dst(self) -> int:
        """Destination output port."""
        return self.flow.dst

    @property
    def traffic_class(self) -> TrafficClass:
        """The packet's traffic class."""
        return self.flow.traffic_class

    @property
    def latency(self) -> int:
        """Creation-to-delivery latency in cycles.

        Raises:
            SimulationError: if the packet has not been delivered yet.
        """
        if self.delivered_cycle is None:
            raise SimulationError(f"packet {self.packet_id} not delivered yet")
        return self.delivered_cycle - self.created_cycle

    @property
    def waiting_time(self) -> int:
        """Injection-to-grant waiting time at the switch, in cycles.

        This is the quantity bounded by Eq. 1 for GL packets: time spent
        buffered at the input port before winning arbitration.
        """
        if self.grant_cycle is None:
            raise SimulationError(f"packet {self.packet_id} not granted yet")
        start = self.injected_cycle if self.injected_cycle is not None else self.created_cycle
        return self.grant_cycle - start

    def expand_flits(self) -> List["Flit"]:
        """Materialize the packet's flits (head/body/tail), for tracing."""
        return [
            Flit(
                packet_id=self.packet_id,
                flow=self.flow,
                index=i,
                is_head=(i == 0),
                is_tail=(i == self.flits - 1),
            )
            for i in range(self.flits)
        ]


@dataclass(frozen=True)
class Flit:
    """One bus beat of a packet (head, body, or tail).

    Attributes:
        packet_id: owning packet.
        flow: owning flow.
        index: position within the packet (0 = head).
        is_head: True for the first flit (carries routing/arbitration info).
        is_tail: True for the last flit (releases the channel).
    """

    packet_id: int
    flow: FlowId
    index: int
    is_head: bool
    is_tail: bool

    def __post_init__(self) -> None:
        if self.index < 0:
            raise SimulationError(f"flit index must be >= 0, got {self.index}")
