"""Array-batched simulation kernel: one cycle's arbitration as matrix ops.

:class:`ArraySimulation` reproduces the event kernel's schedule bit for bit
(same wake times, same grants, same trace events, same probe counters) while
replacing the per-output, per-input Python arbitration loop with NumPy
integer matrix operations batched across **all outputs at once**:

* request state per class lives in ``(output, input)`` matrices — GB head
  flits, GL/BE head destinations, auxVC counters in exact subtick units;
* the SSVC coarse-level compare is a floor-divide + minimum over the
  counter matrix (:func:`repro.core.vectorized.thermometer_levels`);
* the GB thermometer mask and the GL > GB > BE plane priority collapse
  into one integer *coarse band* per crosspoint;
* the LRG tie-break is a per-output rank vector fused into a composite key
  ``coarse * radix + rank`` whose row-wise argmin is the grant decision;
* GL policer eligibility is one integer threshold per output
  (:func:`repro.core.vectorized.gl_eligibility_threshold`), recomputed only
  when the usage clock moves.

The grant path compares **integers only** — the scalar stack's one float
quantity (the policer clock) is folded into an integer cycle threshold
outside the per-cycle loop, and every counter uses the same subtick units
as :class:`repro.core.ssvc.SSVCCore`, so equality with the reference kernel
is exact, not approximate. ``tests/test_array_kernel_parity.py`` holds the
kernel to that contract on uniform, hotspot, GL-policed, and faulted
scenarios; see docs/KERNELS.md for the parity contract and the reasoning
behind the incremental (dirty-row) rebuild scheme.

The kernel intentionally supports exactly the paper's three-class SSVC
arbitration stack (the :class:`~repro.qos.three_class.ThreeClassArbiter`
with an SSVC GB plane — the default arbiter). Alternative arbiters (plain
LRG, WFQ, fixed-priority baselines) and packet chaining stay on the event
kernel, which remains the oracle.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Set

import numpy as np

from ..config import SwitchConfig
from ..core import vectorized as vec
from ..errors import ArbitrationError, ConfigError, SimulationError
from ..faults import FaultPlan
from ..metrics.counters import StatsCollector
from ..obs.probe import Probe, resolve_hooks
from ..qos.ssvc_arbiter import SSVCArbiter
from ..qos.three_class import ThreeClassArbiter
from ..types import CounterMode, FlowId, TrafficClass
from .crossbar import ArbiterFactory
from .events import GrantEvent, PacketDelivered
from .flit import Packet
from .simulator import Simulation, SimulationResult, _checked_injector

if False:  # TYPE_CHECKING — imported lazily at runtime to avoid a cycle
    from ..traffic.flows import Workload
    from ..traffic.generators import FlowSource

#: Coarse band of a crosspoint presenting nothing (mirrors vectorized.py).
_NO_REQ = vec.NO_REQUEST
#: Masked-entry sentinel (busy/stalled/dead/empty inputs).
_BIG = vec.MASKED


class ArraySimulation(Simulation):
    """Batched-arbitration twin of :class:`Simulation` (``kernel="array"``).

    Accepts the same arguments as :class:`Simulation` and produces a
    bit-identical :class:`SimulationResult` (``result.kernel == "array"``).
    Raises :class:`ConfigError` at construction for features the batched
    backend does not model: packet chaining and non-three-class arbiters.
    """

    def __init__(
        self,
        config: SwitchConfig,
        workload: "Workload",
        arbiter_factory: Optional[ArbiterFactory] = None,
        seed: int = 0,
        warmup_cycles: Optional[int] = None,
        collect_events: bool = False,
        window_cycles: int = 1024,
        probe: Optional[Probe] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__(
            config,
            workload,
            arbiter_factory=arbiter_factory,
            seed=seed,
            warmup_cycles=warmup_cycles,
            collect_events=collect_events,
            window_cycles=window_cycles,
            probe=probe,
            fault_plan=fault_plan,
        )
        if config.packet_chaining:
            raise ConfigError(
                "the array kernel does not model packet chaining; use the "
                "event kernel for chained-grant experiments"
            )
        if config.voq:
            raise ConfigError(
                "the array kernel vectorizes the classic partially-queued "
                "ports; full-VOQ mode (config.voq) needs the event kernel"
            )
        stacks: List[ThreeClassArbiter] = []
        for o, arb in enumerate(self.switch.arbiters):
            if not isinstance(arb, ThreeClassArbiter) or not isinstance(
                arb.gb_arbiter, SSVCArbiter
            ):
                raise ConfigError(
                    f"the array kernel vectorizes the three-class SSVC stack; "
                    f"output {o} uses arbiter {getattr(arb, 'name', '?')!r} "
                    "(use the event kernel for other arbitration policies)"
                )
            stacks.append(arb)
        self._stacks = stacks
        if (config.qos.levels + 2) * config.radix >= _NO_REQ:
            raise ConfigError(
                f"radix {config.radix} with {config.qos.levels} coarse levels "
                "overflows the array kernel's composite priority key"
            )

    # ------------------------------------------------------------------- run

    def run(self, horizon: int) -> SimulationResult:  # noqa: C901 (kept as one
        # loop on purpose — the event kernel's run() is the line-for-line
        # template and parity auditing needs the same control flow shape)
        """Simulate ``horizon`` cycles and return the collected results."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        warmup = (
            self._warmup_override
            if self._warmup_override is not None
            else horizon // 10
        )
        if warmup >= horizon:
            raise SimulationError(f"warmup {warmup} must be below horizon {horizon}")
        self._program_switch()
        stats = StatsCollector(warmup_cycles=warmup, window_cycles=self.window_cycles)
        sources = self._build_sources(horizon)
        events: List[object] = []
        grants = 0
        probe = self.probe
        hooks = resolve_hooks(probe)
        gauge_hook = hooks.gauge
        event_hook = hooks.event
        wakes = 0
        heap_pushes = 0
        arrivals = 0
        arbitrations = 0
        gl_throttles = 0
        overflow_scans = 0
        max_overflow_flows = 0
        max_overflow_depth = 0

        switch = self.switch
        n = switch.radix
        inputs = switch.inputs
        outputs = switch.outputs
        arbiters = switch.arbiters
        stacks = self._stacks
        policers = [stack.gl_policer for stack in stacks]
        arb_cycles_for = [switch.arbitration_cycles_for(o) for o in range(n)]
        collect = self.collect_events
        qos = self.config.qos
        levels = qos.levels
        top_level = levels - 1
        quantum = qos.quantum
        counter_bits = qos.counter_bits
        mode = qos.counter_mode
        sync_needed = mode is CounterMode.SUBTRACT

        injector = _checked_injector(self.fault_plan, n, arbiters)
        faults_stall = injector is not None and injector.has_stalls
        faults_dead = injector is not None and injector.has_dead
        faults_flips = injector is not None and injector.has_flips
        faults_drop = injector is not None and injector.has_drops
        faults_dup = injector is not None and injector.has_dups
        fault_stall_masks = 0
        fault_dead_masks = 0
        fault_flips_applied = 0
        fault_drops = 0
        fault_dups = 0

        # ---------------------------------------------- vectorized QoS state
        # Matrices are [output, input] in int64; counters use the exact
        # subtick units exported by each output's SSVCCore so the integer
        # arithmetic below is the reference arithmetic, just batched.
        value = np.zeros((n, n), dtype=np.int64)
        vtick = np.zeros((n, n), dtype=np.int64)
        registered = np.zeros((n, n), dtype=np.bool_)
        epoch_mat = np.zeros((n, n), dtype=np.int64)
        rank = np.zeros((n, n), dtype=np.int64)
        qn: List[int] = []
        sat: List[int] = []
        scale: List[int] = []
        thr: List[int] = []
        for o, stack in enumerate(stacks):
            state = stack.gb_arbiter.core.export_state()  # type: ignore[union-attr]
            qn.append(state.quantum_num)
            sat.append(state.saturation_num)
            scale.append(state.scale)
            if state.saturation_num + state.quantum_num >= 1 << 62:
                raise ConfigError(
                    f"output {o}: subtick scale {state.scale} puts the "
                    "saturation register beyond the array kernel's int64 range"
                )
            for i, (vtick_num, value_num, epoch) in state.flows.items():
                vtick[o, i] = vtick_num
                value[o, i] = value_num
                epoch_mat[o, i] = epoch
                registered[o, i] = True
            rank[o] = vec.lrg_ranks(stack.lrg.order)
            pol = policers[o]
            thr.append(
                vec.gl_eligibility_threshold(
                    pol.usage_clock, pol.config.burst_window, pol.config.reserved_rate
                )
            )
        qn_col = np.array(qn, dtype=np.int64).reshape(n, 1)
        # Outputs whose eligibility can flip over time (positive reservation
        # with a finite burst window); the rest are constant for the run.
        dynamic_policed = [
            o
            for o, pol in enumerate(policers)
            if pol.config.reserved_rate > 0.0 and pol.config.burst_window is not None
        ]
        allow: List[bool] = [0 >= t for t in thr]
        min_epoch_done = int(epoch_mat.min()) if sync_needed else 0

        # ----------------------------------------------------- head mirrors
        gl_dst = np.full(n, -1, dtype=np.int64)
        gl_flits = np.zeros(n, dtype=np.int64)
        be_dst = np.full(n, -1, dtype=np.int64)
        be_flits = np.zeros(n, dtype=np.int64)
        gb_head = np.zeros((n, n), dtype=np.int64)
        busy_arr = np.zeros(n, dtype=np.int64)
        occ_nz = np.zeros(n, dtype=np.bool_)
        gl_count = 0
        be_count = 0
        for i, port in enumerate(inputs):
            head = port.gl_queue.head()
            if head is not None:
                gl_dst[i] = head.dst
                gl_flits[i] = head.flits
                gl_count += 1
            head = port.be_queue.head()
            if head is not None:
                be_dst[i] = head.dst
                be_flits[i] = head.flits
                be_count += 1
            for o in range(n):
                gb = port.gb_queues[o].head()
                if gb is not None:
                    gb_head[o, i] = gb.flits
            busy_arr[i] = port.busy_until
            occ_nz[i] = port.total_occupancy_flits > 0
        out_busy = [outputs[o].busy_until for o in range(n)]

        coarse = np.full((n, n), _NO_REQ, dtype=np.int64)
        key = np.zeros((n, n), dtype=np.int64)
        rowdirty: Set[int] = set(range(n))
        keydirty: Set[int] = set()
        # Requesting crosspoints per output row: a row whose count is zero
        # has nothing to arbitrate, throttle, or fault-mask this cycle, so
        # the per-wake work scales with *contended* outputs, not radix.
        present_count = [0] * n
        active = np.empty(n, dtype=np.bool_)
        colok_buf = np.empty(n, dtype=np.bool_)
        rowmask_buf = np.empty(n, dtype=np.bool_)
        stalled_np = np.zeros(n, dtype=np.bool_)
        live = (
            np.array(
                [
                    [not injector.crosspoint_dead(i, o) for i in range(n)]
                    for o in range(n)
                ],
                dtype=np.bool_,
            )
            if faults_dead and injector is not None
            else np.ones((n, n), dtype=np.bool_)
        )
        noreq_limit = _NO_REQ * n

        # --------------------------------------------- incremental rebuilds

        def rebuild_coarse_row(o: int) -> None:
            """Recompute one output's coarse bands from the head mirrors."""
            lvl = value[o] // qn[o]
            np.minimum(lvl, top_level, out=lvl)
            gb_here = gb_head[o] != 0
            if bool(np.any(gb_here & ~registered[o])):
                # tie-break: only names the first offender for the error
                # message; the raise aborts the run either way.
                bad = int(np.argmax(gb_here & ~registered[o]))
                raise ArbitrationError(
                    f"input {bad} has no GB reservation at this output"
                )
            if gl_count or be_count:
                coarse[o] = vec.coarse_row(
                    gl_dst == o, gb_here, be_dst == o, lvl, allow[o], levels
                )
            else:
                lvl += 1
                coarse[o] = np.where(gb_here, lvl, _NO_REQ)
            present_count[o] = int(np.count_nonzero(coarse[o] != _NO_REQ))

        def refresh_entry(o: int, i: int) -> None:
            """Recompute one crosspoint's coarse band (head/counter change)."""
            if allow[o] and int(gl_dst[i]) == o:
                band = 0
            elif int(gb_head[o, i]) != 0:
                if not registered[o, i]:
                    raise ArbitrationError(
                        f"input {i} has no GB reservation at this output"
                    )
                lvl = int(value[o, i]) // qn[o]
                band = (lvl if lvl < top_level else top_level) + 1
            elif int(be_dst[i]) == o or int(gl_dst[i]) == o:
                band = levels + 1
            else:
                band = _NO_REQ
            was_present = int(coarse[o, i]) != _NO_REQ
            coarse[o, i] = band
            if (band != _NO_REQ) != was_present:
                present_count[o] += 1 if band != _NO_REQ else -1
            keydirty.add(o)

        def note_new_head(flow: FlowId, flits: int, dst: int) -> None:
            """A previously-empty queue gained a head packet."""
            nonlocal gl_count, be_count
            i = flow.src
            cls = flow.traffic_class
            if cls is TrafficClass.GB:
                gb_head[dst, i] = flits
            elif cls is TrafficClass.GL:
                gl_dst[i] = dst
                gl_flits[i] = flits
                gl_count += 1
            else:
                be_dst[i] = dst
                be_flits[i] = flits
                be_count += 1
            refresh_entry(dst, i)

        # ------------------------------------------------- arrival plumbing
        def _queue_of(flow: FlowId):  # noqa: ANN202 - FlitBuffer, kept terse
            port = inputs[flow.src]
            if flow.traffic_class is TrafficClass.GB:
                return port.gb_queues[flow.dst]
            if flow.traffic_class is TrafficClass.GL:
                return port.gl_queue
            return port.be_queue

        # Saturating sources probe their buffer every wake; precompute the
        # target queue, capacity, and id-burn hook per source so the common
        # buffer-still-full probe is one arithmetic compare (the event
        # kernel spends a throwaway make_packet + rollback per probe).
        # Range-length sources (length 0 below) draw packet lengths from
        # their RNG, so they keep the reference path verbatim.
        saturating: Dict[int, List[tuple]] = {}
        arrival_heap: List = []
        for idx, source in enumerate(sources):
            if source.saturating:
                if isinstance(source.packet_length, int):
                    queue = _queue_of(source.flow)
                    entry = (
                        source,
                        source.packet_length,
                        queue,
                        queue.capacity_flits,
                        source.skip_packet,
                    )
                else:
                    entry = (source, 0, None, None, None)
                saturating.setdefault(source.flow.src, []).append(entry)
            else:
                t0 = source.peek_time()
                if t0 is not None:
                    heapq.heappush(arrival_heap, (t0, idx, source))

        overflow: Dict[FlowId, Deque[Packet]] = {}

        wake_heap: List[int] = [0]
        pending_wakes = {0}

        def wake(t: int) -> None:
            nonlocal heap_pushes
            if t < horizon and t not in pending_wakes:
                heapq.heappush(wake_heap, t)
                pending_wakes.add(t)
                heap_pushes += 1

        for t0, _, _ in arrival_heap:
            wake(int(t0))

        if injector is not None:
            for t in injector.wake_cycles():
                wake(t)

        def inject_arrival(packet: Packet, now: int) -> None:
            """Admit one scheduled arrival, mirroring head state on success."""
            port = inputs[packet.src]
            flow_overflow = overflow.get(packet.flow)
            if flow_overflow:
                flow_overflow.append(packet)  # FIFO behind older packets
                return
            if port.try_inject(packet, now):
                occ_nz[packet.src] = True
                # A one-packet queue means this inject created the head.
                if len(port.queue_for(packet)) == 1:
                    note_new_head(packet.flow, packet.flits, packet.dst)
            else:
                overflow.setdefault(packet.flow, deque()).append(packet)

        def top_up_input(port_index: int, now: int) -> None:
            # Same id/created_count accounting as the event kernel: the
            # fixed-length path prechecks capacity arithmetically and burns
            # the abandoned attempt's id (exactly the make_packet + rollback
            # of the reference, minus the throwaway Packet).
            entries = saturating.get(port_index)
            if entries is None:
                return
            port = inputs[port_index]
            for source, length, queue, cap, burn_id in entries:
                injected = False
                if length:
                    if cap is not None and queue.occupancy_flits + length > cap:
                        burn_id()  # the probe the event kernel rolls back
                        continue
                    was_empty = queue.head() is None
                    while cap is None or queue.occupancy_flits + length <= cap:
                        packet = source.make_packet(now)
                        stats.on_created(packet)
                        if not port.try_inject(packet, now):
                            raise SimulationError("fits() and try_inject() disagree")
                        injected = True
                    burn_id()
                else:
                    queue = None
                    was_empty = False
                    while True:
                        packet = source.make_packet(now)
                        if queue is None:
                            queue = port.queue_for(packet)
                            was_empty = queue.head() is None
                        if not queue.fits(packet):
                            source.created_count -= 1  # not offered after all
                            break
                        stats.on_created(packet)
                        if not port.try_inject(packet, now):
                            raise SimulationError("fits() and try_inject() disagree")
                        injected = True
                if injected:
                    occ_nz[port_index] = True
                    if was_empty:
                        head = queue.head()
                        assert head is not None
                        note_new_head(source.flow, head.flits, head.dst)

        def drain_overflow(now: int) -> None:
            nonlocal overflow_scans
            if not overflow:
                return
            overflow_scans += len(overflow)
            drained = []
            for flow, queue in overflow.items():
                port = inputs[flow.src]
                packet = queue[0]
                if not port.try_inject(packet, now):
                    continue  # buffer still full — the common case
                queue.popleft()
                target = port.queue_for(packet)
                became_head = len(target) == 1
                while queue and port.try_inject(queue[0], now):
                    queue.popleft()
                occ_nz[flow.src] = True
                if became_head:
                    head = target.head()
                    assert head is not None
                    note_new_head(flow, head.flits, head.dst)
                if not queue:
                    drained.append(flow)
            for flow in drained:
                del overflow[flow]

        # ------------------------------------------------------- main loop
        while wake_heap:
            now = heapq.heappop(wake_heap)
            pending_wakes.discard(now)
            if now >= horizon:
                continue
            wakes += 1

            # 0a. Eager SUBTRACT-mode window decay: the reference core syncs
            #     each flow lazily at first touch within a cycle; applying
            #     the identical clamped decay to the whole matrix up front
            #     is equivalent (max(max(v-a,0)-b,0) == max(v-a-b,0)) and
            #     makes every later read this wake sync-free.
            if sync_needed:
                now_epoch = now // quantum
                if now_epoch > min_epoch_done:
                    delta = now_epoch - epoch_mat
                    np.maximum(delta, 0, out=delta)
                    np.minimum(delta, levels, out=delta)
                    value -= delta * qn_col
                    np.maximum(value, 0, out=value)
                    np.maximum(epoch_mat, now_epoch, out=epoch_mat)
                    min_epoch_done = now_epoch
                    rowdirty.update(range(n))

            # 0b. GL eligibility thresholds -> per-output allow bits.
            for o in dynamic_policed:
                eligible = now >= thr[o]
                if eligible != allow[o]:
                    allow[o] = eligible
                    if gl_count:
                        rowdirty.add(o)

            # 1. Scheduled arrivals up to and including `now`.
            while arrival_heap and arrival_heap[0][0] <= now:
                _, idx, source = heapq.heappop(arrival_heap)
                packet = source.pop_scheduled()
                stats.on_created(packet)
                inject_arrival(packet, now)
                arrivals += 1
                if gauge_hook is not None:
                    queued = overflow.get(packet.flow)
                    if queued is not None:
                        if len(overflow) > max_overflow_flows:
                            max_overflow_flows = len(overflow)
                        if len(queued) > max_overflow_depth:
                            max_overflow_depth = len(queued)
                next_time = source.peek_time()
                if next_time is not None:
                    heapq.heappush(arrival_heap, (next_time, idx, source))
                    heap_pushes += 1
                    wake(int(next_time))

            # 2. Refill buffers: overflow first (older packets), then
            #    saturating sources.
            drain_overflow(now)
            for port_index in saturating:
                top_up_input(port_index, now)

            # 2b. Counter bit-flips fire before any arbitration this cycle.
            if faults_flips and injector is not None:
                for spec in injector.counter_flips_at(now):
                    o_f, i_f, bit = spec.output, spec.input_port, spec.bit
                    if bit < 0 or bit >= counter_bits:
                        raise ConfigError(
                            f"bit {bit} outside the {counter_bits}-bit register"
                        )
                    if not registered[o_f, i_f]:
                        raise ArbitrationError(
                            f"input {i_f} has no GB reservation at this output"
                        )
                    cycles = int(value[o_f, i_f]) // scale[o_f]
                    flipped = int(value[o_f, i_f]) + (
                        (cycles ^ (1 << bit)) - cycles
                    ) * scale[o_f]
                    if flipped > sat[o_f]:
                        flipped = sat[o_f]
                    value[o_f, i_f] = flipped
                    refresh_entry(o_f, i_f)
                    fault_flips_applied += 1
                    if event_hook is not None:
                        event_hook(
                            "fault",
                            now,
                            kind="counter-bitflip",
                            output=o_f,
                            input=i_f,
                            bit=bit,
                        )

            # 3. Rebuild dirty priority rows, then batch-arbitrate.
            if rowdirty:
                for o in rowdirty:
                    rebuild_coarse_row(o)
                keydirty |= rowdirty
                rowdirty.clear()
            if keydirty:
                for o in keydirty:
                    np.multiply(coarse[o], n, out=key[o])
                    key[o] += rank[o]
                keydirty.clear()

            # 4. Arbitrate idle outputs, rotating the start to avoid bias.
            #    Rows with no requesting crosspoint (the common case away
            #    from contended outputs) are skipped before any array work;
            #    the availability columns are built lazily on the first row
            #    that needs them.
            cols_ready = False
            col_ok = active
            for k in range(n):
                o = (now + k) % n
                if out_busy[o] > now or not present_count[o]:
                    continue
                if not cols_ready:
                    np.less_equal(busy_arr, now, out=active)
                    np.logical_and(active, occ_nz, out=active)
                    if faults_stall and injector is not None:
                        for i in range(n):
                            stalled_np[i] = injector.stalled(i, now)
                        np.logical_not(stalled_np, out=colok_buf)
                        np.logical_and(active, colok_buf, out=colok_buf)
                        col_ok = colok_buf
                    else:
                        col_ok = active
                    cols_ready = True

                if faults_stall or faults_dead:
                    present = coarse[o] < _NO_REQ
                    if faults_stall:
                        fault_stall_masks += int(
                            np.count_nonzero(active & stalled_np & present)
                        )
                        avail = active & ~stalled_np
                    else:
                        avail = active
                    if faults_dead:
                        fault_dead_masks += int(
                            np.count_nonzero(avail & ~live[o] & present)
                        )

                if gl_count and not allow[o]:
                    denied = active & (gl_dst == o)
                    if faults_stall:
                        denied &= ~stalled_np
                    if faults_dead:
                        denied &= live[o]
                    if bool(denied.any()):
                        policer = policers[o]
                        for i in np.nonzero(denied)[0].tolist():
                            policer.note_throttled(now, i)
                            gl_throttles += 1
                            if event_hook is not None:
                                event_hook("gl_throttle", now, output=o, input=i)

                if faults_dead:
                    np.logical_and(col_ok, live[o], out=rowmask_buf)
                    row = np.where(rowmask_buf, key[o], _BIG)
                else:
                    row = np.where(col_ok, key[o], _BIG)
                # tie-break: composite keys are unique within a row (LRG
                # ranks are a permutation), so argmin never faces a tie.
                w = int(row.argmin())
                mv = int(row[w])
                if mv >= noreq_limit:
                    continue
                arbitrations += 1
                band = mv // n
                allow_o = allow[o]

                # The event kernel's select() resolved; derive the winning
                # head's class and flits from the mirrors (the composite
                # band encodes the presented head unambiguously).
                if band == 0:
                    expected = int(gl_flits[w])
                    winner_class = TrafficClass.GL
                    eligible_gl = True
                elif band <= levels:
                    expected = int(gb_head[o, w])
                    winner_class = TrafficClass.GB
                    eligible_gl = False
                elif int(be_dst[w]) == o:
                    expected = int(be_flits[w])
                    winner_class = TrafficClass.BE
                    eligible_gl = False
                else:
                    expected = int(gl_flits[w])  # policer-demoted GL head
                    winner_class = TrafficClass.GL
                    eligible_gl = False

                contenders = 0
                if event_hook is not None or collect:
                    contenders = int(np.count_nonzero(row < _NO_REQ))

                # Commit — the exact grant-time updates of the scalar stack.
                if winner_class is TrafficClass.GB:
                    v = int(value[o, w]) + int(vtick[o, w])
                    if sync_needed:
                        # SUBTRACT: only the winner can newly reach
                        # saturation (every other counter was clamped when
                        # it last changed), so a scalar clamp suffices.
                        if v > sat[o]:
                            v = sat[o]
                        value[o, w] = v
                    else:
                        value[o, w] = v
                        if int(value[o].max()) >= sat[o]:
                            np.minimum(value[o], sat[o], out=value[o])
                            if mode is CounterMode.HALVE:
                                value[o] //= 2
                                stacks[o].gb_arbiter.core.halve_events += 1  # type: ignore[union-attr]
                            else:
                                value[o].fill(0)
                                stacks[o].gb_arbiter.core.reset_events += 1  # type: ignore[union-attr]
                            rowdirty.add(o)
                    vec.lrg_commit(rank[o], w)
                    keydirty.add(o)
                elif eligible_gl:
                    vec.lrg_commit(rank[o], w)
                    keydirty.add(o)
                    policer = policers[o]
                    policer.on_transmit(expected, now)
                    thr[o] = vec.gl_eligibility_threshold(
                        policer.usage_clock,
                        policer.config.burst_window,
                        policer.config.reserved_rate,
                    )
                else:
                    # BE winner, or a demoted GL head served best-effort
                    # (no reservation charge — eligibility was withdrawn).
                    vec.lrg_commit(rank[o], w)
                    keydirty.add(o)

                port = inputs[w]
                packet = port.head_for_output(o, allow_gl=allow_o)
                if packet is None or packet.flits != expected:
                    raise SimulationError(
                        f"arbiter granted a request that is no longer head-of-line "
                        f"at input {w}"
                    )
                port.pop_packet(packet)

                # Mirror the pop: the granted queue's next head (if any)
                # becomes visible; rows touched are refreshed after the
                # post-grant refill below settles the final head state.
                touched = [(o, w)]
                if winner_class is TrafficClass.GB:
                    nh = port.gb_queues[o].head()
                    gb_head[o, w] = nh.flits if nh is not None else 0
                elif winner_class is TrafficClass.GL:
                    nh = port.gl_queue.head()
                    if nh is None:
                        gl_dst[w] = -1
                        gl_flits[w] = 0
                        gl_count -= 1
                    else:
                        gl_dst[w] = nh.dst
                        gl_flits[w] = nh.flits
                        touched.append((int(nh.dst), w))
                else:
                    nh = port.be_queue.head()
                    if nh is None:
                        be_dst[w] = -1
                        be_flits[w] = 0
                        be_count -= 1
                    else:
                        be_dst[w] = nh.dst
                        be_flits[w] = nh.flits
                        touched.append((int(nh.dst), w))
                occ_nz[w] = port.total_occupancy_flits > 0

                delivered = outputs[o].start_transmission(
                    packet, now, arb_cycles_for[o]
                )
                out_busy[o] = delivered
                port.busy_until = delivered
                busy_arr[w] = delivered
                active[w] = False
                if col_ok is not active:
                    col_ok[w] = False

                dropped = faults_drop and injector.drop_delivery(  # type: ignore[union-attr]
                    o, packet.packet_id, now
                )
                if dropped:
                    fault_drops += 1
                    if event_hook is not None:
                        event_hook(
                            "fault",
                            now,
                            kind="packet-drop",
                            output=o,
                            input=w,
                            packet_id=packet.packet_id,
                        )
                else:
                    stats.on_delivered(packet)
                    if faults_dup and injector.duplicate_delivery(  # type: ignore[union-attr]
                        o, packet.packet_id, now
                    ):
                        stats.on_delivered(packet)
                        fault_dups += 1
                        if event_hook is not None:
                            event_hook(
                                "fault",
                                now,
                                kind="packet-dup",
                                output=o,
                                input=w,
                                packet_id=packet.packet_id,
                            )
                grants += 1
                if event_hook is not None:
                    event_hook(
                        "grant",
                        now,
                        output=o,
                        input=w,
                        flow=str(packet.flow),
                        packet_id=packet.packet_id,
                        flits=packet.flits,
                        contenders=contenders,
                        delivered=delivered,
                        latency=packet.latency,
                        waiting=packet.waiting_time,
                    )
                if collect:
                    events.append(
                        GrantEvent(
                            cycle=now,
                            output=o,
                            input_port=w,
                            flow=packet.flow,
                            packet_id=packet.packet_id,
                            packet_flits=packet.flits,
                            contenders=contenders,
                        )
                    )
                    if not dropped:
                        events.append(
                            PacketDelivered(
                                cycle=delivered,
                                flow=packet.flow,
                                packet_id=packet.packet_id,
                                latency=packet.latency,
                                waiting_time=packet.waiting_time,
                            )
                        )
                wake(delivered)
                drain_overflow(now)
                top_up_input(w, now)
                for o_t, i_t in touched:
                    refresh_entry(o_t, i_t)

        # ------------------------------------------------------- wrap-up
        count_hook = hooks.count
        if count_hook is not None:
            for name, total in (
                ("kernel.wakes", wakes),
                ("kernel.heap_pushes", heap_pushes),
                ("kernel.arrivals", arrivals),
                ("kernel.arbitrations", arbitrations),
                ("kernel.grants", grants),
                ("kernel.gl_throttles", gl_throttles),
                ("kernel.overflow_flows_scanned", overflow_scans),
            ):
                if total:
                    count_hook(name, total)
            if injector is not None:
                for name, total in (
                    ("faults.stall_masked", fault_stall_masks),
                    ("faults.dead_crosspoint_masked", fault_dead_masks),
                    ("faults.counter_bitflips", fault_flips_applied),
                    ("faults.packet_drops", fault_drops),
                    ("faults.packet_dups", fault_dups),
                ):
                    if total:
                        count_hook(name, total)
        if gauge_hook is not None:
            if max_overflow_flows:
                gauge_hook("kernel.overflow_flows", max_overflow_flows)
            if max_overflow_depth:
                gauge_hook("kernel.overflow_queue_depth", max_overflow_depth)

        stats.finish(horizon)
        gl_throttle_events: Dict[int, int] = {
            o: policers[o].throttle_events for o in range(n)
        }
        return SimulationResult(
            chained_grants=0,
            config=self.config,
            workload_name=self.workload.name,
            horizon=horizon,
            warmup_cycles=warmup,
            stats=stats,
            output_utilization={o: outputs[o].utilization(horizon) for o in range(n)},
            grants=grants,
            events=events,
            gl_throttle_events=gl_throttle_events,
            kernel="array",
        )
