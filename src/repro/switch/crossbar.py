"""The Swizzle Switch crossbar: ports, channels, and per-output arbiters.

A single-crossbar network gives every core dedicated input and output
channels (paper Section 2.1); QoS state lives at the crosspoints, i.e. per
(input, output) pair, which behaviorally means one arbiter instance and one
bandwidth allocator per output.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..config import SwitchConfig
from ..core.bandwidth import BandwidthAllocator, Reservation
from ..errors import ConfigError, SimulationError
from ..qos.base import OutputArbiter
from ..qos.three_class import ThreeClassArbiter
from .buffers import InputPort
from .output_channel import OutputChannel

#: Builds the arbiter for one output port.
ArbiterFactory = Callable[[int, SwitchConfig], OutputArbiter]


def default_arbiter_factory(output: int, config: SwitchConfig) -> OutputArbiter:
    """The paper's full three-class (BE/GB/GL) SSVC arbitration."""
    return ThreeClassArbiter(
        num_inputs=config.radix,
        qos=config.qos,
        gl_policer_config=config.gl_policer,
    )


class SwizzleSwitch:
    """One radix-N single-stage crossbar with per-output QoS arbitration.

    Args:
        config: hardware parameters.
        arbiter_factory: builds each output's arbiter; defaults to the
            paper's three-class stack. Experiments inject LRG-only (the
            "No QoS" baseline), pure SSVC, original Virtual Clock, or any
            of the Section 2.2 baselines here.
    """

    def __init__(
        self,
        config: SwitchConfig,
        arbiter_factory: Optional[ArbiterFactory] = None,
    ) -> None:
        self.config = config
        factory = arbiter_factory if arbiter_factory is not None else default_arbiter_factory
        self.inputs: List[InputPort] = [InputPort(i, config) for i in range(config.radix)]
        self.outputs: List[OutputChannel] = [
            OutputChannel(o, config.arbitration_cycles) for o in range(config.radix)
        ]
        self.arbiters: List[OutputArbiter] = [
            factory(o, config) for o in range(config.radix)
        ]
        self.allocators: List[BandwidthAllocator] = [
            BandwidthAllocator(config.radix, config.gl_policer.reserved_rate)
            for _ in range(config.radix)
        ]

    # ------------------------------------------------------------ QoS wiring

    def reserve_gb(self, src: int, dst: int, rate: float, packet_flits: int) -> Reservation:
        """Admit a GB reservation and program the output's arbiter.

        The reservation is always recorded in the output's bandwidth
        allocator (admission control); if the arbiter understands
        reservations (SSVC, Virtual Clock, three-class, WRR/DWRR/WFQ
        adapters) its flow table is programmed too. Class-blind arbiters
        such as plain LRG simply ignore the rates — that is precisely the
        "No QoS" behaviour of Fig. 4a.
        """
        if not 0 <= dst < self.config.radix:
            raise SimulationError(f"output {dst} out of range [0, {self.config.radix})")
        reservation = self.allocators[dst].reserve(src, rate, packet_flits)
        arbiter = self.arbiters[dst]
        register = getattr(arbiter, "register_gb_flow", None) or getattr(
            arbiter, "register_flow", None
        )
        if register is not None:
            register(src, rate, packet_flits)
        return reservation

    def set_priority_level(self, src: int, level: int) -> None:
        """Program a message priority level on every output's arbiter.

        Only meaningful for the DAC'12 fixed-priority baseline; raises for
        arbiters without levels so misconfigured experiments fail loudly.
        """
        applied = False
        for arbiter in self.arbiters:
            set_level = getattr(arbiter, "set_level", None)
            if set_level is not None:
                set_level(src, level)
                applied = True
        if not applied:
            raise ConfigError(
                "no output arbiter supports priority levels "
                "(did you mean the fixed-priority baseline?)"
            )

    # --------------------------------------------------------------- queries

    def arbitration_cycles_for(self, output: int) -> int:
        """Effective re-arbitration latency at one output.

        The arbiter's own requirement (e.g. 2 cycles for the DAC'12
        baseline) overrides the switch default.
        """
        override = self.arbiters[output].arbitration_cycles
        return override if override is not None else self.config.arbitration_cycles

    @property
    def radix(self) -> int:
        """Number of input/output ports."""
        return self.config.radix
