"""Output channel state: occupancy and release timing.

An output channel moves one flit per cycle. When idle and requested, its
arbiter resolves a winner; the winner then holds the channel for
``arbitration_cycles + packet_flits`` cycles (the Swizzle Switch arbitrates
in a single cycle, which is why a saturated channel tops out at
``L / (L + 1)`` flits/cycle — the 0.89 ceiling of Fig. 4 for 8-flit
packets).
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from .flit import Packet


class OutputChannel:
    """One output port's data bus.

    Args:
        port: output index.
        arbitration_cycles: default re-arbitration latency in cycles
            (arbiters may override via their ``arbitration_cycles``
            attribute).
    """

    def __init__(self, port: int, arbitration_cycles: int = 1) -> None:
        if port < 0:
            raise SimulationError(f"output port must be >= 0, got {port}")
        if arbitration_cycles < 0:
            raise SimulationError(
                f"arbitration_cycles must be >= 0, got {arbitration_cycles}"
            )
        self.port = port
        self.arbitration_cycles = arbitration_cycles
        self.busy_until = 0
        self.current_packet: Optional[Packet] = None
        #: totals for utilization accounting
        self.flits_delivered = 0
        self.packets_delivered = 0
        self.busy_cycles = 0

    def is_idle(self, now: int) -> bool:
        """May a new arbitration be performed at cycle ``now``?"""
        return now >= self.busy_until

    def start_transmission(self, packet: Packet, now: int, arbitration_cycles: int) -> int:
        """Grant the channel to ``packet`` at cycle ``now``.

        Returns the delivery cycle (when the tail flit leaves). The channel
        (and the sending input) are busy until then.

        Raises:
            SimulationError: if the channel is still busy or the packet is
                addressed elsewhere.
        """
        if not self.is_idle(now):
            raise SimulationError(
                f"output {self.port} busy until {self.busy_until}, granted at {now}"
            )
        if packet.dst != self.port:
            raise SimulationError(
                f"packet for output {packet.dst} granted on output {self.port}"
            )
        delivered = now + arbitration_cycles + packet.flits
        packet.grant_cycle = now
        packet.delivered_cycle = delivered
        self.busy_until = delivered
        self.current_packet = packet
        self.flits_delivered += packet.flits
        self.packets_delivered += 1
        self.busy_cycles += arbitration_cycles + packet.flits
        return delivered

    def utilization(self, elapsed_cycles: int) -> float:
        """Delivered flits per cycle over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            raise SimulationError(f"elapsed_cycles must be positive, got {elapsed_cycles}")
        return self.flits_delivered / elapsed_cycles
