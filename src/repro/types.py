"""Shared enums and light value types used across the library."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TrafficClass(enum.IntEnum):
    """The three traffic classes of the paper, ordered by priority.

    Higher numeric value means higher arbitration priority:
    ``GL > GB > BE`` (paper Section 3).
    """

    BE = 0  #: Best-Effort — no guarantees, LRG arbitration.
    GB = 1  #: Guaranteed Bandwidth — Virtual Clock / SSVC arbitration.
    GL = 2  #: Guaranteed Latency — absolute priority, dedicated lane.

    @property
    def short_name(self) -> str:
        """Two-letter class mnemonic used in reports ("BE"/"GB"/"GL")."""
        return self.name


class CounterMode(enum.Enum):
    """Finite-counter management policies for SSVC (paper Sections 3.1).

    ``SUBTRACT``
        Keep a real-time counter with the granularity of the auxVC LSBs;
        when it saturates, drop every flow's most-significant value by one
        (all thermometer codes shift down one lane).
    ``HALVE``
        When any auxVC saturates, divide every auxVC by two (top half of
        the thermometer code is copied onto the bottom half, then cleared).
    ``RESET``
        When any auxVC saturates, clear every auxVC (and thermometer code)
        to zero.
    """

    SUBTRACT = "subtract"
    HALVE = "halve"
    RESET = "reset"

    @classmethod
    def from_name(cls, name: str) -> "CounterMode":
        """Parse a mode from its lowercase string name.

        Raises ``ValueError`` with the list of valid names on failure so CLI
        errors are self-explanatory.
        """
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown counter mode {name!r}; expected one of: {valid}") from None


@dataclass(frozen=True)
class FlowId:
    """Identity of a flow: a (source input, destination output, class) triple.

    The paper defines a flow as "a stream of packets that traverse the same
    route from a source to a destination"; in a single-stage switch the route
    is fully determined by the (input, output) pair, and the traffic class
    selects which arbitration plane the flow uses.
    """

    src: int
    dst: int
    traffic_class: TrafficClass = TrafficClass.GB

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"flow endpoints must be non-negative, got {self}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.traffic_class.short_name}[{self.src}->{self.dst}]"


#: Convenience aliases used in signatures throughout the package.
Cycle = int
FlitCount = int
