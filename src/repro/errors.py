"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class AdmissionError(ReproError):
    """A bandwidth reservation request cannot be admitted.

    Raised when the sum of reserved rates on an output channel (including the
    guaranteed-latency reservation) would exceed the channel capacity, or when
    a single reservation is non-positive / above 1.0.
    """


class ArbitrationError(ReproError):
    """The arbitration logic reached an inconsistent state.

    This indicates a bug in an arbiter implementation (e.g. the wire-level
    model produced zero or multiple winners); it should never surface during
    normal simulation.
    """


class SimulationError(ReproError):
    """The simulator was driven into an invalid state.

    Examples: injecting a packet for an unknown flow, running a simulator
    whose clock has already been exhausted, or delivering a flit to a
    mismatched output.
    """


class SweepInterrupted(SimulationError):
    """A sweep was cancelled (SIGINT/SIGTERM) after a clean drain.

    In-flight points were allowed to finish, the journal (when one was
    attached) was flushed, and the run is resumable with ``--resume``.
    The executor attaches its partial
    :class:`repro.resilience.SweepOutcome` as :attr:`outcome` (typed
    ``object`` here to keep this module import-free).
    """

    def __init__(self, message: str, outcome: object = None) -> None:
        super().__init__(message)
        self.outcome = outcome


class BufferError_(ReproError):
    """A buffer operation violated capacity or ordering invariants.

    Named with a trailing underscore to avoid shadowing the ``BufferError``
    builtin while staying greppable.
    """


class TrafficError(ReproError):
    """A traffic generator or flow specification is invalid."""


class CircuitError(ReproError):
    """The wire-level circuit model was used inconsistently.

    Examples: sensing a bitline that was never precharged, or configuring a
    lane whose width does not match the switch radix.
    """


class VerificationError(ReproError):
    """The circuit model disagreed with the reference arbitration decision."""
