"""Retry budgets, deterministic backoff, and failure policies for sweeps.

The paper bounds how long a guaranteed-latency packet can wait (Eq. 1) and
polices how much service an abusive source can take (the GL policer); the
sweep harness applies the same discipline to its own execution:

* a **per-point timeout** bounds how long one sweep point may run before
  the watchdog kills its worker (the harness analogue of the Eq. 1 bound);
* a **retry budget** bounds how many times a failed or timed-out point may
  be re-attempted (the analogue of the policer's reservation), with a
  deterministic seeded-jitter backoff between attempts so retried fleets
  do not stampede;
* a :class:`FailurePolicy` decides what an exhausted budget means:
  ``FAIL_FAST`` aborts the sweep (the historical behavior, still the
  default), ``SALVAGE`` records the failure and returns partial results
  with explicit holes — graceful degradation instead of collapse.

Backoff jitter is a *keyed hash*, not an RNG: the delay before attempt
``k`` of point ``i`` is a pure function of ``(seed, i, k)``, so two runs
of the same sweep sleep the same schedule and no global RNG state is
touched (lint rule RL001 applies to harness code too).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError


class FailurePolicy(enum.Enum):
    """What to do when a sweep point exhausts its retry budget."""

    #: Abort the whole sweep on the first exhausted point (historical
    #: behavior; completed points are still journaled, so the run is
    #: resumable).
    FAIL_FAST = "fail-fast"
    #: Record the failure, leave an explicit hole, and keep going; the
    #: sweep returns every point that did complete.
    SALVAGE = "salvage"


def backoff_delay(
    seed: int,
    point_index: int,
    attempt: int,
    base: float,
    cap: float,
) -> float:
    """Deterministic seeded-jitter backoff before retry ``attempt``.

    Exponential envelope (``base * 2**(attempt-1)``, clamped to ``cap``)
    scaled by a jitter factor in ``[0.5, 1.0)`` drawn from a blake2b keyed
    hash of ``(seed, point_index, attempt)`` — the same order-independent
    keyed-draw construction :mod:`repro.faults` uses, so the delay depends
    only on *which* retry this is, never on scheduling history.

    Args:
        seed: retry-policy seed (journal/resume keeps it stable per run).
        point_index: the sweep point's ``index``.
        attempt: 1-based retry number (the first *retry* is attempt 1).
        base: envelope scale in seconds for the first retry.
        cap: upper clamp on the envelope in seconds.
    """
    if attempt < 1:
        raise ConfigError(f"backoff attempt must be >= 1, got {attempt}")
    envelope = min(cap, base * (2.0 ** (attempt - 1)))
    digest = hashlib.blake2b(
        f"{point_index}:{attempt}".encode("utf-8"),
        key=seed.to_bytes(8, "little", signed=False),
        digest_size=8,
    ).digest()
    jitter = 0.5 + int.from_bytes(digest, "little") / 2.0**65
    return envelope * jitter


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, policed re-execution of failed or timed-out sweep points.

    Attributes:
        retries: additional attempts after the first (0 = never retry).
        point_timeout: wall seconds one attempt may run before the
            watchdog kills the worker process and counts a timeout.
            ``None`` disables the watchdog. Enforced only when points run
            in worker processes (``jobs >= 2``) — with ``jobs=1`` there is
            no worker to police, which the executor surfaces as an
            outcome note rather than silently ignoring.
        backoff_base: envelope scale (seconds) of the first retry delay.
        backoff_cap: upper clamp (seconds) on the backoff envelope.
        seed: key for the deterministic jitter draws.
    """

    retries: int = 0
    point_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ConfigError(
                f"point_timeout must be > 0 seconds, got {self.point_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise ConfigError(
                "backoff envelope must satisfy 0 <= base <= cap, got "
                f"base={self.backoff_base}, cap={self.backoff_cap}"
            )

    def delay_before(self, point_index: int, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` of ``point_index``."""
        return backoff_delay(
            self.seed, point_index, attempt, self.backoff_base, self.backoff_cap
        )
