"""The resilience bundle a CLI builds once and threads through every sweep.

``repro-exp`` and ``repro-bench`` translate their ``--retries /
--point-timeout / --on-failure / --journal / --resume`` flags into one
:class:`ResilienceOptions` and pass it down through the experiment
``run_*`` functions into every :class:`repro.parallel.SweepExecutor` the
invocation creates. The bundle carries the shared journal (one file can
checkpoint all of an experiment's sweeps), the retry policy, the failure
policy, an optional probe for ``resilience.*`` counters, and accumulates
each sweep's :class:`~repro.resilience.outcome.SweepOutcome` so the CLI
can print a single resilience section at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from .journal import RunJournal
from .outcome import SweepOutcome
from .policy import FailurePolicy, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..catalog import RunCatalog
    from ..obs.probe import Probe


@dataclass
class ResilienceOptions:
    """Everything the executor needs to run a sweep resiliently.

    Attributes:
        retry: retry/timeout/backoff budget (default: no retries, no
            timeout — identical to the historical executor).
        on_failure: ``FAIL_FAST`` (default, historical) or ``SALVAGE``.
        journal: shared checkpoint store, or None to run unjournaled.
        catalog: durable cross-invocation result cache
            (:class:`repro.catalog.RunCatalog`), or None. Catalogued
            points are served as verified cache hits; newly computed
            points are catalogued for every future run.
        serve_url: ``host:port`` of a ``repro-serve`` daemon. When set,
            :meth:`repro.parallel.SweepExecutor.map` ships the whole
            sweep to the daemon instead of executing locally; the local
            journal/catalog (when attached) still record the results.
        probe: sink for ``resilience.*`` / ``catalog.*`` counters and
            trace events; None falls back to the executor's ambient probe.
        outcomes: every sweep's outcome, appended in execution order —
            the CLI reads this after the experiment returns.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    on_failure: FailurePolicy = FailurePolicy.FAIL_FAST
    journal: Optional[RunJournal] = None
    catalog: "Optional[RunCatalog]" = None
    serve_url: Optional[str] = None
    probe: "Optional[Probe]" = None
    outcomes: List[SweepOutcome] = field(default_factory=list)

    @property
    def active(self) -> bool:
        """True when any resilience feature deviates from the historical path.

        The executor uses this to keep the legacy chunked code path —
        byte-identical behavior — whenever resilience adds nothing.
        """
        return (
            self.journal is not None
            or self.catalog is not None
            or self.serve_url is not None
            or self.retry.retries > 0
            or self.retry.point_timeout is not None
            or self.on_failure is not FailurePolicy.FAIL_FAST
        )

    @property
    def failed(self) -> bool:
        """True when any recorded sweep has holes or was cancelled."""
        return any(
            outcome.failures or outcome.cancelled for outcome in self.outcomes
        )

    def summary_lines(self) -> List[str]:
        """Concatenated per-sweep summaries for the CLI resilience section."""
        lines: List[str] = []
        for outcome in self.outcomes:
            lines.extend(outcome.summary_lines())
        return lines
