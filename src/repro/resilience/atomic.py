"""Crash-safe file writes: write-temp + fsync + rename.

A plain ``path.write_text(...)`` truncates the destination before the new
bytes land, so a crash (or SIGKILL, or a full disk) between the truncate
and the final flush leaves a torn file — exactly the artifacts this
repository treats as load-bearing: ``BENCH_*.json`` baselines, ``--report``
run documents, ``--trace`` event streams, and the resilience journal.

:func:`atomic_write_text` closes that window: the new content is written to
a temporary file *in the destination directory* (same filesystem, so the
rename is atomic), fsynced to disk, and then moved over the destination
with ``os.replace``. At every instant the destination is either the old
complete file or the new complete file — never a prefix of either. On any
failure the temporary file is removed and the destination is untouched.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Any, Union

#: Suffix pattern for in-flight temporaries; includes the pid so two
#: processes writing the same destination never clobber each other's temp.
_TMP_SUFFIX = ".tmp"


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory so the rename itself is durable.

    Some filesystems (and some CI sandboxes) refuse ``open(dir)`` or
    ``fsync`` on a directory fd; durability of the *rename* is then up to
    the OS, but the content fsync in :func:`atomic_write_text` still
    happened, so the worst case is the old complete file — never a torn
    one. Hence best-effort is sound here.
    """
    with contextlib.suppress(OSError):
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Replace ``path``'s content with ``text`` atomically.

    The destination is never observable in a partially-written state: a
    crash before the final ``os.replace`` leaves the previous file intact
    (plus, at worst, an orphaned ``*.tmp-<pid>`` sibling); a crash after
    it leaves the complete new file.

    Raises:
        OSError: when the temporary cannot be written or the rename fails;
            the destination is left untouched in both cases.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}{_TMP_SUFFIX}-{os.getpid()}")
    try:
        with open(tmp, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    _fsync_directory(target.parent)


def atomic_write_json(
    path: Union[str, Path], document: Any, indent: int = 2
) -> None:
    """Serialize ``document`` and write it atomically, newline-terminated.

    Matches the repository's JSON-artifact convention
    (``json.dumps(..., indent=2) + "\\n"``) so switching an existing
    writer to the atomic path never changes the bytes it produces.
    """
    atomic_write_text(path, json.dumps(document, indent=indent) + "\n")
